"""Shared fixtures for the benchmark suite.

Every table/figure bench consumes the same full pipeline run (like the
paper derives all analysis from one ground truth).  The run is cached at
session scope; the first bench that needs it pays the ~seconds of cost.
"""

import pytest

from repro.harness import PipelineResult, default_benchmark, default_pipeline_result


@pytest.fixture(scope="session")
def pipeline_result() -> PipelineResult:
    return default_pipeline_result(seed=7)


@pytest.fixture(scope="session")
def bench_benchmark():
    return default_benchmark(seed=7)
