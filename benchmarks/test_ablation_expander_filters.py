"""Ablation — the cycle expander's category-ratio and density filters.

The paper's conclusion is that *dense* cycles with a category ratio
around 30 % identify the best expansion features.  This ablation runs the
deployed expander (no ground truth) over every topic with the filters
switched on and off, measuring mean top-r precision.  Expected: removing
the filters admits distractor cycles and collapses early precision.
"""

import statistics

import pytest

from repro.core import CycleExpander, NeighborhoodCycleExpander, top_r_precision
from repro.linking import EntityLinker

CONFIGS = {
    "paper-filters": CycleExpander(
        lengths=(2, 3, 4, 5), min_category_ratio=0.25,
        max_category_ratio=0.5, min_extra_edge_density=0.3,
    ),
    "no-density-filter": CycleExpander(
        lengths=(2, 3, 4, 5), min_category_ratio=0.25, max_category_ratio=0.5,
    ),
    "no-category-filter": CycleExpander(
        lengths=(2, 3, 4, 5), min_extra_edge_density=0.3,
    ),
    "no-filters": CycleExpander(lengths=(2, 3, 4, 5)),
}


def _evaluate(bench_benchmark, engine, linker, cycle_expander):
    expander = NeighborhoodCycleExpander(cycle_expander)
    graph = bench_benchmark.graph
    per_rank = {1: [], 15: []}
    for topic in bench_benchmark.topics:
        seeds = linker.link_keywords(topic.keywords)
        if not seeds:
            continue
        expansion = expander.expand(graph, seeds)
        ranked = [
            r.doc_id
            for r in engine.search_phrases(expansion.all_titles(graph), top_k=15)
        ]
        for rank in per_rank:
            per_rank[rank].append(top_r_precision(ranked, topic.relevant, rank))
    return {rank: statistics.mean(values) for rank, values in per_rank.items()}


@pytest.fixture(scope="module")
def engine_and_linker(bench_benchmark):
    return bench_benchmark.build_engine(), EntityLinker(bench_benchmark.graph)


@pytest.mark.parametrize("config_name", list(CONFIGS), ids=list(CONFIGS))
def test_ablation_expander_filters(benchmark, bench_benchmark,
                                   engine_and_linker, config_name):
    engine, linker = engine_and_linker
    precisions = benchmark.pedantic(
        _evaluate,
        args=(bench_benchmark, engine, linker, CONFIGS[config_name]),
        rounds=1, iterations=1,
    )
    print(f"\n{config_name}: top-1={precisions[1]:.3f} top-15={precisions[15]:.3f}")
    assert 0.0 <= precisions[1] <= 1.0


def test_paper_filters_beat_unfiltered(bench_benchmark, engine_and_linker):
    """The headline causal claim: the filters carry the result."""
    engine, linker = engine_and_linker
    filtered = _evaluate(bench_benchmark, engine, linker, CONFIGS["paper-filters"])
    unfiltered = _evaluate(bench_benchmark, engine, linker, CONFIGS["no-filters"])
    assert filtered[1] > unfiltered[1] + 0.2
    assert filtered[15] > unfiltered[15]
