"""Ablation — the ground-truth local search's design choices.

Two choices called out in DESIGN.md:

* the REMOVE-if-equal minimality rule ("we want the minimum set of
  articles with the maximum quality");
* random restarts (the paper runs once from a random article; restarts
  tighten the approximation at linear cost).
"""

import random
import statistics

import pytest

from repro.core import Evaluator, GroundTruthSearch
from repro.harness import PipelineConfig, run_pipeline


def _run_searches(pipeline_result, *, prefer_minimal: bool, restarts: int):
    """Re-run the local search per topic from cached evaluators."""
    sizes = []
    qualities = []
    for outcome in pipeline_result.outcomes:
        evaluator = outcome.evaluator
        assert evaluator is not None
        search = GroundTruthSearch(
            evaluator,
            rng=random.Random(outcome.topic.topic_id),
            prefer_minimal=prefer_minimal,
            restarts=restarts,
        )
        pool = sorted(outcome.candidate_articles - outcome.seed_articles)[:40]
        result = search.run(outcome.seed_articles, pool)
        sizes.append(len(result.expansion_set))
        qualities.append(result.score.mean)
    return statistics.mean(sizes), statistics.mean(qualities)


@pytest.mark.parametrize("prefer_minimal", [True, False],
                         ids=["minimal-rule", "no-minimal-rule"])
def test_ablation_minimality_rule(benchmark, pipeline_result, prefer_minimal):
    mean_size, mean_quality = benchmark.pedantic(
        _run_searches, args=(pipeline_result,),
        kwargs={"prefer_minimal": prefer_minimal, "restarts": 1},
        rounds=1, iterations=1,
    )
    print(f"\nprefer_minimal={prefer_minimal}: "
          f"|A'|={mean_size:.2f}, O={mean_quality:.3f}")
    assert mean_quality > 0.5


def test_minimality_rule_shrinks_sets_without_losing_quality(pipeline_result):
    size_with, quality_with = _run_searches(
        pipeline_result, prefer_minimal=True, restarts=1)
    size_without, quality_without = _run_searches(
        pipeline_result, prefer_minimal=False, restarts=1)
    assert size_with <= size_without + 1e-9
    assert quality_with >= quality_without - 0.02


@pytest.mark.parametrize("restarts", [1, 3], ids=["restarts-1", "restarts-3"])
def test_ablation_restarts(benchmark, pipeline_result, restarts):
    mean_size, mean_quality = benchmark.pedantic(
        _run_searches, args=(pipeline_result,),
        kwargs={"prefer_minimal": True, "restarts": restarts},
        rounds=1, iterations=1,
    )
    print(f"\nrestarts={restarts}: |A'|={mean_size:.2f}, O={mean_quality:.3f}")
    assert mean_quality > 0.5


def test_restarts_never_hurt(pipeline_result):
    _, quality_one = _run_searches(pipeline_result, prefer_minimal=True, restarts=1)
    _, quality_three = _run_searches(pipeline_result, prefer_minimal=True, restarts=3)
    assert quality_three >= quality_one - 1e-9
