"""Ablation — entity linking with vs without redirect synonym phrases.

Section 2.1 adds synonym phrases (derived from redirect titles) to the
entity linking step, claiming the "simple strategy proved effective".
This bench measures linking coverage and cost with and without it.
"""

import pytest

from repro.linking import EntityLinker


def _link_everything(benchmark_obj, use_synonyms: bool) -> int:
    linker = EntityLinker(benchmark_obj.graph, use_synonyms=use_synonyms)
    found = 0
    for topic in benchmark_obj.topics:
        found += len(linker.link_keywords(topic.keywords))
        for doc_id in sorted(topic.relevant)[:3]:
            text = benchmark_obj.documents[doc_id].extraction_text()
            found += len(linker.link(text).article_ids)
    return found


@pytest.mark.parametrize("use_synonyms", [False, True],
                         ids=["no-synonyms", "with-synonyms"])
def test_ablation_linking_synonyms(benchmark, bench_benchmark, use_synonyms):
    found = benchmark(_link_everything, bench_benchmark, use_synonyms)
    assert found > 0


def test_synonyms_never_reduce_coverage(bench_benchmark):
    """Synonym phrases only ever *add* linked entities."""
    with_syn = _link_everything(bench_benchmark, True)
    without = _link_everything(bench_benchmark, False)
    assert with_syn >= without
