"""Figure 5 — average contribution (%) vs cycle length.

Paper: length 2 contributes most (~50.5%), length 3 least (~24.4%),
lengths 4 and 5 in between (~32.7% / ~32.3%).

Shape to hold: contribution(2) is the maximum and contribution(3) the
minimum; everything is positive.
"""

from repro.harness import (
    PAPER_FIG5,
    fig5_contribution_by_length,
    format_series_comparison,
)


def test_fig5_contribution_vs_length(benchmark, pipeline_result):
    series = benchmark(fig5_contribution_by_length, pipeline_result)

    print()
    print(format_series_comparison(series, PAPER_FIG5,
                                   "Figure 5 (measured vs paper)"))

    assert set(series) == {2, 3, 4, 5}
    assert all(value > 0 for value in series.values())
    # The paper's headline: 2-cycles are the strongest contributors.
    assert series[2] == max(series.values())
    # And 3-cycles the weakest.
    assert series[3] == min(series.values())
