"""Figure 6 — average number of cycles per query vs cycle length.

Paper: 1.56 / 9.1 / 35.22 / 136.84 for lengths 2..5 — counts grow steeply
with length, and 2-cycles are scarce (around 1-2 per query).

Shape to hold: strictly increasing counts, small 2-cycle count.
"""

from repro.harness import PAPER_FIG6, fig6_cycle_counts, format_series_comparison


def test_fig6_cycle_counts(benchmark, pipeline_result):
    series = benchmark(fig6_cycle_counts, pipeline_result)

    print()
    print(format_series_comparison(series, PAPER_FIG6,
                                   "Figure 6 (measured vs paper)"))

    assert set(series) == {2, 3, 4, 5}
    assert series[2] < series[3] < series[4] < series[5]
    # 2-cycles are scarce: the paper counts ~1.6 per query.
    assert series[2] <= 4.0
