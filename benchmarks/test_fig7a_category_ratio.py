"""Figure 7a — average category ratio vs cycle length.

Paper: 0.366 / 0.375 / 0.382 for lengths 3..5 — roughly one category per
three nodes, growing only very slowly with length (trend slope ~0).

Shape to hold: all ratios in a band around 30-45%, and the spread across
lengths small (the paper's "slope of the trend line is almost 0").
"""

from repro.harness import PAPER_FIG7A, fig7a_category_ratio, format_series_comparison


def test_fig7a_category_ratio(benchmark, pipeline_result):
    series = benchmark(fig7a_category_ratio, pipeline_result)

    print()
    print(format_series_comparison(series, PAPER_FIG7A,
                                   "Figure 7a (measured vs paper)"))

    assert set(series) == {3, 4, 5}
    for length, value in series.items():
        assert 0.25 <= value <= 0.55, (length, value)
    # Near-flat trend: spread below 10 percentage points.
    assert max(series.values()) - min(series.values()) < 0.10
    # Cycles of length 3 carry about one category (3 * ratio ~= 1), the
    # paper's reading of the figure.
    assert 0.8 <= 3 * series[3] <= 1.6
