"""Figure 7b — average density of extra edges vs cycle length.

Paper: 0.289 / 0.38 / 0.333 for lengths 3..5 — all cycles carry roughly a
third of the possible chords.

Shape to hold: densities for every length sit in a band around 0.25-0.45
(cycles are substantially chorded but far from cliques).
"""

from repro.harness import PAPER_FIG7B, fig7b_density, format_series_comparison


def test_fig7b_extra_edge_density(benchmark, pipeline_result):
    series = benchmark(fig7b_density, pipeline_result)

    print()
    print(format_series_comparison(series, PAPER_FIG7B,
                                   "Figure 7b (measured vs paper)"))

    assert set(series) == {3, 4, 5}
    for length, value in series.items():
        assert 0.15 <= value <= 0.55, (length, value)
