"""Figure 9 — density of extra edges vs average contribution.

Paper: a positive trend — "the denser the cycle, the better its
contribution".

Shape to hold: least-squares slope over (density, contribution) points is
positive, and the binned trend ends higher than it starts.
"""

from repro.harness import fig9_density_vs_contribution


def test_fig9_density_vs_contribution(benchmark, pipeline_result):
    data = benchmark(fig9_density_vs_contribution, pipeline_result)

    print()
    print(f"Figure 9: slope {data.slope:+.2f} over {len(data.points)} cycles "
          "(paper: positive)")
    for center, mean in data.trend:
        print(f"  density~{center:.2f}: avg contribution {mean:+.1f}%")

    assert data.points, "no cycles with defined density"
    assert data.slope > 0
    assert data.trend[-1][1] > data.trend[0][1]
