"""Loadgen SLO bench: seeded shapes, overload shedding, recovery.

Three phases against one self-hosted front end with admission control:

1. **baseline** — the interactive shape alone, topics pre-warmed, to
   establish the unloaded p99;
2. **overload** — interactive + adversarial flood concurrently.  The
   flood client must be shed with structured 429s while interactive
   p99 stays within ``2 x`` its unloaded value (the tentpole's SLO
   budget — asserted on full runs; smoke runs keep the phase but skip
   the timing assertion);
3. **recovery** — the flood stops; shedding must return to zero.

The overload phase's report is written to the ``loadgen_slo`` section
of ``BENCH_service.json`` (other sections carried over, the same
courtesy the other bench modules extend back).  Smoke mode
(``REPRO_BENCH_SMOKE=1``) shrinks counts and rates, not coverage.
"""

import json
import os
from pathlib import Path

import pytest

from repro.harness import default_benchmark
from repro.loadgen import (
    build_report,
    merge_into_bench,
    plan_workload,
    run_plans,
    stream_digest,
    topic_pool,
)
from repro.loadgen.report import server_quantiles
from repro.obs import RequestLog
from repro.service import (
    AdmissionPolicy,
    AsyncShardRouter,
    HttpFrontEnd,
    ShardRouter,
    ShardedSnapshot,
)
from repro.service.admission import SHED_CLIENT_RATE, SHED_OVER_CAPACITY
from repro.updates import UpdateCoordinator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SEED = 7
RATE = 40.0 if SMOKE else 80.0
COUNT = 16 if SMOKE else 120
FLOOD_COUNT = 24 if SMOKE else 240
# Sub-millisecond baselines make a 2x ratio meaningless noise; clamp
# the denominator to a realistic floor before asserting the budget.
BASELINE_P99_FLOOR_MS = 2.0
QUEUE_LIMIT = 8
CLIENT_RATE = 20.0
CLIENT_BURST = 10.0


@pytest.fixture(scope="module")
def stack():
    """Router + front end with admission control on a loop thread."""
    import asyncio
    import threading

    benchmark = default_benchmark(seed=SEED)
    snapshot = ShardedSnapshot.build(benchmark, num_shards=2).frozen()
    router = ShardRouter(snapshot)
    request_log = RequestLog(slow_ms=float("inf"))
    front = HttpFrontEnd(
        AsyncShardRouter(router),
        coordinator=UpdateCoordinator(router, request_log=request_log),
        request_log=request_log,
        admission=AdmissionPolicy(
            queue_limit=QUEUE_LIMIT,
            client_rate=CLIENT_RATE,
            client_burst=CLIENT_BURST,
        ),
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = asyncio.run_coroutine_threadsafe(
        front.start("127.0.0.1", 0), loop
    ).result(timeout=60)
    port = server.sockets[0].getsockname()[1]
    yield snapshot, port
    asyncio.run_coroutine_threadsafe(front.stop(), loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=60)
    front.service.close()


@pytest.fixture(scope="module")
def phases(stack):
    snapshot, port = stack
    pool = topic_pool(snapshot)

    interactive_only = plan_workload(
        seed=SEED, pool=pool, shapes=["interactive"], count=COUNT
    )
    # Determinism witness: planning twice must be byte-identical.
    replanned = plan_workload(
        seed=SEED, pool=pool, shapes=["interactive"], count=COUNT
    )
    assert [r.to_line() for r in interactive_only["interactive"]] == \
           [r.to_line() for r in replanned["interactive"]]

    # Warm-up: the baseline measures the *unloaded* server, not its
    # cold-cache transient, so replay the interactive plan once first.
    run_plans("127.0.0.1", port, interactive_only, rate=RATE, concurrency=4)
    baseline = run_plans(
        "127.0.0.1", port, interactive_only, rate=RATE, concurrency=4
    )

    overload_plans = {
        "interactive": interactive_only["interactive"],
        "flood": plan_workload(
            seed=SEED, pool=pool, shapes=["flood"], count=FLOOD_COUNT
        )["flood"],
    }
    stream = [r for name in overload_plans for r in overload_plans[name]]
    overload = run_plans(
        "127.0.0.1", port, overload_plans, rate=RATE, concurrency=4
    )

    recovery = run_plans(
        "127.0.0.1", port, interactive_only, rate=RATE, concurrency=4
    )
    report = build_report(
        overload, seed=SEED, rate=RATE,
        stream_sha256=stream_digest(stream), zipf_s=1.1,
    )
    return {
        "baseline": baseline,
        "overload": overload,
        "recovery": recovery,
        "report": report,
    }


def _p99(result, shape: str) -> float:
    from repro.loadgen import percentile

    return percentile(
        [o.latency_ms for o in result.outcomes[shape] if o.ok], 0.99
    )


def test_baseline_serves_cleanly(phases):
    baseline = phases["baseline"]
    assert all(o.ok for o in baseline.outcomes["interactive"])
    assert _p99(baseline, "interactive") > 0


def test_flood_is_shed_with_structured_429s(phases):
    flood = phases["overload"].outcomes["flood"]
    shed = [o for o in flood if o.shed]
    assert shed, "the flood must trigger load shedding"
    for outcome in shed:
        assert outcome.error_code in (SHED_CLIENT_RATE, SHED_OVER_CAPACITY)
        assert outcome.retry_after_s is not None and outcome.retry_after_s >= 1
    # No flood request may fail any other way — refusals are structured.
    assert all(o.ok or o.shed for o in flood)


def test_interactive_is_untouched_by_the_flood(phases):
    interactive = phases["overload"].outcomes["interactive"]
    assert all(o.ok for o in interactive), (
        "polite clients must not be shed while the flood is refused"
    )


@pytest.mark.skipif(SMOKE, reason="timing budget asserted on full runs only")
def test_interactive_p99_within_2x_of_unloaded(phases):
    unloaded = max(_p99(phases["baseline"], "interactive"),
                   BASELINE_P99_FLOOR_MS)
    loaded = _p99(phases["overload"], "interactive")
    assert loaded <= 2.0 * unloaded, (
        f"interactive p99 {loaded:.2f}ms exceeded 2x the unloaded "
        f"{unloaded:.2f}ms while shedding the flood"
    )


def test_shedding_recovers_after_the_flood(phases):
    recovery = phases["recovery"]
    assert all(o.ok for o in recovery.outcomes["interactive"])
    # The recovery run's own metrics window records zero new sheds.
    window = server_quantiles(recovery.metrics_before, recovery.metrics_after)
    assert window["shed_total"] == 0


def test_emit_loadgen_slo(phases):
    report = phases["report"]
    assert report["shapes"]["flood"]["shed_rate"] > 0
    assert report["shapes"]["interactive"]["shed_rate"] == 0.0
    merged = merge_into_bench(BENCH_PATH, report)
    written = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert written["loadgen_slo"] == merged["loadgen_slo"]
    slo = written["loadgen_slo"]
    assert slo["stream_sha256"] == report["stream_sha256"]
    for shape in ("interactive", "flood"):
        summary = slo["shapes"][shape]
        for key in ("p50_ms", "p99_ms", "p999_ms", "error_rate", "shed_rate"):
            assert key in summary, (shape, key)
        assert summary["p50_ms"] <= summary["p99_ms"] <= summary["p999_ms"]
        assert summary["error_rate"] == 0.0
    server = slo["server"]
    assert server["shed_total"] > 0
    assert set(server["shed_by_reason"]) <= {
        SHED_CLIENT_RATE, SHED_OVER_CAPACITY
    }
    assert server["p50_ms"] >= 0
