"""End-to-end pipeline cost: benchmark + ground truth + analysis.

Not a paper artefact, but the number a downstream user cares about: how
long does the whole Section 2 + 3 pipeline take on the default 50-topic
benchmark.
"""

from repro.harness import PipelineConfig, default_benchmark, run_pipeline


def test_pipeline_end_to_end(benchmark):
    bench = default_benchmark(seed=7)

    def run():
        return run_pipeline(bench, PipelineConfig(seed=97))

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.num_queries == 50
    assert all(o.best_score.mean >= o.base_score.mean for o in result.outcomes)


def test_benchmark_generation(benchmark):
    result = benchmark(default_benchmark, 7)
    assert result.num_topics == 50
