"""Micro-benchmarks of the retrieval substrate (indexing, phrase search).

Not a paper artefact; establishes that the INDRI stand-in is fast enough
that the pipeline's cost is dominated by the local search, as in the
paper (where INDRI queries, not graph mining, bounded ground-truth
construction).
"""

import pytest

from repro.retrieval import PositionalIndex, SearchEngine, DirichletSmoothing


@pytest.fixture(scope="module")
def texts(bench_benchmark):
    return [
        (doc_id, bench_benchmark.documents[doc_id].extraction_text())
        for doc_id in sorted(bench_benchmark.documents)
    ]


def test_index_build(benchmark, texts):
    def build():
        index = PositionalIndex()
        index.add_documents(texts)
        return index

    index = benchmark(build)
    assert index.num_documents == len(texts)


@pytest.fixture(scope="module")
def engine(texts):
    eng = SearchEngine(smoothing=DirichletSmoothing(mu=300))
    eng.add_documents(texts)
    return eng


def test_term_query(benchmark, engine):
    results = benchmark(engine.search, "harbor", 15)
    assert isinstance(results, list)


def test_phrase_query(benchmark, engine, bench_benchmark):
    # Use a real article title so the phrase actually matches.
    title = next(iter(bench_benchmark.graph.main_articles())).title
    results = benchmark(engine.search, f'"{title}"', 15)
    assert isinstance(results, list)


def test_expansion_query_shape(benchmark, engine, bench_benchmark):
    graph = bench_benchmark.graph
    titles = [a.title for a in list(graph.main_articles())[:8]]
    results = benchmark(engine.search_phrases, titles, 15)
    assert isinstance(results, list)
