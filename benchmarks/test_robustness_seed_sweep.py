"""Robustness — the paper's shapes must hold across seeds, not one seed.

Regenerates the complete pipeline for five unrelated seeds and asserts
that every headline shape (Figure 5's 2-cycle peak, Figure 6's monotone
counts, Figure 9's positive slope, Table 4's all-lengths dominance, and
expansion helping at all) holds for the majority of seeds.
"""

from repro.harness.sweep import run_seed_sweep

SEEDS = (3, 11, 19, 27, 35)


def test_robustness_seed_sweep(benchmark):
    outcome = benchmark.pedantic(
        run_seed_sweep, args=(SEEDS,), kwargs={"num_domains": 20},
        rounds=1, iterations=1,
    )
    print()
    print(outcome.summary())

    assert outcome.holds_majority("expansion_helps", threshold=0.9)
    assert outcome.holds_majority("fig9_positive_slope")
    assert outcome.holds_majority("fig6_monotone")
    # The raw Figure-5 peak is seed-sensitive (longer cycles aggregate
    # several articles); the per-added-article form is the robust claim.
    assert outcome.holds_majority("fig5_two_best_per_article", threshold=0.7)
    assert outcome.holds_majority("fig5_three_min")
    assert outcome.holds_majority("table4_full_best_at_depth")
