"""Section 3 loose statistics: TPR, 2-cycle pair ratio, graph sizes.

Paper: average TPR of the largest connected components ~0.3; 11.47 % of
linked article pairs form 2-cycles; average query graph size 208.22 nodes
(ours are smaller — the synthetic wiki is laptop-scale; the shape that
matters is TPR and the pair ratio, which are scale-free).
"""

from repro.harness import PAPER_SEC3_STATS, sec3_structural_stats


def test_sec3_structural_stats(benchmark, pipeline_result):
    stats = benchmark(sec3_structural_stats, pipeline_result)

    print()
    print(f"TPR of LCCs:            {stats.average_tpr:.3f} "
          f"(paper ~{PAPER_SEC3_STATS['tpr']})")
    print(f"2-cycle pair ratio:     {stats.reciprocal_pair_ratio:.4f} "
          f"(paper {PAPER_SEC3_STATS['reciprocal_pair_ratio']})")
    print(f"avg query graph nodes:  {stats.average_query_graph_nodes:.1f} "
          f"(paper {PAPER_SEC3_STATS['avg_query_graph_nodes']})")
    print(f"avg cycle mining time:  {stats.average_cycle_seconds * 1000:.1f} ms/query "
          "(paper ~6 min/query on a graph DB)")
    print(f"avg improvement:        {stats.average_improvement_percent:+.1f}%")

    # TPR is "particularly large" given tree-like categories: >= 0.15.
    assert 0.15 <= stats.average_tpr <= 0.9
    # Calibrated to the paper's 11.47 % within a tolerance band.
    assert 0.08 <= stats.reciprocal_pair_ratio <= 0.16
    # Expansion genuinely helps (the premise of the whole exercise).
    assert stats.average_improvement_percent > 10.0
    assert stats.average_query_graph_nodes > 5
