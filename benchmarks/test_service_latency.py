"""Latency microbenchmark of the online expansion service.

Measures per-query latency (p50/p99) and throughput of the service over
the standard 50-topic benchmark, in five regimes:

* **cold** — fresh service, every query pays linking + cycle mining;
* **cached** — the same queries again, served from the LRU layers;
* **batched cold** — fresh service answering everything through
  ``batch_expand``, which amortises the full-graph edge scan;
* **sharded cold / sharded cached** — the same traffic through a
  4-shard :class:`ShardRouter` (partitioned graph + index segments with
  scatter-gather ranking), asserting results identical to the
  single-shard path before timing anything.

Results are written to ``BENCH_service.json`` at the repo root so the
performance trajectory is tracked across PRs.  The suite asserts the
service's reason to exist: cached p50 strictly below cold p50.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` (CI does) to run a truncated
query set with one warm round — fast enough for every push, while still
exercising the full measurement path and validating the emitted JSON
schema against rot.
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.service import ExpansionService, ShardRouter, ShardedSnapshot, Snapshot

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
CACHED_ROUNDS = 1 if SMOKE else 3
SMOKE_QUERIES = 6
SHARD_COUNT = 4


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _summarize(latencies_ms: list[float], total_seconds: float) -> dict:
    return {
        "queries": len(latencies_ms),
        "p50_ms": round(statistics.median(latencies_ms), 3),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3),
        "throughput_qps": round(len(latencies_ms) / total_seconds, 1),
    }


@pytest.fixture(scope="module")
def service_snapshot(bench_benchmark) -> Snapshot:
    return Snapshot.build(bench_benchmark)


@pytest.fixture(scope="module")
def queries(bench_benchmark) -> list[str]:
    all_queries = [topic.keywords for topic in bench_benchmark.topics]
    return all_queries[:SMOKE_QUERIES] if SMOKE else all_queries


@pytest.fixture(scope="module")
def measurements(service_snapshot, queries) -> dict:
    service = ExpansionService.from_snapshot(service_snapshot)

    cold_responses = []
    cold: list[float] = []
    cold_started = time.perf_counter()
    for query in queries:
        response = service.expand_query(query)
        cold_responses.append(response)
        cold.append(response.latency_ms)
    cold_seconds = time.perf_counter() - cold_started

    cached: list[float] = []
    cached_started = time.perf_counter()
    for _ in range(CACHED_ROUNDS):
        for query in queries:
            response = service.expand_query(query)
            assert response.expansion_cached, query
            cached.append(response.latency_ms)
    cached_seconds = time.perf_counter() - cached_started

    batch_service = ExpansionService.from_snapshot(service_snapshot)
    batch_started = time.perf_counter()
    batch = batch_service.batch_expand(queries)
    batch_seconds = time.perf_counter() - batch_started
    assert len(batch) == len(queries)

    # Sharded serving: same traffic through the 4-shard router.  Results
    # must be identical to the single-shard path (same top-k doc ids AND
    # scores) before any of its timings count.
    router = ShardRouter(ShardedSnapshot.from_snapshot(service_snapshot, SHARD_COUNT))
    sharded_cold: list[float] = []
    sharded_cold_started = time.perf_counter()
    for query, reference in zip(queries, cold_responses):
        response = router.expand_query(query)
        assert response.link.article_ids == reference.link.article_ids, query
        assert response.expansion.article_ids == \
            reference.expansion.article_ids, query
        assert [(r.doc_id, r.score) for r in response.results] == \
               [(r.doc_id, r.score) for r in reference.results], query
        sharded_cold.append(response.latency_ms)
    sharded_cold_seconds = time.perf_counter() - sharded_cold_started

    sharded_cached: list[float] = []
    sharded_cached_started = time.perf_counter()
    for _ in range(CACHED_ROUNDS):
        for query in queries:
            response = router.expand_query(query)
            assert response.expansion_cached, query
            sharded_cached.append(response.latency_ms)
    sharded_cached_seconds = time.perf_counter() - sharded_cached_started

    stats = service.stats()
    return {
        "smoke": SMOKE,
        "cold": _summarize(cold, cold_seconds),
        "cached": _summarize(cached, cached_seconds),
        "batched_cold": {
            "queries": len(queries),
            "total_seconds": round(batch_seconds, 3),
            "throughput_qps": round(len(queries) / batch_seconds, 1),
        },
        "sharded_cold": {
            "shards": SHARD_COUNT,
            **_summarize(sharded_cold, sharded_cold_seconds),
        },
        "sharded_cached": {
            "shards": SHARD_COUNT,
            **_summarize(sharded_cached, sharded_cached_seconds),
        },
        "cache_hit_rate": {
            "link": round(stats.link_cache.hit_rate, 4),
            "expansion": round(stats.expansion_cache.hit_rate, 4),
        },
    }


def test_cached_p50_strictly_below_cold(measurements):
    """The cache layer must make the hot path measurably faster."""
    assert measurements["cached"]["p50_ms"] < measurements["cold"]["p50_ms"]


def test_cached_throughput_exceeds_cold(measurements):
    assert measurements["cached"]["throughput_qps"] > \
        measurements["cold"]["throughput_qps"]


def test_cache_hit_rate_reflects_warm_traffic(measurements):
    # 1 cold + CACHED_ROUNDS warm passes => hit rate = rounds / (rounds + 1).
    expected = CACHED_ROUNDS / (CACHED_ROUNDS + 1)
    assert measurements["cache_hit_rate"]["expansion"] == pytest.approx(
        expected, abs=0.01
    )


def test_batched_cold_not_slower_than_sequential_cold(measurements):
    """Amortised batching must not regress below one-by-one serving."""
    assert measurements["batched_cold"]["throughput_qps"] >= \
        0.8 * measurements["cold"]["throughput_qps"]


def test_sharded_cached_p50_strictly_below_sharded_cold(measurements):
    """The cache layers must keep paying off behind the router too."""
    assert measurements["sharded_cached"]["p50_ms"] < \
        measurements["sharded_cold"]["p50_ms"]


def test_emit_bench_json(measurements):
    """Persist the numbers so the perf trajectory is tracked across PRs.

    Smoke runs still write and re-validate the JSON (that is the point:
    the schema cannot silently rot), just with fewer samples.
    """
    BENCH_PATH.write_text(json.dumps(measurements, indent=2) + "\n", encoding="utf-8")
    written = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert written["cold"]["queries"] == written["cached"]["queries"] // CACHED_ROUNDS
    assert written["sharded_cold"]["shards"] == SHARD_COUNT
    for regime in ("cold", "cached", "sharded_cold", "sharded_cached"):
        assert written[regime]["p50_ms"] > 0
        assert written[regime]["p99_ms"] >= written[regime]["p50_ms"]
        assert written[regime]["throughput_qps"] > 0
