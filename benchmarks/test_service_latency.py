"""Latency microbenchmark of the online expansion service.

Measures per-query latency (p50/p99) and throughput of the service over
the standard 50-topic benchmark, in several regimes:

* **cold / cached** — the dict-backed (``compact=False``) service, fresh
  and then warm: the historical baseline every PR compares against;
* **compact cold / compact cached** — the same traffic through the
  frozen array-backed read path (:class:`CompactIndex` +
  :class:`CompactGraphView`), which production serving uses by default.
  Cold queries of the two paths are *interleaved* in one process so
  machine drift cancels out of the speedup ratio, and every compact
  response is asserted bit-identical (doc ids AND scores, expansion
  sets AND cycles) to the dict response before any timing counts;
* **batched cold** — a fresh compact service answering everything
  through ``batch_expand``, which amortises neighbourhood work;
* **sharded cold / sharded cached** — the same traffic through a
  4-shard :class:`ShardRouter` (partitioned graph + compact index
  segments with scatter-gather ranking), results asserted identical to
  the single-shard path;
* **prefilled** — a cold-started 4-shard router over a snapshot built
  with warm-cache prefill: the very first hit of every benchmark topic
  must come from the expansion cache (asserted) and land at
  cached-tier latency;
* **http cold / http cached** — the same traffic as real HTTP requests
  (``POST /expand`` with JSON bodies over a loopback socket) against
  the asyncio front end (:class:`HttpFrontEnd` over
  :class:`AsyncShardRouter` over a 4-shard router).  Every HTTP
  response is asserted bit-identical — doc ids AND scores after the
  JSON round trip — to the in-process reference before its timing
  counts, so the wire protocol provably adds latency only, never
  drift;
* **socket workers cold / cached** — the same traffic with every shard
  served by a supervised *worker process* over the shard wire protocol
  (:class:`ShardSupervisor` + :class:`SocketShardAdapter`,
  ``docs/shard_protocol.md``).  Every response is again asserted
  bit-identical to the in-process reference before its timing counts —
  the acceptance bar for out-of-process sharding;
* **delta overlay** — the live-update read path
  (``docs/live_updates.md``): a router whose coordinator published an
  overlay that no query's neighbourhood touches must answer cold
  queries within 10% of a plain router measured interleaved in the
  same process (the disjoint-overlay fast path), a delta far from
  every cached seed set must evict nothing
  (``unrelated_hit_preserved == 1.0``), and a delta next to a cached
  seed must evict that entry and only be counted once.

Results are written to ``BENCH_service.json`` at the repo root so the
performance trajectory is tracked across PRs.  Each regime additionally
reports ``stage_p50_ms`` — the median per-stage busy time (link /
expand / cycle_mine / rank / merge) from the request traces the
serving stack now records on every query — so a latency regression in
the trend can be attributed to a stage without rerunning anything.
The suite asserts the two reasons this layer exists: cached p50
strictly below cold p50, and (on full runs) the compact read path at
least 1.5x faster cold than the dict path measured in the same
process.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` (CI does) to run a truncated
query set with one warm round — fast enough for every push, while still
exercising the full measurement path and validating the emitted JSON
schema (including the ``compact_speedup`` key) against rot.
"""

import asyncio
import http.client
import json
import os
import statistics
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.service import (
    AsyncShardRouter,
    ExpansionService,
    HttpFrontEnd,
    ShardRouter,
    ShardSupervisor,
    ShardedSnapshot,
    Snapshot,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
CACHED_ROUNDS = 1 if SMOKE else 3
SMOKE_QUERIES = 6
SHARD_COUNT = 4
COMPACT_SPEEDUP_FLOOR = 1.5


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _summarize(latencies_ms: list[float], total_seconds: float) -> dict:
    return {
        "queries": len(latencies_ms),
        "p50_ms": round(statistics.median(latencies_ms), 3),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3),
        "throughput_qps": round(len(latencies_ms) / total_seconds, 1),
    }


def _stage_p50(stage_maps: list[dict]) -> dict:
    """Median busy-ms per pipeline stage over a regime's responses.

    Each element is one response's ``stage_totals_ms()`` (or the wire
    ``stages`` object for HTTP regimes); a stage absent from a response
    simply contributes no sample — cached traffic has no ``cycle_mine``.
    """
    by_stage: dict[str, list[float]] = {}
    for stages in stage_maps:
        for stage, ms in stages.items():
            by_stage.setdefault(stage, []).append(ms)
    return {
        stage: round(statistics.median(values), 3)
        for stage, values in sorted(by_stage.items())
    }


def _assert_same_answer(mine, reference, query: str) -> None:
    assert mine.link.article_ids == reference.link.article_ids, query
    assert mine.expansion.article_ids == reference.expansion.article_ids, query
    assert [(r.doc_id, r.score) for r in mine.results] == \
           [(r.doc_id, r.score) for r in reference.results], query


@pytest.fixture(scope="module")
def service_snapshot(bench_benchmark) -> Snapshot:
    return Snapshot.build(bench_benchmark)


@pytest.fixture(scope="module")
def queries(bench_benchmark) -> list[str]:
    all_queries = [topic.keywords for topic in bench_benchmark.topics]
    return all_queries[:SMOKE_QUERIES] if SMOKE else all_queries


@pytest.fixture(scope="module")
def measurements(service_snapshot, queries) -> dict:
    dict_service = ExpansionService.from_snapshot(service_snapshot, compact=False)
    compact_service = ExpansionService.from_snapshot(service_snapshot)

    # Cold: dict and compact interleaved per query, same process, so the
    # speedup ratio is insensitive to load drift.  The compact answer
    # must be bit-identical (ids, scores, expansion, cycles) before its
    # timing counts.
    cold_responses = []
    cold: list[float] = []
    compact_cold: list[float] = []
    cold_stages: list[dict] = []
    compact_cold_stages: list[dict] = []
    for query in queries:
        reference = dict_service.expand_query(query)
        mine = compact_service.expand_query(query)
        _assert_same_answer(mine, reference, query)
        assert mine.expansion.cycles == reference.expansion.cycles, query
        cold_responses.append(reference)
        cold.append(reference.latency_ms)
        compact_cold.append(mine.latency_ms)
        cold_stages.append(reference.stage_totals_ms())
        compact_cold_stages.append(mine.stage_totals_ms())
    cold_seconds = sum(cold) / 1000.0
    compact_cold_seconds = sum(compact_cold) / 1000.0

    cached: list[float] = []
    compact_cached: list[float] = []
    cached_stages: list[dict] = []
    compact_cached_stages: list[dict] = []
    for _ in range(CACHED_ROUNDS):
        for query in queries:
            response = dict_service.expand_query(query)
            assert response.expansion_cached, query
            cached.append(response.latency_ms)
            cached_stages.append(response.stage_totals_ms())
            response = compact_service.expand_query(query)
            assert response.expansion_cached, query
            compact_cached.append(response.latency_ms)
            compact_cached_stages.append(response.stage_totals_ms())
    cached_seconds = sum(cached) / 1000.0
    compact_cached_seconds = sum(compact_cached) / 1000.0

    batch_service = ExpansionService.from_snapshot(service_snapshot)
    batch_started = time.perf_counter()
    batch = batch_service.batch_expand(queries)
    batch_seconds = time.perf_counter() - batch_started
    assert len(batch) == len(queries)

    # Sharded serving: same traffic through the 4-shard router (compact
    # segments behind the scenes).  Results must be identical to the
    # single-shard path before any of its timings count.
    router = ShardRouter(ShardedSnapshot.from_snapshot(service_snapshot, SHARD_COUNT))
    sharded_cold: list[float] = []
    sharded_cold_stages: list[dict] = []
    sharded_cold_started = time.perf_counter()
    for query, reference in zip(queries, cold_responses):
        response = router.expand_query(query)
        _assert_same_answer(response, reference, query)
        sharded_cold.append(response.latency_ms)
        sharded_cold_stages.append(response.stage_totals_ms())
    sharded_cold_seconds = time.perf_counter() - sharded_cold_started

    sharded_cached: list[float] = []
    sharded_cached_stages: list[dict] = []
    sharded_cached_started = time.perf_counter()
    for _ in range(CACHED_ROUNDS):
        for query in queries:
            response = router.expand_query(query)
            assert response.expansion_cached, query
            sharded_cached.append(response.latency_ms)
            sharded_cached_stages.append(response.stage_totals_ms())
    sharded_cached_seconds = time.perf_counter() - sharded_cached_started

    # Warm-cache prefill: a router cold-started from a prefilled
    # snapshot must answer every benchmark topic from the expansion
    # cache on the FIRST hit, with the exact same results.
    prefilled_snapshot = ShardedSnapshot.from_snapshot(
        service_snapshot, SHARD_COUNT
    ).with_prefill(queries)
    assert prefilled_snapshot.num_prefilled > 0
    prefilled_router = ShardRouter(prefilled_snapshot)
    prefilled: list[float] = []
    prefilled_stages: list[dict] = []
    prefilled_started = time.perf_counter()
    for query, reference in zip(queries, cold_responses):
        response = prefilled_router.expand_query(query)
        assert response.expansion_cached, f"prefill missed first hit: {query}"
        _assert_same_answer(response, reference, query)
        prefilled.append(response.latency_ms)
        prefilled_stages.append(response.stage_totals_ms())
    prefilled_seconds = time.perf_counter() - prefilled_started

    # HTTP serving: the asyncio front end answering the same traffic as
    # real wire requests.  Responses are asserted bit-identical to the
    # in-process reference (doc ids AND scores survive the JSON round
    # trip — Python's JSON float writer round-trips exactly).
    http_router = ShardRouter(
        ShardedSnapshot.from_snapshot(service_snapshot, SHARD_COUNT)
    )
    front = HttpFrontEnd(AsyncShardRouter(http_router))
    loop = asyncio.new_event_loop()
    loop_thread = threading.Thread(target=loop.run_forever, daemon=True)
    loop_thread.start()
    server = asyncio.run_coroutine_threadsafe(
        front.start("127.0.0.1", 0), loop
    ).result(timeout=60)
    port = server.sockets[0].getsockname()[1]
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)

    def http_expand(query: str) -> tuple[dict, float]:
        body = json.dumps({"query": query}).encode("utf-8")
        started = time.perf_counter()
        conn.request("POST", "/expand", body,
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        assert response.status == 200, payload
        return payload, elapsed_ms

    http_cold: list[float] = []
    http_cold_stages: list[dict] = []
    http_cold_started = time.perf_counter()
    for query, reference in zip(queries, cold_responses):
        payload, elapsed_ms = http_expand(query)
        assert [(r["doc_id"], r["score"]) for r in payload["results"]] == \
               [(r.doc_id, r.score) for r in reference.results], query
        assert payload["expansion"]["article_ids"] == \
            sorted(reference.expansion.article_ids), query
        http_cold.append(elapsed_ms)
        http_cold_stages.append(payload["stages"])
    http_cold_seconds = time.perf_counter() - http_cold_started

    http_cached: list[float] = []
    http_cached_stages: list[dict] = []
    http_cached_started = time.perf_counter()
    for _ in range(CACHED_ROUNDS):
        for query in queries:
            payload, elapsed_ms = http_expand(query)
            assert payload["expansion_cached"], query
            http_cached.append(elapsed_ms)
            http_cached_stages.append(payload["stages"])
    http_cached_seconds = time.perf_counter() - http_cached_started

    conn.close()
    asyncio.run_coroutine_threadsafe(front.stop(), loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)
    loop_thread.join(timeout=60)
    front.service.close()
    http_router.close()

    # Out-of-process serving: one supervised worker process per shard
    # behind SocketShardAdapter.  Same traffic, and every response must
    # be bit-identical to the in-process reference before it counts.
    socket_sharded = ShardedSnapshot.from_snapshot(service_snapshot, SHARD_COUNT)
    socket_dir = tempfile.TemporaryDirectory(prefix="repro-bench-snapshot-")
    socket_sharded.save(socket_dir.name)
    supervisor = ShardSupervisor(socket_dir.name, SHARD_COUNT)
    supervisor.start(timeout_s=300.0)
    socket_router = AsyncShardRouter(ShardRouter(socket_sharded),
                                     supervisor=supervisor)

    async def socket_traffic():
        cold_l, cold_s = [], []
        cold_started = time.perf_counter()
        for query, reference in zip(queries, cold_responses):
            response = await socket_router.expand_query(query)
            _assert_same_answer(response, reference, query)
            cold_l.append(response.latency_ms)
            cold_s.append(response.stage_totals_ms())
        cold_secs = time.perf_counter() - cold_started
        cached_l, cached_s = [], []
        cached_started = time.perf_counter()
        for _ in range(CACHED_ROUNDS):
            for query in queries:
                response = await socket_router.expand_query(query)
                assert response.expansion_cached, query
                cached_l.append(response.latency_ms)
                cached_s.append(response.stage_totals_ms())
        cached_secs = time.perf_counter() - cached_started
        return cold_l, cold_s, cold_secs, cached_l, cached_s, cached_secs

    (socket_cold, socket_cold_stages, socket_cold_seconds,
     socket_cached, socket_cached_stages, socket_cached_seconds) = \
        asyncio.run(socket_traffic())
    socket_restarts = supervisor.restarts_total
    socket_router.close()
    supervisor.stop()
    socket_dir.cleanup()

    # Live-update overlay: a router serving THROUGH an overlay that no
    # query touches, interleaved with a plain router in the same
    # process.  The overlay must ride the disjoint fast path (delegate
    # to the compact kernels), so its cold overhead is bounded; then a
    # far delta must evict nothing and a near delta exactly its
    # neighbourhood.
    from repro.updates import UpdateCoordinator

    island = 9_500_000
    plain_router = ShardRouter(ShardedSnapshot.from_snapshot(service_snapshot, 1))
    overlay_router = ShardRouter(ShardedSnapshot.from_snapshot(service_snapshot, 1))
    coordinator = UpdateCoordinator(overlay_router)
    coordinator.apply([
        {"op": "add_article", "seq": 1, "node_id": island,
         "title": "Bench Overlay Island"},
    ])
    assert coordinator.describe()["touched_nodes"] == 1

    overlay_cold: list[float] = []
    overlay_plain_cold: list[float] = []
    overlay_cold_stages: list[dict] = []
    for query, reference in zip(queries, cold_responses):
        ref = plain_router.expand_query(query)
        mine = overlay_router.expand_query(query)
        _assert_same_answer(ref, reference, query)
        _assert_same_answer(mine, reference, query)
        overlay_plain_cold.append(ref.latency_ms)
        overlay_cold.append(mine.latency_ms)
        overlay_cold_stages.append(mine.stage_totals_ms())
    overlay_cold_seconds = sum(overlay_cold) / 1000.0

    # Far delta: a second island wired only to the first — its delta
    # ball misses every cached seed set, so every topic stays warm.
    far_summary = coordinator.apply([
        {"op": "add_article", "seq": 2, "node_id": island + 1,
         "title": "Bench Overlay Island Twin"},
        {"op": "add_edge", "seq": 3, "source": island, "target": island + 1,
         "kind": "link"},
    ])
    preserved = sum(
        1 for query in queries
        if overlay_router.expand_query(query).expansion_cached
    )
    unrelated_hit_preserved = preserved / len(queries)

    # Near delta: wire the island into the first linked topic's seed —
    # exactly that neighbourhood must be evicted and recomputed.
    target_query = next(
        query for query in queries
        if overlay_router.expand_query(query).linked
    )
    target_seed = sorted(
        overlay_router.expand_query(target_query).link.article_ids
    )[0]
    near_summary = coordinator.apply([
        {"op": "add_edge", "seq": 4, "source": island, "target": target_seed,
         "kind": "link"},
    ])
    near_evicts_target = \
        not overlay_router.expand_query(target_query).expansion_cached
    plain_router.close()
    overlay_router.close()

    stats = dict_service.stats()
    return {
        "smoke": SMOKE,
        "cold": {
            **_summarize(cold, cold_seconds),
            "stage_p50_ms": _stage_p50(cold_stages),
        },
        "cached": {
            **_summarize(cached, cached_seconds),
            "stage_p50_ms": _stage_p50(cached_stages),
        },
        "compact_cold": {
            **_summarize(compact_cold, compact_cold_seconds),
            "stage_p50_ms": _stage_p50(compact_cold_stages),
        },
        "compact_cached": {
            **_summarize(compact_cached, compact_cached_seconds),
            "stage_p50_ms": _stage_p50(compact_cached_stages),
        },
        "compact_speedup": {
            "cold_p50_ratio": round(
                statistics.median(cold) / statistics.median(compact_cold), 2
            ),
            "cold_mean_ratio": round(
                statistics.fmean(cold) / statistics.fmean(compact_cold), 2
            ),
        },
        "batched_cold": {
            "queries": len(queries),
            "total_seconds": round(batch_seconds, 3),
            "throughput_qps": round(len(queries) / batch_seconds, 1),
        },
        "sharded_cold": {
            "shards": SHARD_COUNT,
            **_summarize(sharded_cold, sharded_cold_seconds),
            "stage_p50_ms": _stage_p50(sharded_cold_stages),
        },
        "sharded_cached": {
            "shards": SHARD_COUNT,
            **_summarize(sharded_cached, sharded_cached_seconds),
            "stage_p50_ms": _stage_p50(sharded_cached_stages),
        },
        "prefilled": {
            "shards": SHARD_COUNT,
            "entries": prefilled_snapshot.num_prefilled,
            "first_hit_cached": True,  # asserted per query above
            **_summarize(prefilled, prefilled_seconds),
            "stage_p50_ms": _stage_p50(prefilled_stages),
        },
        "http_cold": {
            "shards": SHARD_COUNT,
            "identical_to_in_process": True,  # asserted per query above
            **_summarize(http_cold, http_cold_seconds),
            "stage_p50_ms": _stage_p50(http_cold_stages),
        },
        "http_cached": {
            "shards": SHARD_COUNT,
            **_summarize(http_cached, http_cached_seconds),
            "stage_p50_ms": _stage_p50(http_cached_stages),
        },
        "socket_workers_cold": {
            "shards": SHARD_COUNT,
            "workers": SHARD_COUNT,
            "identical_to_in_process": True,  # asserted per query above
            "worker_restarts": socket_restarts,
            **_summarize(socket_cold, socket_cold_seconds),
            "stage_p50_ms": _stage_p50(socket_cold_stages),
        },
        "socket_workers_cached": {
            "shards": SHARD_COUNT,
            "workers": SHARD_COUNT,
            **_summarize(socket_cached, socket_cached_seconds),
            "stage_p50_ms": _stage_p50(socket_cached_stages),
        },
        "delta_overlay": {
            "shards": 1,
            "empty_overlay_cold": {
                **_summarize(overlay_cold, overlay_cold_seconds),
                "stage_p50_ms": _stage_p50(overlay_cold_stages),
            },
            "plain_cold_p50_ms": round(
                statistics.median(overlay_plain_cold), 3
            ),
            "empty_overlay_overhead_ratio": round(
                statistics.median(overlay_cold)
                / statistics.median(overlay_plain_cold), 3
            ),
            "unrelated_hit_preserved": unrelated_hit_preserved,
            "far_delta_invalidated": far_summary["invalidated"],
            "near_delta_invalidated": near_summary["invalidated"],
            "near_delta_evicts_target": near_evicts_target,
        },
        "cache_hit_rate": {
            "link": round(stats.link_cache.hit_rate, 4),
            "expansion": round(stats.expansion_cache.hit_rate, 4),
        },
    }


def test_cached_p50_strictly_below_cold(measurements):
    """The cache layer must make the hot path measurably faster."""
    assert measurements["cached"]["p50_ms"] < measurements["cold"]["p50_ms"]


def test_cached_throughput_exceeds_cold(measurements):
    assert measurements["cached"]["throughput_qps"] > \
        measurements["cold"]["throughput_qps"]


def test_cache_hit_rate_reflects_warm_traffic(measurements):
    # 1 cold + CACHED_ROUNDS warm passes => hit rate = rounds / (rounds + 1).
    expected = CACHED_ROUNDS / (CACHED_ROUNDS + 1)
    assert measurements["cache_hit_rate"]["expansion"] == pytest.approx(
        expected, abs=0.01
    )


def test_batched_cold_not_slower_than_sequential_cold(measurements):
    """Amortised batching must not regress below one-by-one serving."""
    assert measurements["batched_cold"]["throughput_qps"] >= \
        0.8 * measurements["cold"]["throughput_qps"]


def test_sharded_cached_p50_strictly_below_sharded_cold(measurements):
    """The cache layers must keep paying off behind the router too."""
    assert measurements["sharded_cached"]["p50_ms"] < \
        measurements["sharded_cold"]["p50_ms"]


def test_compact_cold_is_at_least_1_5x_faster(measurements):
    """The frozen read path must beat the dict path by >= 1.5x cold.

    Measured in one process over interleaved queries, so the ratio —
    unlike raw latencies — is robust to machine speed.  Smoke runs keep
    the key in the schema but skip the floor: six queries are too few
    for a stable median on a loaded CI box.
    """
    ratio = measurements["compact_speedup"]["cold_p50_ratio"]
    assert ratio > 0
    if measurements["smoke"]:
        pytest.skip(f"smoke run (ratio {ratio}); the floor is asserted on full runs")
    assert ratio >= COMPACT_SPEEDUP_FLOOR, measurements["compact_speedup"]


def test_http_responses_bit_identical_to_in_process_router(measurements):
    """POST /expand must serve the exact in-process answer over the wire.

    Doc ids and scores are asserted equal per query while measuring
    (after a full JSON round trip); this test pins the flag in the
    emitted schema so the assertion cannot silently disappear.
    """
    assert measurements["http_cold"]["identical_to_in_process"] is True
    assert measurements["http_cold"]["queries"] == measurements["cold"]["queries"]


def test_socket_workers_bit_identical_to_in_process(measurements):
    """Worker processes must serve the exact in-process answer.

    Doc ids AND scores are asserted equal per query while measuring;
    this pins the flag in the emitted schema, plus the expectation that
    unfaulted workers never restart during a bench run.
    """
    assert measurements["socket_workers_cold"]["identical_to_in_process"] is True
    assert measurements["socket_workers_cold"]["queries"] == \
        measurements["cold"]["queries"]
    assert measurements["socket_workers_cold"]["worker_restarts"] == 0


def test_socket_workers_cached_p50_strictly_below_cold(measurements):
    """Remote workers keep their own expansion caches: a warm hit over
    the wire protocol must still beat cold cycle mining."""
    assert measurements["socket_workers_cached"]["p50_ms"] < \
        measurements["socket_workers_cold"]["p50_ms"]


def test_http_cached_p50_strictly_below_http_cold(measurements):
    """Caches keep paying off behind the network front end: a cached hit
    plus wire overhead must still beat cold cycle mining."""
    assert measurements["http_cached"]["p50_ms"] < \
        measurements["http_cold"]["p50_ms"]


def test_prefilled_router_serves_first_hits_at_cached_tier(measurements):
    """A prefilled snapshot's topics never pay the cold path at all.

    ``first_hit_cached`` is asserted per query while measuring; here the
    latency must sit far below cold — prefilled first hits only pay
    ranking, like any cache hit.
    """
    assert measurements["prefilled"]["first_hit_cached"]
    assert measurements["prefilled"]["entries"] > 0
    assert measurements["prefilled"]["p50_ms"] < measurements["cold"]["p50_ms"]


def test_empty_overlay_overhead_within_ten_percent(measurements):
    """A published-but-irrelevant overlay must ride the fast path.

    Cold p50 through a router carrying an overlay no query touches,
    against a plain router interleaved in the same process — the ratio
    is machine-robust the same way ``compact_speedup`` is.  Smoke runs
    keep the key in the schema but skip the ceiling.
    """
    ratio = measurements["delta_overlay"]["empty_overlay_overhead_ratio"]
    assert ratio > 0
    if measurements["smoke"]:
        pytest.skip(f"smoke run (ratio {ratio}); the ceiling is asserted on full runs")
    assert ratio <= 1.10, measurements["delta_overlay"]


def test_unrelated_topics_keep_cache_hits_across_deltas(measurements):
    """Targeted invalidation: a delta whose ball misses every cached
    seed set must preserve every hit, and a delta next to a cached
    seed must evict that entry."""
    overlay = measurements["delta_overlay"]
    assert overlay["unrelated_hit_preserved"] == 1.0
    assert overlay["far_delta_invalidated"]["expansion"] == 0
    assert overlay["near_delta_invalidated"]["expansion"] >= 1
    assert overlay["near_delta_evicts_target"] is True


def test_emit_bench_json(measurements):
    """Persist the numbers so the perf trajectory is tracked across PRs.

    Smoke runs still write and re-validate the JSON (that is the point:
    the schema cannot silently rot), just with fewer samples.

    Keys owned by other bench modules (``cycle_kernel_speedup`` is
    written by ``test_timing_cycle_mining.py``, which sorts after this
    file; ``loadgen_slo`` by ``test_loadgen_slo.py``, which sorts
    before it) are carried over from the existing file rather than
    clobbered.
    """
    merged = dict(measurements)
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            previous = {}
        for key in ("cycle_kernel_speedup", "loadgen_slo"):
            if key in previous and key not in merged:
                merged[key] = previous[key]
    BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    written = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert written["cold"]["queries"] == written["cached"]["queries"] // CACHED_ROUNDS
    assert written["sharded_cold"]["shards"] == SHARD_COUNT
    for regime in ("cold", "cached", "compact_cold", "compact_cached",
                   "sharded_cold", "sharded_cached", "prefilled",
                   "http_cold", "http_cached",
                   "socket_workers_cold", "socket_workers_cached"):
        assert written[regime]["p50_ms"] > 0
        assert written[regime]["p99_ms"] >= written[regime]["p50_ms"]
        assert written[regime]["throughput_qps"] > 0
        stage_p50 = written[regime]["stage_p50_ms"]
        assert stage_p50, regime  # every regime traces at least one stage
        assert all(ms >= 0 for ms in stage_p50.values()), regime
    # Cold regimes mine cycles; cached regimes never do but still rank.
    assert "cycle_mine" in written["sharded_cold"]["stage_p50_ms"]
    assert "cycle_mine" not in written["sharded_cached"]["stage_p50_ms"]
    assert "rank" in written["sharded_cached"]["stage_p50_ms"]
    assert "rank" in written["http_cached"]["stage_p50_ms"]
    assert written["compact_speedup"]["cold_p50_ratio"] > 0
    assert written["compact_speedup"]["cold_mean_ratio"] > 0
    assert written["prefilled"]["first_hit_cached"] is True
    assert written["http_cold"]["identical_to_in_process"] is True
    assert written["socket_workers_cold"]["identical_to_in_process"] is True
    assert written["socket_workers_cold"]["worker_restarts"] == 0
    assert "rank" in written["socket_workers_cached"]["stage_p50_ms"]
    overlay = written["delta_overlay"]
    assert overlay["empty_overlay_cold"]["p50_ms"] > 0
    assert overlay["plain_cold_p50_ms"] > 0
    assert overlay["empty_overlay_overhead_ratio"] > 0
    assert overlay["unrelated_hit_preserved"] == 1.0
    assert overlay["far_delta_invalidated"]["expansion"] == 0
    assert overlay["near_delta_invalidated"]["expansion"] >= 1
    assert overlay["near_delta_evicts_target"] is True
