"""Table 2 — quartiles of the ground truth's top-r precision.

Paper values (min / 25% / 50% / 75% / max):

    top-1   0    1     1    1     1
    top-5   0    1     1    1     1
    top-10  0.2  0.6   0.9  1     1
    top-15  0.2  0.65  0.8  0.85  1

Shape to hold: the local search achieves near-perfect early precision
(median top-1 and top-5 of 1), with top-10/15 high but below 1.
"""

from repro.harness import PAPER_TABLE2, format_five_point_table, table2_ground_truth_precision


def test_table2_ground_truth_precision(benchmark, pipeline_result):
    rows = benchmark(table2_ground_truth_precision, pipeline_result)

    print()
    print(format_five_point_table(rows, "Table 2 (measured vs paper)", PAPER_TABLE2))

    assert set(rows) == {"top-1", "top-5", "top-10", "top-15"}
    # Paper shape: medians of the early ranks are perfect.
    assert rows["top-1"].median == 1.0
    assert rows["top-5"].median >= 0.9
    # Deeper ranks stay high but are the hard part.
    assert rows["top-10"].median >= 0.6
    assert rows["top-15"].median >= 0.6
    # Quartile ordering is internally consistent.
    for summary in rows.values():
        assert summary.as_tuple() == tuple(sorted(summary.as_tuple()))
