"""Table 3 — statistics of the query graphs' largest connected component.

Paper values (min / 25% / 50% / 75% / max):

    %size            0.164  0.477  0.587  0.688  1
    %query nodes     0      1      1      1      1
    %articles        0.025  0.148  0.217  0.269  0.5
    %categories      0.5    0.731  0.783  0.852  0.975
    expansion ratio  0      2.125  4.5    23.75  176

Shapes to hold: the LCC contains (nearly) all query articles, categories
dominate articles, and the expansion ratio sits well above 1.
"""

from repro.harness import PAPER_TABLE3, format_five_point_table, table3_largest_cc_stats


def test_table3_largest_cc_stats(benchmark, pipeline_result):
    rows = benchmark(table3_largest_cc_stats, pipeline_result)

    print()
    print(format_five_point_table(rows, "Table 3 (measured vs paper)", PAPER_TABLE3))

    assert rows["%query nodes"].median == 1.0
    assert rows["%categories"].median > rows["%articles"].median
    assert rows["%categories"].median >= 0.5
    assert rows["%articles"].maximum <= 0.55
    assert rows["expansion ratio"].median > 1.0
    assert 0.0 < rows["%size"].median <= 1.0
