"""Table 4 — precision of expansion features from cycles of given lengths.

Paper values (top-1 / top-5 / top-10 / top-15):

    2            0.826  0.539  0.539  0.552
    3            0.833  0.578  0.519  0.513
    4            0.703  0.589  0.541  0.494
    5            0.788  0.624  0.588  0.547
    2 & 3        0.944  0.656  0.583  0.621
    2 & 3 & 4    0.944  0.667  0.594  0.629
    2 & 3 & 4 & 5  0.944  0.667  0.622  0.658

Shapes to hold: every configuration is strong (all articles come from the
ground truth), combining lengths is at least as good at depth as any
single length it includes, and the all-lengths configuration is the best
(or tied) at top-15.  Our absolute numbers run higher than the paper's —
the synthetic collection is smaller and cleaner than ImageCLEF (see
EXPERIMENTS.md).
"""

from repro.harness import (
    PAPER_TABLE4,
    format_table4,
    table4_cycle_expansion_precision,
)


def test_table4_cycle_expansion_precision(benchmark, pipeline_result):
    rows = benchmark.pedantic(
        table4_cycle_expansion_precision, args=(pipeline_result,),
        rounds=3, iterations=1,
    )

    print()
    print(format_table4(rows, pipeline_result.config.ranks, PAPER_TABLE4))

    by_lengths = {row.lengths: row.precisions for row in rows}
    assert set(by_lengths) == set(PAPER_TABLE4)

    # Every configuration beats the unexpanded baseline at depth.
    base_top15 = sum(
        o.base_score.precision_at(15) for o in pipeline_result.outcomes
    ) / pipeline_result.num_queries
    for lengths, precisions in by_lengths.items():
        assert precisions[15] > base_top15, lengths

    # The all-lengths configuration is the best or tied at top-15 ...
    full = by_lengths[(2, 3, 4, 5)][15]
    assert all(full >= by_lengths[c][15] - 1e-9 for c in by_lengths)
    # ... and combining 2 & 3 does not fall below 3 alone (paper's row order).
    assert by_lengths[(2, 3)][15] >= by_lengths[(3,)][15]
    # Early precision stays high everywhere, as in the paper's top-1 column.
    for lengths, precisions in by_lengths.items():
        assert precisions[1] >= 0.7, lengths
