"""Section 4 challenge — cycle mining cost grows steeply with max length.

The paper reports ~6 minutes per query graph (avg 208 nodes) for cycles
up to length 5 on a high-performance graph database, and names the
exponential growth in the maximum length as the open challenge.  This
bench measures our miner across the sweep max_length = 2..5 over all
query graphs — for both engines, so the growth curve of the general DFS
and the bitset kernels (:mod:`repro.core.cycle_kernels`) stay visible
side by side.

``test_cycle_kernel_speedup_interleaved`` is the acceptance measurement
for the kernel engine: the deployed cold path (compact graph view,
:class:`NeighborhoodCycleExpander`) timed under both engines strictly
interleaved per query in one process — machine drift cancels out of the
ratio — with every kernel expansion asserted bit-identical to its DFS
twin before any timing counts.  The ratio is merged into
``BENCH_service.json`` under ``cycle_kernel_speedup`` (read-modify-write,
so the regimes written by ``test_service_latency.py`` survive, and vice
versa).
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.core import CycleFinder, NeighborhoodCycleExpander
from repro.wiki.compact import CompactGraphView

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SMOKE_QUERIES = 6
KERNEL_SPEEDUP_FLOOR = 3.0


def _mine_all(pipeline_result, max_length: int, engine: str) -> int:
    total = 0
    for outcome in pipeline_result.outcomes:
        finder = CycleFinder(
            outcome.query_graph.graph,
            min_length=2,
            max_length=max_length,
            engine=engine,
        )
        total += len(finder.find(anchors=outcome.query_graph.seed_articles))
    return total


@pytest.mark.parametrize("engine", ["dfs", "kernels"])
@pytest.mark.parametrize("max_length", [2, 3, 4, 5])
def test_timing_cycle_mining(benchmark, pipeline_result, max_length, engine):
    total = benchmark(_mine_all, pipeline_result, max_length, engine)
    # Longer bounds can only find more cycles.
    assert total >= 0
    if max_length == 5:
        assert total > 0


def test_timing_full_graph_neighborhood(benchmark, bench_benchmark):
    """Mining around a seed in the *full* graph (the deployed path)."""
    from repro.linking import EntityLinker

    graph = bench_benchmark.graph
    linker = EntityLinker(graph)
    topic = bench_benchmark.topics[0]
    seeds = linker.link_keywords(topic.keywords)
    expander = NeighborhoodCycleExpander()

    result = benchmark(expander.expand, graph, seeds)
    assert result.num_features >= 0


def test_cycle_kernel_speedup_interleaved(bench_benchmark, pipeline_result):
    """DFS vs kernels on the deployed cold path, interleaved, one process.

    Emits the ``cycle_kernel_speedup`` key into ``BENCH_service.json``
    and (on full runs) asserts the ROADMAP acceptance floor of >= 3x on
    the interleaved p50 ratio.  Smoke runs still measure and emit —
    the schema cannot rot — but skip the floor: six queries are too few
    for a stable median on a loaded CI box.
    """
    graph = CompactGraphView.from_graph(bench_benchmark.graph)
    seed_sets = [
        frozenset(outcome.seed_articles)
        for outcome in pipeline_result.outcomes
        if outcome.seed_articles
    ]
    if SMOKE:
        seed_sets = seed_sets[:SMOKE_QUERIES]
    assert seed_sets, "benchmark produced no linked seed sets"

    dfs = NeighborhoodCycleExpander(engine="dfs")
    kernels = NeighborhoodCycleExpander(engine="kernels")

    # Untimed warm-up pass: fills the view's decode caches so neither
    # engine pays first-touch costs inside the timed loop.
    for seeds in seed_sets:
        dfs.expand(graph, seeds)
        kernels.expand(graph, seeds)

    dfs_ms: list[float] = []
    kernel_ms: list[float] = []
    for seeds in seed_sets:
        started = time.perf_counter()
        reference = dfs.expand(graph, seeds)
        dfs_ms.append((time.perf_counter() - started) * 1000.0)

        started = time.perf_counter()
        mine = kernels.expand(graph, seeds)
        kernel_ms.append((time.perf_counter() - started) * 1000.0)

        # Bit-identical before the timing counts: same articles, titles
        # AND the same qualifying cycles with the same features.
        assert mine == reference, sorted(seeds)

    ratio_p50 = statistics.median(dfs_ms) / statistics.median(kernel_ms)
    ratio_mean = statistics.fmean(dfs_ms) / statistics.fmean(kernel_ms)
    payload = {
        "queries": len(seed_sets),
        "dfs_p50_ms": round(statistics.median(dfs_ms), 3),
        "kernels_p50_ms": round(statistics.median(kernel_ms), 3),
        "cold_p50_ratio": round(ratio_p50, 2),
        "cold_mean_ratio": round(ratio_mean, 2),
        "identical_expansions": True,  # asserted per query above
    }

    # Read-modify-write: preserve the regimes test_service_latency.py
    # wrote (and anything else already in the file).
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            existing = {}
    existing["cycle_kernel_speedup"] = payload
    BENCH_PATH.write_text(
        json.dumps(existing, indent=2) + "\n", encoding="utf-8"
    )

    assert ratio_p50 > 0 and ratio_mean > 0
    if SMOKE:
        pytest.skip(
            f"smoke run (p50 ratio {ratio_p50:.2f}); the >= "
            f"{KERNEL_SPEEDUP_FLOOR}x floor is asserted on full runs"
        )
    assert ratio_p50 >= KERNEL_SPEEDUP_FLOOR, payload
