"""Section 4 challenge — cycle mining cost grows steeply with max length.

The paper reports ~6 minutes per query graph (avg 208 nodes) for cycles
up to length 5 on a high-performance graph database, and names the
exponential growth in the maximum length as the open challenge.  This
bench measures our miner across the sweep max_length = 2..5 over all
query graphs, so the growth curve is visible in the benchmark table.
"""

import pytest

from repro.core import CycleFinder


def _mine_all(pipeline_result, max_length: int) -> int:
    total = 0
    for outcome in pipeline_result.outcomes:
        finder = CycleFinder(
            outcome.query_graph.graph, min_length=2, max_length=max_length
        )
        total += len(finder.find(anchors=outcome.query_graph.seed_articles))
    return total


@pytest.mark.parametrize("max_length", [2, 3, 4, 5])
def test_timing_cycle_mining(benchmark, pipeline_result, max_length):
    total = benchmark(_mine_all, pipeline_result, max_length)
    # Longer bounds can only find more cycles.
    assert total >= 0
    if max_length == 5:
        assert total > 0


def test_timing_full_graph_neighborhood(benchmark, bench_benchmark):
    """Mining around a seed in the *full* graph (the deployed path)."""
    from repro.core import NeighborhoodCycleExpander
    from repro.linking import EntityLinker

    graph = bench_benchmark.graph
    linker = EntityLinker(graph)
    topic = bench_benchmark.topics[0]
    seeds = linker.link_keywords(topic.keywords)
    expander = NeighborhoodCycleExpander()

    result = benchmark(expander.expand, graph, seeds)
    assert result.num_features >= 0
