"""Walk one query's graph the way Section 3 walks query #90.

Builds the ground truth for a single topic, assembles its query graph,
enumerates the anchored cycles, and prints each cycle with its features
(length, category ratio, density of extra edges) and measured contribution
— the per-cycle view behind Figures 4, 5, 7 and 9.

Run:  python examples/cycle_analysis.py
"""

import random

from repro.collection import Benchmark
from repro.core import (
    CycleFinder,
    Evaluator,
    GroundTruthSearch,
    build_query_graph,
    compute_features,
)
from repro.linking import EntityLinker


def main() -> None:
    benchmark = Benchmark.synthetic()
    graph = benchmark.graph
    engine = benchmark.build_engine()
    linker = EntityLinker(graph)

    topic = benchmark.topics[3]
    print(f"topic #{topic.topic_id}: {topic.keywords!r}")

    # L(q.k): entities in the keywords; L(q.D): entities in relevant docs.
    seeds = linker.link_keywords(topic.keywords)
    candidates = set()
    for doc_id in sorted(topic.relevant):
        text = benchmark.documents[doc_id].extraction_text()
        candidates |= linker.link(text).article_ids
    print(f"L(q.k) = {sorted(graph.title(a) for a in seeds)}")
    print(f"|L(q.D)| = {len(candidates)} candidate articles")

    # X(q) via the ADD/REMOVE/SWAP local search.
    evaluator = Evaluator(engine, graph, topic.relevant)
    search = GroundTruthSearch(evaluator, rng=random.Random(42))
    ground_truth = search.run(seeds, candidates)
    print(f"\nO(L(q.k))      = {evaluator.quality(seeds):.3f}")
    print(f"O(X(q))        = {ground_truth.score.mean:.3f}")
    print(f"expansion set  = "
          f"{sorted(graph.title(a) for a in ground_truth.expansion_set)}")
    print("search trace:")
    for step in ground_truth.steps:
        added = graph.title(step.added) if step.added is not None else "-"
        removed = graph.title(step.removed) if step.removed is not None else "-"
        print(f"  {str(step.operation):<6} +{added:<40} -{removed:<30} "
              f"O={step.quality:.3f}")

    # G(q) and its anchored cycles.
    query_graph = build_query_graph(graph, seeds, ground_truth.expansion_set)
    stats = query_graph.stats()
    print(f"\nG(q): {query_graph.num_nodes} nodes "
          f"({stats.article_ratio:.0%} articles, "
          f"{stats.category_ratio:.0%} categories), "
          f"LCC covers {stats.relative_size:.0%}, TPR {stats.tpr:.2f}")

    finder = CycleFinder(query_graph.graph, min_length=2, max_length=5)
    print("\ncycles through L(q.k):")
    for cycle in finder.find(anchors=query_graph.seed_articles):
        features = compute_features(query_graph.graph, cycle)
        articles = [n for n in cycle.nodes if query_graph.graph.is_article(n)]
        contribution = evaluator.contribution_of(seeds, articles)
        names = " - ".join(query_graph.graph.title(n) for n in cycle.nodes)
        density = features.extra_edge_density
        density_text = f"{density:.2f}" if density is not None else "  — "
        print(f"  len={features.length} catratio={features.category_ratio:.2f} "
              f"density={density_text} contribution={contribution:+6.1f}%  ({names})")


if __name__ == "__main__":
    main()
