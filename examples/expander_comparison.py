"""Compare expansion strategies over the whole benchmark.

Evaluates four deployable expanders (no ground truth required at query
time) against each topic:

* no expansion (the raw keywords),
* direct links (the prior work the paper contrasts with),
* cycle expansion with the paper's filters (dense cycles, ~30% categories),
* cycle expansion plus redirect titles (the paper's future-work idea).

Prints the mean top-r precision per strategy — the "real query expansion
system" reading of the paper's findings.

Run:  python examples/expander_comparison.py
"""

from repro.collection import Benchmark
from repro.core import (
    CycleExpander,
    DirectLinkExpander,
    NeighborhoodCycleExpander,
    NullExpander,
    RedirectExpander,
    top_r_precision,
)
from repro.linking import EntityLinker

RANKS = (1, 5, 10, 15)


def make_strategies():
    # Default filters = the paper's rule (dense cycles, ~30% categories).
    cycle = NeighborhoodCycleExpander()
    unfiltered = NeighborhoodCycleExpander(CycleExpander(lengths=(2, 3, 4, 5)))
    return {
        "keywords only": NullExpander(),
        "direct links": DirectLinkExpander(max_features=15),
        "all cycles (no filter)": unfiltered,
        "dense cycles (paper)": cycle,
        "dense cycles + redirects": RedirectExpander(cycle),
    }


def main() -> None:
    benchmark = Benchmark.synthetic()
    graph = benchmark.graph
    engine = benchmark.build_engine()
    linker = EntityLinker(graph)
    strategies = make_strategies()

    sums = {name: {r: 0.0 for r in RANKS} for name in strategies}
    evaluated = 0
    for topic in benchmark.topics:
        seeds = linker.link_keywords(topic.keywords)
        if not seeds:
            continue
        evaluated += 1
        for name, expander in strategies.items():
            expansion = expander.expand(graph, seeds)
            results = engine.search_phrases(
                expansion.all_titles(graph), top_k=max(RANKS)
            )
            ranked = [r.doc_id for r in results]
            for r in RANKS:
                sums[name][r] += top_r_precision(ranked, topic.relevant, r)

    print(f"mean precision over {evaluated} topics")
    header = f"{'strategy':<26}" + "".join(f"{f'top-{r}':>8}" for r in RANKS)
    print(header)
    print("-" * len(header))
    for name in strategies:
        row = f"{name:<26}" + "".join(
            f"{sums[name][r] / evaluated:>8.3f}" for r in RANKS
        )
        print(row)


if __name__ == "__main__":
    main()
