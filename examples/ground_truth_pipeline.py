"""Reproduce the paper's pipeline end to end and print every artefact.

Runs the Section 2 ground-truth construction (entity linking, the
ADD/REMOVE/SWAP local search for X(q), query graph assembly) and the
Section 3 cycle analysis over a medium benchmark, then prints Tables 2-4
and the series behind Figures 5-9, with the paper's values alongside.

Run:  python examples/ground_truth_pipeline.py
"""

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.harness import (
    PAPER_FIG5,
    PAPER_FIG6,
    PAPER_FIG7A,
    PAPER_FIG7B,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PipelineConfig,
    fig5_contribution_by_length,
    fig6_cycle_counts,
    fig7a_category_ratio,
    fig7b_density,
    fig9_density_vs_contribution,
    format_five_point_table,
    format_series_comparison,
    format_table4,
    run_pipeline,
    sec3_structural_stats,
    table2_ground_truth_precision,
    table3_largest_cc_stats,
    table4_cycle_expansion_precision,
)
from repro.wiki import SyntheticWikiConfig


def main() -> None:
    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=7, num_domains=25),
        SyntheticCollectionConfig(seed=13),
    )
    print(f"running pipeline over {benchmark.num_topics} topics ...")
    result = run_pipeline(benchmark, PipelineConfig(seed=97))

    print()
    print(format_five_point_table(
        table2_ground_truth_precision(result),
        "Table 2 — precision of the ground truth", paper=PAPER_TABLE2))
    print()
    print(format_five_point_table(
        table3_largest_cc_stats(result),
        "Table 3 — largest connected component of G(q)", paper=PAPER_TABLE3))
    print()
    print(format_table4(
        table4_cycle_expansion_precision(result), result.config.ranks,
        PAPER_TABLE4))
    print()
    print(format_series_comparison(
        fig5_contribution_by_length(result), PAPER_FIG5,
        "Figure 5 — avg contribution (%) by cycle length"))
    print()
    print(format_series_comparison(
        fig6_cycle_counts(result), PAPER_FIG6,
        "Figure 6 — avg cycles per query by length"))
    print()
    print(format_series_comparison(
        fig7a_category_ratio(result), PAPER_FIG7A,
        "Figure 7a — avg category ratio by length"))
    print()
    print(format_series_comparison(
        fig7b_density(result), PAPER_FIG7B,
        "Figure 7b — avg density of extra edges by length"))
    print()
    fig9 = fig9_density_vs_contribution(result)
    print(f"Figure 9 — density vs contribution: slope {fig9.slope:+.2f} "
          "(paper: positive)")

    stats = sec3_structural_stats(result)
    print(f"\nLCC triangle participation ratio: {stats.average_tpr:.3f} "
          "(paper ~0.3)")
    print(f"2-cycle pair ratio in the graph:  "
          f"{stats.reciprocal_pair_ratio:.4f} (paper 0.1147)")
    print(f"avg expansion improvement:        "
          f"{stats.average_improvement_percent:+.1f}%")


if __name__ == "__main__":
    main()
