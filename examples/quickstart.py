"""Quickstart: expand a query with Wikipedia cycle structure.

Builds the default synthetic benchmark (a stand-in for Wikipedia +
ImageCLEF 2011; see DESIGN.md), links a query's keywords to articles,
mines cycles around them, and searches with and without the expansion
features.

Run:  python examples/quickstart.py
"""

from repro.collection import Benchmark
from repro.core import CycleExpander, NeighborhoodCycleExpander
from repro.linking import EntityLinker


def main() -> None:
    # 1. The knowledge base + document collection + topics, generated
    #    deterministically (seed inside the default configs).
    benchmark = Benchmark.synthetic()
    graph = benchmark.graph
    print(f"benchmark: {benchmark!r}")

    # 2. Pick a topic and link its keywords to Wikipedia articles - the
    #    paper's L(q.k).
    topic = benchmark.topics[0]
    print(f"\nquery keywords: {topic.keywords!r}")
    linker = EntityLinker(graph)
    seeds = linker.link_keywords(topic.keywords)
    print("linked entities:", [graph.title(a) for a in sorted(seeds)])

    # 3. Expand: mine cycles of length 2-5 around the entities, keep the
    #    dense ones with roughly 30% categories (the paper's conclusion —
    #    these are NeighborhoodCycleExpander's default filters).
    expander = NeighborhoodCycleExpander()
    expansion = expander.expand(graph, seeds)
    print(f"\nexpansion features ({expansion.num_features}):")
    for title in expansion.titles:
        print(f"  + {title}")

    # 4. Search with the original keywords vs the expanded query.
    engine = benchmark.build_engine()
    seed_titles = [graph.title(a) for a in sorted(seeds)]

    def precision_at_10(titles):
        results = engine.search_phrases(titles, top_k=10)
        hits = sum(1 for r in results if r.doc_id in topic.relevant)
        return hits / 10

    print(f"\ntop-10 precision, keywords only: {precision_at_10(seed_titles):.2f}")
    print(f"top-10 precision, expanded:      "
          f"{precision_at_10(expansion.all_titles(graph)):.2f}")


if __name__ == "__main__":
    main()
