"""Export a query graph as Graphviz DOT and write a full markdown report.

Reproduces the paper's Figure 3 (a query graph drawn with node shapes per
role) for one topic of the default benchmark, writes DOT files for the
graph and its first few cycles (Figure 4), and saves the full run report.

Run:  python examples/visualize_query_graph.py
Outputs land in ./out/ (DOT renders with `dot -Tpng`, if available).
"""

from pathlib import Path

from repro.collection import Benchmark, SyntheticCollectionConfig
from repro.core import (
    CycleFinder,
    cycle_to_dot,
    describe_query_graph,
    expansion_distance_histogram,
    query_graph_to_dot,
)
from repro.harness import PipelineConfig, run_pipeline, save_report
from repro.wiki import SyntheticWikiConfig


def main() -> None:
    out = Path("out")
    out.mkdir(exist_ok=True)

    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=7, num_domains=12),
        SyntheticCollectionConfig(seed=13),
    )
    result = run_pipeline(benchmark, PipelineConfig(seed=97))

    # The topic with the largest query graph makes the best Figure 3.
    outcome = max(result.outcomes, key=lambda o: o.query_graph.num_nodes)
    print(f"topic #{outcome.topic.topic_id}: {outcome.topic.keywords!r}")
    print(describe_query_graph(outcome.query_graph))

    dot_path = out / f"query_graph_{outcome.topic.topic_id}.dot"
    dot_path.write_text(query_graph_to_dot(outcome.query_graph), encoding="utf-8")
    print(f"\nwrote {dot_path} (render: dot -Tpng -O {dot_path})")

    finder = CycleFinder(outcome.query_graph.graph, min_length=2, max_length=5)
    cycles = finder.find(anchors=outcome.query_graph.seed_articles)
    for index, cycle in enumerate(cycles[:3]):
        path = out / f"cycle_{outcome.topic.topic_id}_{index}.dot"
        path.write_text(
            cycle_to_dot(outcome.query_graph.graph, cycle, name=f"cycle{index}"),
            encoding="utf-8",
        )
        print(f"wrote {path} (length {cycle.length})")

    histogram = expansion_distance_histogram(outcome.query_graph)
    print("\nexpansion feature distance from L(q.k):", histogram,
          "(paper: up to distance 3)")

    report_path = save_report(result, out / "report.md")
    print(f"\nfull report: {report_path}")


if __name__ == "__main__":
    main()
