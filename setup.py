"""Setup shim: lets the package install in environments without the
``wheel`` package (offline), via ``python setup.py develop``."""
from setuptools import setup

setup()
