"""Reproduction of *Understanding Graph Structure of Wikipedia for Query
Expansion* (Guisado-Gamez & Prat-Perez, 2015, arXiv:1505.01306).

Subpackages
-----------
``repro.wiki``
    Wikipedia article/category graph substrate (schema of the paper's
    Figure 1), dump IO and a calibrated synthetic generator.
``repro.retrieval``
    INDRI-like language-model search engine with exact phrase matching.
``repro.linking``
    Largest-substring entity linking with redirect-derived synonyms.
``repro.collection``
    ImageCLEF-2011-style document collection, topics and synthesis.
``repro.core``
    The paper's contribution: ground-truth construction, query graphs,
    cycle enumeration/features, cycle-based query expansion and analysis.
``repro.harness``
    Experiment runner that regenerates every table and figure.
``repro.service``
    Online serving layer: persistent snapshots, LRU caching, and the
    thread-safe batched :class:`~repro.service.server.ExpansionService`.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
