"""Shared binary container for compact (frozen) artifacts.

The compact read path (:mod:`repro.retrieval.compact`,
:mod:`repro.wiki.compact`) serialises its numeric arrays into one flat
blob per artifact so a service can map the file into memory and serve
straight from the page cache — no per-posting parsing on the cold-start
path.  This module is the container format both artifact kinds share:

* an 8-byte magic identifying the artifact kind;
* a little-endian ``uint32`` header length followed by a UTF-8 JSON
  header (small metadata: vocabularies, titles, counts) carrying a
  ``__sections__`` table that names every numeric section with its
  relative offset, item count and ``array`` typecode;
* 8-byte-aligned numeric sections (``array('i')`` / ``array('d')`` /
  raw bytes), written with :meth:`array.array.tobytes` and read back as
  zero-copy ``memoryview.cast`` slices.

Readers therefore never copy the bulk data: :func:`unpack_blob` returns
typed memoryviews into the caller's buffer, which may be a ``bytes``
object or an ``mmap`` (see :func:`map_blob`).  Native byte order is
recorded in the header and checked on read; a blob written on a
different-endian machine is rejected instead of silently misread.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
from array import array
from pathlib import Path

__all__ = ["pack_blob", "unpack_blob", "map_blob", "BlobHandle"]

_HEADER_LEN_STRUCT = struct.Struct("<I")
_ALIGNMENT = 8
_MAGIC_LEN = 8


def _aligned(offset: int) -> int:
    return offset + (-offset) % _ALIGNMENT


def pack_blob(magic: bytes, header: dict, sections: dict[str, "array | bytes"]) -> bytes:
    """Serialise ``header`` + numeric ``sections`` into one blob.

    ``magic`` must be exactly 8 bytes.  ``sections`` maps names to
    ``array.array`` instances (any typecode) or raw ``bytes`` (stored
    with typecode ``B``).  Section order is preserved.
    """
    if len(magic) != _MAGIC_LEN:
        raise ValueError(f"blob magic must be {_MAGIC_LEN} bytes, got {len(magic)}")
    payload = bytearray()
    table: dict[str, list] = {}
    for name, data in sections.items():
        offset = _aligned(len(payload))
        payload += b"\0" * (offset - len(payload))
        if isinstance(data, (bytes, bytearray)):
            typecode, raw, count = "B", bytes(data), len(data)
        else:
            typecode, raw, count = data.typecode, data.tobytes(), len(data)
        table[name] = [offset, count, typecode]
        payload += raw
    full_header = dict(header)
    full_header["__sections__"] = table
    full_header["__byteorder__"] = sys.byteorder
    header_bytes = json.dumps(full_header, ensure_ascii=False).encode("utf-8")
    prefix = magic + _HEADER_LEN_STRUCT.pack(len(header_bytes)) + header_bytes
    return bytes(prefix) + b"\0" * (_aligned(len(prefix)) - len(prefix)) + bytes(payload)


def unpack_blob(
    magic: bytes, data, error: type[Exception]
) -> tuple[dict, dict[str, memoryview]]:
    """Parse a blob written by :func:`pack_blob` without copying sections.

    Returns ``(header, sections)`` where each section is a typed
    ``memoryview`` into ``data``.  Raises ``error`` (an exception class)
    on a foreign magic, truncation, endianness mismatch, or a malformed
    header — every failure mode a bit-rotted file can produce.
    """
    view = memoryview(data)
    prefix_len = _MAGIC_LEN + _HEADER_LEN_STRUCT.size
    if len(view) < prefix_len or bytes(view[:_MAGIC_LEN]) != magic:
        raise error(f"not a {magic.decode('ascii', 'replace').strip()} blob (bad magic)")
    (header_len,) = _HEADER_LEN_STRUCT.unpack(view[_MAGIC_LEN:prefix_len])
    if prefix_len + header_len > len(view):
        raise error("blob header is truncated")
    try:
        header = json.loads(bytes(view[prefix_len : prefix_len + header_len]))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise error(f"blob header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict) or "__sections__" not in header:
        raise error("blob header is missing its section table")
    if header.get("__byteorder__") != sys.byteorder:
        raise error(
            f"blob was written on a {header.get('__byteorder__')!r}-endian machine; "
            f"this machine is {sys.byteorder!r}-endian"
        )
    base = _aligned(prefix_len + header_len)
    sections: dict[str, memoryview] = {}
    try:
        items = list(header["__sections__"].items())
    except AttributeError as exc:
        raise error("blob section table is malformed") from exc
    for name, entry in items:
        try:
            offset, count, typecode = entry
            offset, count = int(offset), int(count)
            itemsize = struct.calcsize(str(typecode))
        except (ValueError, TypeError, struct.error) as exc:
            raise error(f"blob section {name!r} has a malformed table entry") from exc
        # Offsets are writer-controlled data: a bit flip landing in a
        # header digit still parses as JSON, so reject anything the
        # writer could not have produced (negative, unaligned, or out of
        # bounds) instead of silently serving views over wrong bytes.
        if offset < 0 or offset % _ALIGNMENT != 0 or count < 0:
            raise error(f"blob section {name!r} has an invalid offset or count")
        start = base + offset
        end = start + count * itemsize
        if end > len(view):
            raise error(f"blob section {name!r} is truncated")
        sections[name] = view[start:end].cast(str(typecode))
    return header, sections


class BlobHandle:
    """Keeps an mmap alive and nameable while memoryviews point into it.

    The mapping is never closed explicitly: exported memoryviews (which
    may linger in exception tracebacks) would make ``close()`` raise
    ``BufferError``; instead the mapping is reclaimed when the last view
    and the handle are garbage collected.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping) -> None:
        self._map = mapping


def map_blob(
    path: str | Path, magic: bytes, error: type[Exception]
) -> tuple[dict, dict[str, memoryview], BlobHandle]:
    """Memory-map ``path`` and parse it as a blob (zero-copy sections).

    The returned :class:`BlobHandle` should be kept referenced for as
    long as the section memoryviews are used; it makes the buffer
    ownership explicit.  The file descriptor is closed before returning
    — the mapping keeps the pages alive on its own.
    """
    path = Path(path)
    try:
        handle = path.open("rb")
    except FileNotFoundError:
        raise error(f"missing blob file {path.name}") from None
    try:
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (ValueError, OSError) as exc:  # empty or unmappable file
        raise error(f"blob file {path.name} cannot be mapped: {exc}") from exc
    finally:
        handle.close()
    header, sections = unpack_blob(magic, mapping, error)
    return header, sections, BlobHandle(mapping)
