"""Command-line interface.

Entry points (also importable as functions):

* ``repro-build-benchmark`` — generate and save the synthetic benchmark;
* ``repro-ground-truth``   — build the ground truth for every topic and
  print the per-query summary plus Table 2;
* ``repro-analyze``        — run the full pipeline and print every table
  and figure side by side with the paper's values;
* ``repro-expand``         — expand an ad-hoc query against a benchmark's
  knowledge graph using the cycle method (no ground truth required);
* ``repro-snapshot``       — build and save a service snapshot; with
  ``--shards N`` the snapshot is written as N graph partitions + index
  segments served by the shard router, and with ``--prefill [topics]``
  each shard additionally ships the expansions of its owned benchmark
  topics, precomputed at build time (warm-cache cold starts);
* ``repro-serve``          — answer queries online from a saved service
  snapshot (build one with ``--build``), printing linked entities,
  expansion features and ranked documents per query.  Single-shard and
  sharded snapshots are detected automatically, and the resolved
  layout (v1/v2/v3, shard count) is printed at startup.  With
  ``--http PORT`` the process instead serves the HTTP/JSON API
  (``/expand``, ``/search``, ``/batch_expand``, ``/stats``,
  ``/healthz``, ``/metrics`` — see ``docs/http_api.md`` and
  ``docs/observability.md``) from an asyncio front end over the shard
  router, logging slow requests as JSON lines on stderr (``--slow-ms``);
* ``repro-top``            — live terminal dashboard over a running
  ``--http`` process: request rates, cache hit bars, per-shard health
  and stage latency quantiles, refreshed every ``--interval`` seconds
  (``--once`` prints a single frame and exits);
* ``repro-loadgen``        — deterministic seeded traffic shapes
  (Zipf-skewed interactive, flash crowd, batch mix, adversarial flood,
  delta trickle) replayed closed-loop against a running ``--http``
  process (or a self-hosted one), emitting a per-shape SLO report into
  the ``loadgen_slo`` section of ``BENCH_service.json`` — see
  ``docs/loadgen.md``.

All commands are also reachable through ``python -m repro.cli <command>``,
which matters in environments where console scripts cannot be installed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.collection.benchmark import Benchmark
from repro.collection.synthetic import SyntheticCollectionConfig
from repro.core.expansion import CycleExpander, NeighborhoodCycleExpander
from repro.harness import (
    PAPER_FIG5,
    PAPER_FIG6,
    PAPER_FIG7A,
    PAPER_FIG7B,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PipelineConfig,
    fig5_contribution_by_length,
    fig6_cycle_counts,
    fig7a_category_ratio,
    fig7b_density,
    fig9_density_vs_contribution,
    format_five_point_table,
    format_series_comparison,
    format_table4,
    run_pipeline,
    sec3_structural_stats,
    table2_ground_truth_precision,
    table3_largest_cc_stats,
    table4_cycle_expansion_precision,
)
from repro.linking.linker import EntityLinker
from repro.wiki.synthetic import SyntheticWikiConfig

__all__ = [
    "build_benchmark_main",
    "ground_truth_main",
    "analyze_main",
    "expand_main",
    "report_main",
    "snapshot_main",
    "serve_main",
    "shard_worker_main",
    "top_main",
    "loadgen_main",
    "main",
]


def _benchmark_from_args(args: argparse.Namespace) -> Benchmark:
    if args.benchmark_dir and Path(args.benchmark_dir).exists():
        return Benchmark.load(args.benchmark_dir)
    return Benchmark.synthetic(
        SyntheticWikiConfig(seed=args.seed),
        SyntheticCollectionConfig(seed=args.seed + 6),
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=7, help="generation seed (default 7)"
    )
    parser.add_argument(
        "--benchmark-dir",
        default=None,
        help="directory of a saved benchmark (generated when absent)",
    )


def build_benchmark_main(argv: list[str] | None = None) -> int:
    """Generate the synthetic benchmark and save it to a directory."""
    parser = argparse.ArgumentParser(
        prog="repro-build-benchmark", description=build_benchmark_main.__doc__
    )
    _add_common(parser)
    parser.add_argument(
        "--out", default="benchmark", help="output directory (default ./benchmark)"
    )
    parser.add_argument(
        "--domains", type=int, default=50, help="number of topics/domains"
    )
    args = parser.parse_args(argv)

    benchmark = Benchmark.synthetic(
        SyntheticWikiConfig(seed=args.seed, num_domains=args.domains),
        SyntheticCollectionConfig(seed=args.seed + 6),
    )
    benchmark.validate()
    benchmark.save(args.out)
    print(f"saved {benchmark!r} to {args.out}/")
    return 0


def ground_truth_main(argv: list[str] | None = None) -> int:
    """Build X(q) for every topic and print the Table 2 summary."""
    parser = argparse.ArgumentParser(
        prog="repro-ground-truth", description=ground_truth_main.__doc__
    )
    _add_common(parser)
    parser.add_argument("--verbose", action="store_true", help="per-query details")
    args = parser.parse_args(argv)

    benchmark = _benchmark_from_args(args)
    result = run_pipeline(benchmark, PipelineConfig(seed=args.seed + 90))
    for outcome in result.outcomes:
        expansion = len(outcome.ground_truth.expansion_set)
        line = (
            f"topic {outcome.topic.topic_id:>3}: O(base)={outcome.base_score.mean:.3f} "
            f"O(X(q))={outcome.best_score.mean:.3f} |A'|={expansion}"
        )
        print(line)
        if args.verbose:
            titles = [benchmark.graph.title(a) for a in
                      sorted(outcome.ground_truth.expansion_set)]
            print(f"    expansion features: {titles}")
    print()
    print(format_five_point_table(
        table2_ground_truth_precision(result),
        "Table 2 — ground truth precision",
        paper=PAPER_TABLE2,
    ))
    return 0


def analyze_main(argv: list[str] | None = None) -> int:
    """Run the full pipeline and print every table and figure."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze", description=analyze_main.__doc__
    )
    _add_common(parser)
    args = parser.parse_args(argv)

    benchmark = _benchmark_from_args(args)
    result = run_pipeline(benchmark, PipelineConfig(seed=args.seed + 90))

    print(format_five_point_table(
        table2_ground_truth_precision(result),
        "Table 2 — ground truth precision",
        paper=PAPER_TABLE2,
    ))
    print()
    print(format_five_point_table(
        table3_largest_cc_stats(result),
        "Table 3 — largest connected component",
        paper=PAPER_TABLE3,
    ))
    print()
    print(format_table4(
        table4_cycle_expansion_precision(result), result.config.ranks, PAPER_TABLE4
    ))
    print()
    print(format_series_comparison(
        fig5_contribution_by_length(result), PAPER_FIG5,
        "Figure 5 — average contribution (%) vs cycle length"))
    print()
    print(format_series_comparison(
        fig6_cycle_counts(result), PAPER_FIG6,
        "Figure 6 — average number of cycles vs cycle length"))
    print()
    print(format_series_comparison(
        fig7a_category_ratio(result), PAPER_FIG7A,
        "Figure 7a — average category ratio vs cycle length"))
    print()
    print(format_series_comparison(
        fig7b_density(result), PAPER_FIG7B,
        "Figure 7b — average density of extra edges vs cycle length"))
    print()
    fig9 = fig9_density_vs_contribution(result)
    print("Figure 9 — density of extra edges vs contribution")
    print("--------------------------------------------------")
    print(f"least-squares slope: {fig9.slope:+.2f} (paper: positive trend)")
    for center, mean in fig9.trend:
        print(f"  density~{center:.2f}: avg contribution {mean:+.1f}%")
    print()
    stats = sec3_structural_stats(result)
    print("Section 3 structural statistics")
    print("-------------------------------")
    print(f"average TPR of LCC:        {stats.average_tpr:.3f} (paper ~0.3)")
    print(f"2-cycle linked-pair ratio: {stats.reciprocal_pair_ratio:.4f} (paper 0.1147)")
    print(f"avg query graph nodes:     {stats.average_query_graph_nodes:.1f} (paper 208.22)")
    print(f"avg cycle mining seconds:  {stats.average_cycle_seconds:.3f} (paper ~360)")
    print(f"avg improvement over base: {stats.average_improvement_percent:+.1f}%")
    return 0


def expand_main(argv: list[str] | None = None) -> int:
    """Expand a keyword query using cycle structure (no ground truth)."""
    parser = argparse.ArgumentParser(
        prog="repro-expand", description=expand_main.__doc__
    )
    _add_common(parser)
    parser.add_argument("keywords", help='query keywords, e.g. "gondola in venice"')
    parser.add_argument(
        "--lengths", default="2,3,4,5", help="cycle lengths to use (default 2,3,4,5)"
    )
    parser.add_argument(
        "--min-category-ratio", type=float, default=0.2,
        help="minimum per-cycle category ratio (default 0.2, ~paper's 30%% rule)",
    )
    parser.add_argument("--top-k", type=int, default=10, help="results to print")
    args = parser.parse_args(argv)

    try:
        lengths = tuple(int(part) for part in args.lengths.split(",") if part)
    except ValueError:
        parser.error(f"--lengths must be comma-separated integers, got {args.lengths!r}")

    benchmark = _benchmark_from_args(args)
    linker = EntityLinker(benchmark.graph)
    seeds = linker.link_keywords(args.keywords)
    if not seeds:
        print(f"no Wikipedia entities found in {args.keywords!r}")
        return 1
    print("linked entities:", [benchmark.graph.title(a) for a in sorted(seeds)])

    expander = NeighborhoodCycleExpander(
        CycleExpander(lengths=lengths, min_category_ratio=args.min_category_ratio)
    )
    expansion = expander.expand(benchmark.graph, seeds)
    print(f"expansion features ({expansion.num_features}):", list(expansion.titles))

    engine = benchmark.build_engine()
    results = engine.search_phrases(expansion.all_titles(benchmark.graph),
                                    top_k=args.top_k)
    print(f"top {args.top_k} documents:")
    for item in results:
        name = benchmark.documents[item.doc_id].name
        print(f"  #{item.rank:<3} {item.doc_id}  {name}  (score {item.score:.3f})")
    return 0


def report_main(argv: list[str] | None = None) -> int:
    """Run the pipeline and write the full markdown report to a file."""
    from repro.harness import save_report

    parser = argparse.ArgumentParser(
        prog="repro-report", description=report_main.__doc__
    )
    _add_common(parser)
    parser.add_argument("--out", default="report.md", help="output markdown path")
    args = parser.parse_args(argv)

    benchmark = _benchmark_from_args(args)
    result = run_pipeline(benchmark, PipelineConfig(seed=args.seed + 90))
    path = save_report(result, args.out)
    print(f"wrote {path}")
    return 0


def _build_snapshot(args: argparse.Namespace):
    """Build a v1 snapshot (--shards 1) or a sharded snapshot (N > 1).

    ``--shards 1`` deliberately writes the classic single-shard format so
    snapshots built by default stay readable by older builds; both formats
    load through :class:`ShardedSnapshot` and serve identically.
    ``--prefill`` forces the sharded (version-3) format even for one
    shard, because only it can carry the precomputed expansions.
    """
    from repro.collection.topics import TopicSet
    from repro.service import ShardedSnapshot, Snapshot

    benchmark = _benchmark_from_args(args)
    prefill = getattr(args, "prefill", None)
    if args.shards == 1 and prefill is None:
        return Snapshot.build(benchmark)
    snapshot = ShardedSnapshot.build(benchmark, num_shards=args.shards)
    if prefill is not None:
        topics = TopicSet.load(prefill) if prefill else benchmark.topics
        snapshot = snapshot.with_prefill([topic.keywords for topic in topics])
    return snapshot


def snapshot_main(argv: list[str] | None = None) -> int:
    """Build and save a service snapshot (optionally sharded)."""
    parser = argparse.ArgumentParser(
        prog="repro-snapshot", description=snapshot_main.__doc__
    )
    _add_common(parser)
    parser.add_argument(
        "--out", default="snapshot", help="output directory (default ./snapshot)"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="number of physical shards (1 writes the classic single-shard "
             "format; N>1 writes per-shard graph partitions + index segments)",
    )
    parser.add_argument(
        "--prefill", nargs="?", const="", default=None, metavar="TOPICS_JSON",
        help="precompute expansions for these topics (a topics.json file; "
             "with no value, the benchmark's own topics) and ship them "
             "inside each owning shard, so a cold-started service answers "
             "them at cached latency; forces the sharded snapshot format",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")

    snapshot = _build_snapshot(args)
    snapshot.save(args.out)
    print(f"saved {snapshot!r} to {args.out}/")
    return 0


def _serve_http(
    snapshot,
    host: str,
    port: int,
    slow_ms: float = 100.0,
    *,
    snapshot_dir=None,
    workers: int = 0,
    call_timeout_s: float = 30.0,
    hedge_after_ms: float | None = None,
    max_restarts: int = 5,
    queue_limit: int | None = None,
    client_rate: float | None = None,
    client_burst: float = 8.0,
) -> int:
    """Run the asyncio HTTP front end over a ShardRouter until interrupted.

    Single-shard and sharded snapshots both go through the router here
    (a one-shard router serves identically to the plain service), so the
    HTTP surface is uniform across layouts.  Slow requests (>=
    ``slow_ms``) are logged as JSON lines on stderr and sampled into the
    reservoir ``/stats`` exposes.

    With ``workers`` set (one per shard), shard calls run in supervised
    out-of-process workers behind socket adapters: crashed workers are
    restarted with backoff, stalled calls hit ``call_timeout_s``, and
    ``hedge_after_ms`` arms tail-latency hedging.  See
    ``docs/operations.md``.

    ``queue_limit``/``client_rate`` attach load shedding: a bounded
    admission queue plus per-client token buckets, refusing excess
    sheddable traffic with structured 429s (``docs/loadgen.md`` shows
    how to prove the behaviour under real overload).

    A recency set persisted by a previous process (``recent_queries.json``
    next to the snapshot manifest) is replayed at startup so the first
    client hits of a restarted server land at cached latency; the set is
    saved back on shutdown and at every compaction.
    """
    import asyncio

    from repro.obs import RequestLog
    from repro.service import (
        AdmissionPolicy,
        AsyncShardRouter,
        HttpFrontEnd,
        ShardRouter,
    )

    router = ShardRouter(snapshot)
    supervisor = None
    if workers:
        from repro.service.socket_adapter import ShardCallPolicy
        from repro.service.supervisor import ShardSupervisor

        supervisor = ShardSupervisor(
            str(snapshot_dir),
            router.num_shards,
            metrics=router.metrics,
            max_restarts=max_restarts,
        )
        print(f"workers: starting {router.num_shards} shard worker(s)",
              flush=True)
        supervisor.start()
        for info in supervisor.describe():
            print(f"workers: shard {info['shard']} up "
                  f"(pid={info.get('pid')}, port={info.get('port')})")
        policy = ShardCallPolicy(
            call_timeout_s=call_timeout_s,
            hedge_after_s=(
                hedge_after_ms / 1000.0 if hedge_after_ms else None
            ),
        )
        service = AsyncShardRouter(router, supervisor=supervisor, policy=policy)
    else:
        service = AsyncShardRouter(router)
    from repro.updates import UpdateCoordinator

    request_log = RequestLog(slow_ms=slow_ms, sink=sys.stderr.write)
    coordinator = UpdateCoordinator(
        router,
        snapshot_dir=snapshot_dir,
        supervisor=supervisor,
        request_log=request_log,
    )
    if snapshot_dir is not None:
        restored = request_log.load_recent(snapshot_dir)
        if restored:
            warmed = 0
            for query in request_log.recent_queries():
                try:
                    router.expand_query(query, top_k=1)
                    warmed += 1
                except Exception:  # noqa: BLE001 — warming must not block startup
                    continue
            print(f"warm start: replayed {warmed} persisted recent "
                  f"quer{'y' if warmed == 1 else 'ies'}", flush=True)
    admission = None
    if queue_limit is not None or client_rate is not None:
        admission = AdmissionPolicy(
            queue_limit=queue_limit,
            client_rate=client_rate,
            client_burst=client_burst,
        )
        print(f"admission: queue_limit={queue_limit} "
              f"client_rate={client_rate}/s burst={client_burst}", flush=True)
    format_version = snapshot.source_version
    front = HttpFrontEnd(
        service,
        snapshot_info=snapshot.layout_description(),
        snapshot_format="" if format_version is None else f"v{format_version}",
        coordinator=coordinator,
        request_log=request_log,
        admission=admission,
    )

    async def run() -> None:
        server = await front.start(host, port)
        bound = server.sockets[0].getsockname()[1]
        print(
            f"http: serving on http://{host}:{bound} "
            f"(POST /expand /search /batch_expand "
            f"/admin/apply_delta /admin/compact, "
            f"GET /stats /healthz /metrics)",
            flush=True,
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("http: shut down")
    finally:
        if snapshot_dir is not None:
            try:
                request_log.save_recent(snapshot_dir)
            except OSError:
                pass  # best-effort: shutdown must not fail on a full disk
        if supervisor is not None:
            supervisor.stop()
        router.close()
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """Serve online query expansion from a persistent snapshot."""
    import json
    from dataclasses import replace

    from repro.errors import SnapshotError
    from repro.service import (
        SNAPSHOT_VERSION,
        ExpansionService,
        ShardRouter,
        ShardedSnapshot,
    )

    parser = argparse.ArgumentParser(
        prog="repro-serve", description=serve_main.__doc__
    )
    _add_common(parser)
    parser.add_argument(
        "--snapshot", default="snapshot",
        help="snapshot directory to serve from (default ./snapshot); "
             "single-shard and sharded layouts are detected automatically",
    )
    parser.add_argument(
        "--build", action="store_true",
        help="when the snapshot is missing, build it from the benchmark "
             "(--benchmark-dir or synthetic via --seed) and save it first",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="shard count used when --build creates a new snapshot "
             "(existing snapshots keep their own shard count)",
    )
    parser.add_argument(
        "--query", action="append", metavar="TEXT",
        help="query to answer (repeatable; batches when given several times); "
             "omit to read one query per line from stdin",
    )
    parser.add_argument("--top-k", type=int, default=10, help="results per query")
    parser.add_argument(
        "--stats", action="store_true", help="print service/cache stats as JSON at exit"
    )
    parser.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve the HTTP/JSON API on this port instead of answering "
             "--query/stdin (0 picks an ephemeral port and prints it); "
             "endpoints: POST /expand /search /batch_expand, GET /stats "
             "/healthz /metrics — see docs/http_api.md",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --http (default 127.0.0.1)",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=100.0,
        help="with --http: requests at or above this latency are logged "
             "as JSON lines on stderr and sampled into /stats "
             "slow_queries (default 100)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="with --http: serve shards from N supervised out-of-process "
             "worker processes (one per shard; N must equal the snapshot "
             "shard count) speaking the wire protocol of "
             "docs/shard_protocol.md — crashed workers restart with "
             "backoff, see docs/operations.md",
    )
    parser.add_argument(
        "--call-timeout-s", type=float, default=30.0,
        help="with --workers: per-attempt deadline for one shard call "
             "(default 30)",
    )
    parser.add_argument(
        "--hedge-after-ms", type=float, default=None, metavar="MS",
        help="with --workers: fire a second attempt for a shard call "
             "still unanswered after MS milliseconds; first answer wins "
             "(default: hedging off)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=5,
        help="with --workers: restarts each shard worker gets before the "
             "shard is marked failed and left down (default 5)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="with --http: admit at most N sheddable requests at once; "
             "excess is refused with 429 over_capacity + Retry-After "
             "(default: unbounded — shedding off)",
    )
    parser.add_argument(
        "--client-rate", type=float, default=None, metavar="RPS",
        help="with --http: per-client admission rate in requests/s "
             "(X-Client-Id header, falling back to peer address); a "
             "client past its token bucket gets 429 client_rate_limited "
             "(default: unlimited)",
    )
    parser.add_argument(
        "--client-burst", type=float, default=8.0, metavar="N",
        help="with --client-rate: token bucket depth — short bursts up "
             "to N requests are admitted before the rate applies "
             "(default 8)",
    )
    args = parser.parse_args(argv)
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.http is not None and not 0 <= args.http <= 65535:
        parser.error("--http PORT must be in [0, 65535]")
    if args.workers and args.http is None:
        parser.error("--workers requires --http")
    if args.workers < 0 or args.max_restarts < 0:
        parser.error("--workers and --max-restarts must be >= 0")
    if args.call_timeout_s <= 0:
        parser.error("--call-timeout-s must be > 0")
    if args.hedge_after_ms is not None and args.hedge_after_ms <= 0:
        parser.error("--hedge-after-ms must be > 0")
    if args.queue_limit is not None and args.queue_limit < 1:
        parser.error("--queue-limit must be >= 1")
    if args.client_rate is not None and args.client_rate <= 0:
        parser.error("--client-rate must be > 0")
    if args.client_burst < 1:
        parser.error("--client-burst must be >= 1")
    if (args.queue_limit is not None or args.client_rate is not None) \
            and args.http is None:
        parser.error("--queue-limit/--client-rate require --http")

    snapshot_dir = Path(args.snapshot)
    try:
        snapshot = ShardedSnapshot.load(snapshot_dir)
        print(f"loaded {snapshot!r} from {snapshot_dir}/")
    except SnapshotError as error:
        if not args.build:
            print(f"error: {error}")
            print("hint: pass --build to create the snapshot from a benchmark")
            return 2
        built = _build_snapshot(args)
        built.save(snapshot_dir)
        print(f"built and saved {built!r} to {snapshot_dir}/")
        snapshot = built if isinstance(built, ShardedSnapshot) \
            else replace(ShardedSnapshot.from_snapshot(built, num_shards=1),
                         source_version=SNAPSHOT_VERSION)

    # Operators must be able to tell which on-disk format (v1/v2/v3) and
    # shard layout this process resolved — print it before serving.
    print(f"snapshot layout: {snapshot.layout_description()}")

    if args.http is not None:
        if args.workers and args.workers != snapshot.num_shards:
            print(
                f"error: --workers {args.workers} must equal the snapshot "
                f"shard count ({snapshot.num_shards}) — one worker process "
                "serves exactly one shard"
            )
            return 2
        return _serve_http(
            snapshot, args.host, args.http, slow_ms=args.slow_ms,
            snapshot_dir=snapshot_dir,
            workers=args.workers,
            call_timeout_s=args.call_timeout_s,
            hedge_after_ms=args.hedge_after_ms,
            max_restarts=args.max_restarts,
            queue_limit=args.queue_limit,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
        )

    # One worker serves a single shard directly; N shards go through the
    # router.  Both expose the same expand_query/batch_expand/stats API
    # and both serve from the frozen (compact) read path.
    if snapshot.num_shards == 1:
        snapshot = snapshot.frozen()
        partition = snapshot.partitions[0]
        expander = NeighborhoodCycleExpander()
        # prefill_for applies the expander-fingerprint guard and the
        # cache-must-hold-the-prefill sizing rule (same as ShardRouter).
        prefill = snapshot.prefill_for(0, expander)
        service = ExpansionService(
            snapshot.compact_graph,
            snapshot.make_segment_engine(0),
            snapshot.make_linker(partition.graph),
            expander,
            doc_names=snapshot.doc_names,
            expansion_cache_size=max(1024, len(prefill)),
        )
        if prefill:
            service.warm_expansions(prefill)
    else:
        service = ShardRouter(snapshot)

    def answer(response) -> None:
        print(f"query: {response.query!r}")
        if not response.linked:
            print("  no entities linked; ranked raw keywords instead")
        else:
            titles = [service.graph.title(a) for a in sorted(response.link.article_ids)]
            print(f"  linked entities: {titles}")
            print(f"  expansion features ({response.expansion.num_features}): "
                  f"{list(response.expansion.titles)}")
        for item in response.results:
            name = service.doc_names.get(item.doc_id, "")
            print(f"  #{item.rank:<3} {item.doc_id}  {name}  (score {item.score:.3f})")
        cached = "cached" if response.expansion_cached else "cold"
        print(f"  [{cached}, {response.latency_ms:.1f} ms]")

    if args.query:
        for response in service.batch_expand(args.query, top_k=args.top_k):
            answer(response)
    else:
        print("reading queries from stdin (one per line, ^D to finish)")
        for line in sys.stdin:
            line = line.strip()
            if line:
                answer(service.expand_query(line, top_k=args.top_k))

    if args.stats:
        print(json.dumps(service.stats().as_dict(), indent=2))
    return 0


def shard_worker_main(argv: list[str] | None = None) -> int:
    """Serve one shard of a sharded snapshot over the wire protocol.

    This is the process ``repro serve --workers N`` (via the shard
    supervisor) spawns once per shard; it can also be started by hand
    for debugging.  The worker loads its shard, binds, and prints a
    single ready line (``shard-worker: shard I serving on HOST:PORT
    pid=PID``) the supervisor parses.  Protocol and framing:
    ``docs/shard_protocol.md``.
    """
    from repro.errors import ReproError
    from repro.service.faults import FAULTS_ENV
    from repro.service.shard_worker import run_worker

    parser = argparse.ArgumentParser(
        prog="repro-shard-worker", description=shard_worker_main.__doc__
    )
    parser.add_argument(
        "--snapshot", required=True,
        help="sharded snapshot directory to load one shard from",
    )
    parser.add_argument(
        "--shard", type=int, required=True, help="shard id to serve"
    )
    parser.add_argument(
        "--bind", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="port to serve on (default 0 = ephemeral, printed on stdout)",
    )
    parser.add_argument(
        "--fault", default="",
        help="fault-injection spec, e.g. 'kill@2' or 'stall=1.5@1:"
             f"expand_seeds' (also read from ${FAULTS_ENV}; test-only)",
    )
    args = parser.parse_args(argv)
    if args.shard < 0:
        parser.error("--shard must be >= 0")
    if not 0 <= args.port <= 65535:
        parser.error("--port must be in [0, 65535]")
    try:
        return run_worker(
            args.snapshot, args.shard,
            host=args.bind, port=args.port, fault_spec=args.fault,
        )
    except ReproError as error:
        print(f"error: {error}")
        return 2


def loadgen_main(argv: list[str] | None = None) -> int:
    """Replay deterministic seeded traffic shapes against the HTTP API."""
    import json

    from repro.loadgen import (
        build_report,
        merge_into_bench,
        plan_workload,
        run_plans,
        stream_digest,
        topic_pool,
    )
    from repro.loadgen.shapes import SHAPE_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-loadgen", description=loadgen_main.__doc__,
        epilog="Shapes: " + ", ".join(SHAPE_NAMES) + " — see docs/loadgen.md.",
    )
    _add_common(parser)
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a running serve --http process; omitted, the "
             "command self-hosts a server over the snapshot for the run",
    )
    parser.add_argument(
        "--snapshot", default=None, metavar="DIR",
        help="snapshot directory supplying the topic pool (and the "
             "self-hosted server); omitted, a snapshot is built from "
             "the benchmark (--seed / --benchmark-dir)",
    )
    parser.add_argument(
        "--shapes", default="interactive,flood",
        help="comma-separated shapes to replay concurrently "
             f"(default interactive,flood; all: {','.join(SHAPE_NAMES)})",
    )
    parser.add_argument(
        "--requests", type=int, default=100, metavar="N",
        help="requests planned per shape (delta_trickle plans N/8; "
             "default 100)",
    )
    parser.add_argument(
        "--rate", type=float, default=25.0, metavar="RPS",
        help="target arrival rate per shape in requests/s (default 25)",
    )
    parser.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="Zipf popularity exponent for topic sampling (default 1.1)",
    )
    parser.add_argument("--top-k", type=int, default=10, help="results per query")
    parser.add_argument(
        "--concurrency", type=int, default=4,
        help="closed-loop workers per shape (default 4)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=30.0,
        help="per-request client timeout (default 30)",
    )
    parser.add_argument(
        "--out", default="BENCH_service.json", metavar="PATH",
        help="merge the SLO report into this bench JSON under "
             "'loadgen_slo' (default BENCH_service.json; 'none' skips)",
    )
    parser.add_argument(
        "--dump-stream", default=None, metavar="PATH",
        help="also write the planned request stream as JSON lines "
             "('-' for stdout) — diffing two runs proves determinism",
    )
    parser.add_argument(
        "--plan-only", action="store_true",
        help="plan the workload and print its digest without sending "
             "anything (no server needed)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="self-hosted server: admission queue bound (default 32; "
             "ignored with --url)",
    )
    parser.add_argument(
        "--client-rate", type=float, default=None, metavar="RPS",
        help="self-hosted server: per-client admission rate "
             "(default: off; ignored with --url)",
    )
    args = parser.parse_args(argv)
    shapes = [s.strip() for s in args.shapes.split(",") if s.strip()]
    if not shapes:
        parser.error("--shapes must name at least one shape")
    for name in shapes:
        if name not in SHAPE_NAMES:
            parser.error(f"unknown shape {name!r} (expected one of "
                         f"{', '.join(SHAPE_NAMES)})")
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.rate <= 0:
        parser.error("--rate must be > 0")
    if args.concurrency < 1:
        parser.error("--concurrency must be >= 1")

    snapshot = _loadgen_snapshot(args)
    pool = topic_pool(snapshot)
    plans = plan_workload(
        seed=args.seed, pool=pool, shapes=shapes, count=args.requests,
        zipf_s=args.zipf_s, top_k=args.top_k,
    )
    stream = [request for name in shapes for request in plans[name]]
    digest = stream_digest(stream)
    total = len(stream)
    print(f"planned {total} requests over {len(shapes)} shape(s), "
          f"stream sha256 {digest}")
    if args.dump_stream:
        lines = "".join(request.to_line() + "\n" for request in stream)
        if args.dump_stream == "-":
            sys.stdout.write(lines)
        else:
            Path(args.dump_stream).write_text(lines)
            print(f"stream written to {args.dump_stream}")
    if args.plan_only:
        return 0

    if args.url:
        import urllib.parse

        parts = urllib.parse.urlsplit(args.url)
        host = parts.hostname or "127.0.0.1"
        port = parts.port or 80
        stop = None
    else:
        host, port, stop = _self_host(
            snapshot,
            queue_limit=args.queue_limit,
            client_rate=args.client_rate,
        )
        print(f"self-hosting on http://{host}:{port} "
              f"(queue_limit={args.queue_limit})")
    try:
        result = run_plans(
            host, port, plans,
            rate=args.rate, concurrency=args.concurrency,
            timeout_s=args.timeout_s,
        )
    finally:
        if stop is not None:
            stop()

    report = build_report(
        result, seed=args.seed, rate=args.rate,
        stream_sha256=digest, zipf_s=args.zipf_s,
    )
    for name, shape in report["shapes"].items():
        print(f"{name}: {shape['requests']} requests, "
              f"p50 {shape['p50_ms']}ms p99 {shape['p99_ms']}ms "
              f"p999 {shape['p999_ms']}ms, "
              f"errors {shape['error_rate']:.2%}, shed {shape['shed_rate']:.2%}")
    server = report["server"]
    print(f"server: p50 {server['p50_ms']}ms p99 {server['p99_ms']}ms, "
          f"cache hit rate {server['cache_hit_rate']:.2%}, "
          f"shed {server['shed_total']}")
    if args.out and args.out != "none":
        merge_into_bench(args.out, report)
        print(f"loadgen_slo merged into {args.out}")
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def _loadgen_snapshot(args: argparse.Namespace):
    """Resolve the snapshot the pool (and self-hosted server) comes from."""
    from repro.errors import SnapshotError
    from repro.service import ShardedSnapshot

    if args.snapshot:
        try:
            snapshot = ShardedSnapshot.load(args.snapshot)
        except SnapshotError as error:
            raise SystemExit(f"error: {error}")
        print(f"loaded {snapshot!r} from {args.snapshot}/")
        return snapshot
    benchmark = _benchmark_from_args(args)
    return ShardedSnapshot.build(benchmark, num_shards=1)


def _self_host(snapshot, *, queue_limit: int | None, client_rate: float | None):
    """Spin up an in-process front end on an ephemeral port.

    Returns ``(host, port, stop)`` — the same serving stack ``serve
    --http`` runs (router, coordinator for ``/admin/apply_delta``,
    admission policy), minus on-disk durability, so loadgen works out
    of the box in CI without orchestrating a subprocess.
    """
    import asyncio
    import threading

    from repro.obs import RequestLog
    from repro.service import (
        AdmissionPolicy,
        AsyncShardRouter,
        HttpFrontEnd,
        ShardRouter,
    )
    from repro.updates import UpdateCoordinator

    router = ShardRouter(snapshot.frozen())
    request_log = RequestLog(slow_ms=float("inf"))
    coordinator = UpdateCoordinator(router, request_log=request_log)
    admission = None
    if queue_limit is not None or client_rate is not None:
        admission = AdmissionPolicy(
            queue_limit=queue_limit, client_rate=client_rate
        )
    front = HttpFrontEnd(
        AsyncShardRouter(router),
        coordinator=coordinator,
        request_log=request_log,
        admission=admission,
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = asyncio.run_coroutine_threadsafe(
        front.start("127.0.0.1", 0), loop
    ).result(timeout=60)
    port = server.sockets[0].getsockname()[1]

    def stop() -> None:
        asyncio.run_coroutine_threadsafe(front.stop(), loop).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=60)
        router.close()

    return "127.0.0.1", port, stop


def top_main(argv: list[str] | None = None) -> int:
    """Live terminal dashboard over a running ``repro serve --http``."""
    from repro.obs.dashboard import run_top

    parser = argparse.ArgumentParser(
        prog="repro-top", description=top_main.__doc__
    )
    parser.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8080",
        help="base URL of the serving process (default http://127.0.0.1:8080)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default 2)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing) — "
             "scriptable, and what CI smoke runs",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")
    try:
        return run_top(args.url, interval_s=args.interval, once=args.once)
    except KeyboardInterrupt:
        return 0


_COMMANDS = {
    "build-benchmark": build_benchmark_main,
    "ground-truth": ground_truth_main,
    "analyze": analyze_main,
    "expand": expand_main,
    "report": report_main,
    "snapshot": snapshot_main,
    "serve": serve_main,
    "shard-worker": shard_worker_main,
    "top": top_main,
    "loadgen": loadgen_main,
}


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro.cli <command> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.cli {" + ",".join(_COMMANDS) + "} [options]")
        return 0 if argv else 2
    command = argv[0]
    handler = _COMMANDS.get(command)
    if handler is None:
        print(f"unknown command: {command!r} (expected one of {sorted(_COMMANDS)})")
        return 2
    return handler(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
