"""ImageCLEF-2011-style benchmark collection: documents, topics, synthesis,
and the bundled :class:`Benchmark` artefact."""

from repro.collection.benchmark import DEFAULT_ENGINE_MU, Benchmark
from repro.collection.document import Caption, ImageDocument, TextSection
from repro.collection.synthetic import (
    SyntheticCollection,
    SyntheticCollectionConfig,
    generate_collection,
)
from repro.collection.topics import Topic, TopicSet
from repro.collection.xml_io import (
    document_from_string,
    document_to_string,
    read_documents,
    write_documents,
)

__all__ = [
    "Benchmark",
    "DEFAULT_ENGINE_MU",
    "ImageDocument",
    "TextSection",
    "Caption",
    "Topic",
    "TopicSet",
    "SyntheticCollection",
    "SyntheticCollectionConfig",
    "generate_collection",
    "document_to_string",
    "document_from_string",
    "read_documents",
    "write_documents",
]
