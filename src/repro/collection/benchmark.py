"""Benchmark bundle: wiki + documents + topics, with disk round-tripping.

A :class:`Benchmark` is everything one needs to run the paper's pipeline:
the knowledge base (a :class:`~repro.wiki.graph.WikiGraph`), the document
collection, and the topic set.  ``Benchmark.synthetic()`` builds the
default laptop-scale stand-in for (Wikipedia, ImageCLEF 2011); ``save`` /
``load`` persist all three artefacts in one directory::

    benchmark/
      wiki.jsonl.gz   # graph dump (repro.wiki.dump format)
      images.xml      # document bundle (ImageCLEF-shaped XML)
      topics.json     # topics with relevance sets
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import BenchmarkConfigError
from repro.collection.document import ImageDocument
from repro.collection.synthetic import (
    SyntheticCollection,
    SyntheticCollectionConfig,
    generate_collection,
)
from repro.collection.topics import TopicSet
from repro.collection.xml_io import read_documents, write_documents
from repro.retrieval.engine import SearchEngine
from repro.retrieval.scoring import DirichletSmoothing, Smoothing
from repro.retrieval.tokenizer import Tokenizer
from repro.wiki.dump import read_graph, write_graph
from repro.wiki.graph import WikiGraph
from repro.wiki.synthetic import SyntheticWiki, SyntheticWikiConfig, generate_wiki

__all__ = ["Benchmark", "DEFAULT_ENGINE_MU"]

# The synthetic documents are short (tens of tokens); INDRI's default
# mu=2500 would drown the document signal, so the benchmark engine uses a
# proportionally smaller prior.
DEFAULT_ENGINE_MU = 300.0


@dataclass(slots=True)
class Benchmark:
    """One ready-to-run benchmark instance."""

    graph: WikiGraph
    documents: dict[str, ImageDocument]
    topics: TopicSet
    wiki: SyntheticWiki | None = None  # planted structure, when synthetic

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        wiki_config: SyntheticWikiConfig | None = None,
        collection_config: SyntheticCollectionConfig | None = None,
    ) -> "Benchmark":
        """Generate a coupled wiki + collection benchmark."""
        wiki = generate_wiki(wiki_config)
        collection = generate_collection(wiki, collection_config)
        return cls(
            graph=wiki.graph,
            documents=collection.documents,
            topics=collection.topics,
            wiki=wiki,
        )

    @classmethod
    def from_parts(
        cls, graph: WikiGraph, collection: SyntheticCollection
    ) -> "Benchmark":
        return cls(graph=graph, documents=collection.documents, topics=collection.topics)

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------

    def build_engine(
        self,
        smoothing: Smoothing | None = None,
        tokenizer: Tokenizer | None = None,
    ) -> SearchEngine:
        """Index every document's extraction text into a fresh engine."""
        engine = SearchEngine(
            tokenizer=tokenizer,
            smoothing=smoothing or DirichletSmoothing(mu=DEFAULT_ENGINE_MU),
        )
        for doc_id in sorted(self.documents):
            engine.add_document(doc_id, self.documents[doc_id].extraction_text())
        return engine

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Write the three artefacts into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_graph(self.graph, directory / "wiki.jsonl.gz")
        write_documents(
            (self.documents[doc_id] for doc_id in sorted(self.documents)),
            directory / "images.xml",
        )
        self.topics.save(directory / "topics.json")

    @classmethod
    def load(cls, directory: str | Path) -> "Benchmark":
        """Load a benchmark saved with :meth:`save`.

        The planted ``wiki`` structure is not persisted (it is an artefact
        of generation, not of the benchmark contract), so round-tripped
        benchmarks have ``wiki=None``.
        """
        directory = Path(directory)
        for name in ("wiki.jsonl.gz", "images.xml", "topics.json"):
            if not (directory / name).exists():
                raise BenchmarkConfigError(f"benchmark directory is missing {name}")
        graph = read_graph(directory / "wiki.jsonl.gz")
        documents = {doc.doc_id: doc for doc in read_documents(directory / "images.xml")}
        topics = TopicSet.load(directory / "topics.json")
        return cls(graph=graph, documents=documents, topics=topics)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    @property
    def num_topics(self) -> int:
        return len(self.topics)

    def validate(self) -> None:
        """Cross-check artefact consistency (every relevant id must exist)."""
        for topic in self.topics:
            missing = [d for d in topic.relevant if d not in self.documents]
            if missing:
                raise BenchmarkConfigError(
                    f"topic {topic.topic_id} references unknown documents: {missing[:3]}"
                )

    def __repr__(self) -> str:
        return (
            f"Benchmark(docs={self.num_documents}, topics={self.num_topics}, "
            f"graph={self.graph!r})"
        )
