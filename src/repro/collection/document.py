"""ImageCLEF-2011-style image metadata documents.

The track's unit of retrieval is an XML metadata file describing one image
(paper Figure 2): a file name, per-language text sections (description,
comment, captions), a general comment and a license.  The paper extracts,
per document,

1. the file name without its extension,
2. the information in the **English** section, and
3. the description from the general comment field,

concatenated into one string that both the entity linker and the retrieval
index consume.  :meth:`ImageDocument.extraction_text` implements exactly
that rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Caption", "TextSection", "ImageDocument"]

# The general <comment> holds a MediaWiki-ish {{Information |Description=...}}
# template; the paper takes only the Description value.
_TEMPLATE_DESCRIPTION_RE = re.compile(r"\|\s*Description\s*=\s*(?P<value>[^|{}]*)")


@dataclass(frozen=True, slots=True)
class Caption:
    """One caption of an image within a language section."""

    text: str
    article: str = ""  # source article path, e.g. "text/en/1/302887"


@dataclass(frozen=True, slots=True)
class TextSection:
    """Language-specific text of an image document."""

    lang: str
    description: str = ""
    comment: str = ""
    captions: tuple[Caption, ...] = ()

    def combined_text(self) -> str:
        """Description, comment and caption texts joined by spaces."""
        pieces = [self.description, self.comment]
        pieces.extend(caption.text for caption in self.captions)
        return " ".join(piece.strip() for piece in pieces if piece and piece.strip())


@dataclass(frozen=True, slots=True)
class ImageDocument:
    """One image metadata record (one retrieval unit).

    ``doc_id`` is the image id (a string, e.g. ``"82531"``); ``file`` the
    image path; ``name`` the human-given file name.
    """

    doc_id: str
    file: str = ""
    name: str = ""
    sections: tuple[TextSection, ...] = ()
    comment: str = ""
    license: str = ""
    _extra: dict = field(default_factory=dict, compare=False, repr=False)

    def section(self, lang: str) -> TextSection | None:
        """The text section for ``lang``, or None."""
        for section in self.sections:
            if section.lang == lang:
                return section
        return None

    @property
    def name_without_extension(self) -> str:
        """File name with a trailing ``.ext`` stripped (item 1 of the rule)."""
        base, dot, ext = self.name.rpartition(".")
        if dot and base and len(ext) <= 4:
            return base
        return self.name

    @property
    def general_description(self) -> str:
        """Description value of the general comment template (item 3)."""
        match = _TEMPLATE_DESCRIPTION_RE.search(self.comment)
        if match:
            return match.group("value").strip()
        return ""

    def extraction_text(self, lang: str = "en") -> str:
        """The paper's extraction rule: name + English section + general
        description, combined into a single string."""
        pieces = [self.name_without_extension]
        section = self.section(lang)
        if section is not None:
            pieces.append(section.combined_text())
        pieces.append(self.general_description)
        return " ".join(piece for piece in pieces if piece)

    def __str__(self) -> str:
        return f"ImageDocument({self.doc_id}: {self.name!r})"
