"""Synthetic ImageCLEF-like collection generator.

Derives a document collection and a topic set from a
:class:`~repro.wiki.synthetic.SyntheticWiki`, preserving the coupling the
paper's experiments depend on (DESIGN.md §2):

* each wiki *domain* yields one **topic** whose keywords are the titles of
  the domain's seed articles (the paper's ``q.k``);
* **relevant documents** mention domain article titles with probability
  decaying by tier (strong > mid > weak); a configurable fraction of them
  omits the seed titles entirely — the *vocabulary mismatch* that makes
  query expansion worthwhile in the first place;
* **trap documents** are irrelevant documents that mention the domain's
  *distractor* titles (the articles closing category-free cycles with the
  seeds), so expanding with those titles actively hurts precision;
* **background documents** mention only background article titles.

Documents follow the ImageCLEF XML schema, including German/French sections
and a general-comment template, so the paper's extraction rule (name +
English section + template description) is exercised rather than bypassed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import BenchmarkConfigError
from repro.collection.document import Caption, ImageDocument, TextSection
from repro.collection.topics import Topic, TopicSet
from repro.wiki.names import TitleFactory
from repro.wiki.synthetic import DomainSpec, SyntheticWiki

__all__ = ["SyntheticCollectionConfig", "SyntheticCollection", "generate_collection"]


@dataclass(frozen=True, slots=True)
class SyntheticCollectionConfig:
    """Parameters of the synthetic collection.

    Mention probabilities are per-article: e.g. each *strong* article's
    title appears in each relevant document with probability
    ``strong_mention_prob``.
    """

    seed: int = 13
    relevant_per_topic: tuple[int, int] = (15, 35)
    traps_per_topic: tuple[int, int] = (5, 9)
    background_docs: int = 400
    seed_omission_prob: float = 0.70  # vocabulary-mismatch documents
    mentions_per_doc: tuple[int, int] = (2, 4)
    # Tier weights (strong/mid/weak) differ by document kind: documents
    # that omit the seed titles (vocabulary mismatch) are reachable mostly
    # through *strong* titles — that exclusivity is what makes the paper's
    # 2-cycles the top contributors — while documents that already mention
    # the seeds carry mid/weak titles, whose marginal retrieval gain is
    # therefore moderate.
    mismatch_tier_weights: tuple[float, float, float] = (3.0, 2.0, 0.3)
    seeddoc_tier_weights: tuple[float, float, float] = (0.3, 2.0, 1.2)
    strong_boost_prob: float = 0.45  # extra strong mention in mismatch docs
    trap_tier_weights: tuple[float, float, float] = (0.2, 0.8, 3.0)
    trap_domain_mentions: tuple[int, int] = (1, 3)
    trap_seed_mention_prob: float = 0.55
    cross_seed_mention_prob: float = 0.06
    noise_mention_prob: float = 0.15
    filler_words_per_doc: tuple[int, int] = (6, 14)

    def validate(self) -> None:
        if self.background_docs < 0:
            raise BenchmarkConfigError("background_docs must be >= 0")
        for name in (
            "relevant_per_topic",
            "traps_per_topic",
            "filler_words_per_doc",
            "mentions_per_doc",
            "trap_domain_mentions",
        ):
            low, high = getattr(self, name)
            if low < 0 or high < low:
                raise BenchmarkConfigError(f"{name} must be (low, high) with 0 <= low <= high")
        if self.relevant_per_topic[0] < 1:
            raise BenchmarkConfigError("each topic needs at least one relevant document")
        if self.mentions_per_doc[0] < 1:
            raise BenchmarkConfigError("each relevant document needs at least one mention")
        for name in ("mismatch_tier_weights", "seeddoc_tier_weights", "trap_tier_weights"):
            weights = getattr(self, name)
            if len(weights) != 3 or any(w < 0 for w in weights) or not any(weights):
                raise BenchmarkConfigError(
                    f"{name} must be three non-negative weights, not all zero"
                )
        for name in (
            "seed_omission_prob",
            "strong_boost_prob",
            "trap_seed_mention_prob",
            "cross_seed_mention_prob",
            "noise_mention_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BenchmarkConfigError(f"{name} must be a probability, got {value}")


@dataclass(slots=True)
class SyntheticCollection:
    """Generated documents plus topics (the ImageCLEF track equivalent)."""

    documents: dict[str, ImageDocument]
    topics: TopicSet
    config: SyntheticCollectionConfig

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    def document(self, doc_id: str) -> ImageDocument:
        return self.documents[doc_id]

    def extraction_texts(self):
        """Yield ``(doc_id, extraction text)`` for indexing."""
        for doc_id in sorted(self.documents):
            yield doc_id, self.documents[doc_id].extraction_text()


class _DocumentWriter:
    """Assembles ImageCLEF-shaped documents from title mentions."""

    _CONNECTORS = [
        "a view of", "scene near", "photograph of", "study of",
        "sketch showing", "image of", "morning at", "detail of",
    ]

    def __init__(self, rng: random.Random, filler: TitleFactory) -> None:
        self._rng = rng
        self._filler = filler
        self._next_id = 10_000

    def build(
        self,
        mentions: list[str],
        *,
        place_hint: str,
        filler_count: int,
        foreign_mentions: list[str] | None = None,
    ) -> ImageDocument:
        """One document whose English text mentions the given titles."""
        rng = self._rng
        doc_id = str(self._next_id)
        self._next_id += 1

        phrases = []
        for title in mentions:
            phrases.append(f"{rng.choice(self._CONNECTORS)} {title}")
        filler_words = self._filler.filler_words(filler_count)
        # Interleave filler into the description so phrase matching has to
        # cope with separated mentions.
        description_parts = []
        for index, phrase in enumerate(phrases):
            description_parts.append(phrase)
            if filler_words and index < len(phrases) - 1:
                description_parts.append(filler_words[index % len(filler_words)])
        description = " ".join(description_parts) or " ".join(filler_words)

        captions = tuple(
            Caption(text=f"{rng.choice(self._CONNECTORS)} {title}",
                    article=f"text/en/{rng.randrange(1, 5)}/{rng.randrange(100000, 999999)}")
            for title in mentions[: rng.randrange(0, 3)]
        )
        english = TextSection(
            lang="en",
            description=description,
            comment="",
            captions=captions,
        )
        # Foreign sections carry titles that must NOT leak into extraction.
        foreign = foreign_mentions or []
        sections = [english]
        if foreign:
            half = (len(foreign) + 1) // 2
            sections.append(
                TextSection(lang="de", description=" und ".join(foreign[:half]))
            )
            sections.append(
                TextSection(lang="fr", description=" et ".join(foreign[half:]))
            )

        general = mentions[0] if mentions else " ".join(filler_words[:3])
        return ImageDocument(
            doc_id=doc_id,
            file=f"images/{int(doc_id) % 17}/{doc_id}.jpg",
            name=f"{place_hint} {doc_id}.jpg",
            sections=tuple(sections),
            comment=(
                "({{Information |Description= "
                f"{general} |Source= synthetic |Date= 1/1/11 "
                "|Author= repro |Permission= GFDL |other_versions= }})"
            ),
            license="GFDL",
        )


def _weighted_sample(
    rng: random.Random,
    domain: DomainSpec,
    weights: tuple[float, float, float],
    count: int,
) -> list[int]:
    """Sample ``count`` distinct domain articles, weighted by tier.

    Tier weights apply per article (strong/mid/weak).  Sampling without
    replacement keeps each document's mention set sparse and diverse —
    that sparsity is what forces the ground-truth search to pick *many*
    expansion features instead of one catch-all title.
    """
    population: list[int] = []
    article_weights: list[float] = []
    for articles, weight in zip(
        (domain.strong_articles, domain.mid_articles, domain.weak_articles), weights
    ):
        for article in articles:
            population.append(article)
            article_weights.append(weight)
    if not population:
        return []
    chosen: list[int] = []
    pool = list(zip(population, article_weights))
    for _ in range(min(count, len(pool))):
        total = sum(w for _, w in pool)
        if total <= 0:
            break
        pick = rng.random() * total
        cumulative = 0.0
        for index, (article, weight) in enumerate(pool):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(article)
                pool.pop(index)
                break
    return chosen


def _mention_list(
    rng: random.Random,
    wiki: SyntheticWiki,
    domain: DomainSpec,
    config: SyntheticCollectionConfig,
    *,
    omit_seeds: bool,
) -> list[str]:
    """Titles mentioned by one relevant document of ``domain``.

    Every relevant document mentions a small, tier-weighted *sample* of
    domain articles (2–4 by default) plus, unless omitted, one or more
    seed titles.  Sparse per-document coverage means no single expansion
    feature retrieves every relevant document.
    """
    graph = wiki.graph
    mentions: list[str] = []
    if not omit_seeds:
        count = max(1, rng.randint(1, len(domain.seed_articles)))
        mentions.extend(graph.title(a) for a in rng.sample(domain.seed_articles, count))
    count = rng.randint(*config.mentions_per_doc)
    weights = (
        config.mismatch_tier_weights if omit_seeds else config.seeddoc_tier_weights
    )
    sampled = _weighted_sample(rng, domain, weights, count)
    # Strong articles are the scarce keys to the mismatch documents: the
    # paper's 2-cycle contribution peak comes from this exclusivity.
    if (
        omit_seeds
        and domain.strong_articles
        and rng.random() < config.strong_boost_prob
    ):
        boost = rng.choice(domain.strong_articles)
        if boost not in sampled:
            sampled.append(boost)
    mentions.extend(graph.title(a) for a in sampled)
    if wiki.background_articles and rng.random() < config.noise_mention_prob:
        mentions.append(graph.title(rng.choice(wiki.background_articles)))
    if not mentions:  # degenerate draw: guarantee at least one domain title
        mentions.append(graph.title(rng.choice(domain.expansion_articles)))
    rng.shuffle(mentions)
    return mentions


def generate_collection(
    wiki: SyntheticWiki, config: SyntheticCollectionConfig | None = None
) -> SyntheticCollection:
    """Generate documents and topics coupled to ``wiki``'s domains."""
    config = config or SyntheticCollectionConfig()
    config.validate()
    rng = random.Random(config.seed)
    filler = TitleFactory(random.Random(config.seed + 1))
    writer = _DocumentWriter(rng, filler)
    graph = wiki.graph

    documents: dict[str, ImageDocument] = {}
    topics = TopicSet()

    def add(document: ImageDocument) -> str:
        documents[document.doc_id] = document
        return document.doc_id

    for domain in wiki.domains:
        other_domains = [d for d in wiki.domains if d.domain_id != domain.domain_id]
        relevant_ids: set[str] = set()
        num_relevant = rng.randint(*config.relevant_per_topic)
        for _ in range(num_relevant):
            omit = rng.random() < config.seed_omission_prob
            mentions = _mention_list(rng, wiki, domain, config, omit_seeds=omit)
            # Cross-domain pollution: this relevant document sometimes
            # mentions another topic's seed title, so *that* topic's base
            # query surfaces off-topic results (query-side noise).
            if other_domains and rng.random() < config.cross_seed_mention_prob:
                other = rng.choice(other_domains)
                mentions.append(graph.title(rng.choice(other.seed_articles)))
            foreign = [graph.title(a) for a in domain.distractor_articles[:2]]
            document = writer.build(
                mentions,
                place_hint=domain.place,
                filler_count=rng.randint(*config.filler_words_per_doc),
                foreign_mentions=foreign,
            )
            relevant_ids.add(add(document))

        # Trap documents: irrelevant documents that mention the distractor
        # titles, sometimes a seed title (polluting the base query), and a
        # weak-biased sample of domain titles (so expanding with weak
        # features drags traps into the ranking — precision noise).
        for _ in range(rng.randint(*config.traps_per_topic)):
            mentions = [graph.title(a) for a in domain.distractor_articles]
            if mentions and rng.random() < config.trap_seed_mention_prob:
                mentions.append(graph.title(rng.choice(domain.seed_articles)))
            reused = _weighted_sample(
                rng,
                domain,
                config.trap_tier_weights,
                rng.randint(*config.trap_domain_mentions),
            )
            mentions.extend(graph.title(a) for a in reused)
            if not mentions:
                continue
            rng.shuffle(mentions)
            document = writer.build(
                mentions,
                place_hint="misc",
                filler_count=rng.randint(*config.filler_words_per_doc),
            )
            add(document)

        keywords = " ".join(graph.title(a) for a in domain.seed_articles)
        topics.add(
            Topic(
                topic_id=domain.domain_id,
                keywords=keywords,
                relevant=frozenset(relevant_ids),
                domain_id=domain.domain_id,
            )
        )

    for _ in range(config.background_docs):
        if not wiki.background_articles:
            break
        count = rng.randint(2, 5)
        mentions = [
            graph.title(a) for a in rng.sample(wiki.background_articles, count)
        ]
        document = writer.build(
            mentions,
            place_hint="stock",
            filler_count=rng.randint(*config.filler_words_per_doc),
        )
        add(document)

    return SyntheticCollection(documents=documents, topics=topics, config=config)
