"""Topics (queries) and relevance sets.

A topic is the paper's tuple ``q = <k, D>``: a keyword list ``k`` and the
set ``D`` of documents that are correct results for ``k`` (the *result
set*).  Topic sets serialise to a small JSON format so benchmark artefacts
can be stored next to the document XML.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DumpFormatError

__all__ = ["Topic", "TopicSet"]


@dataclass(frozen=True, slots=True)
class Topic:
    """One benchmark query.

    ``domain_id`` records which synthetic domain generated the topic (or -1
    for hand-made topics); analysis code treats it as opaque metadata.
    """

    topic_id: int
    keywords: str
    relevant: frozenset[str]
    domain_id: int = -1

    def __post_init__(self) -> None:
        if not self.keywords.strip():
            raise ValueError(f"topic {self.topic_id} has empty keywords")

    @property
    def num_relevant(self) -> int:
        return len(self.relevant)

    def __str__(self) -> str:
        return f"Topic #{self.topic_id}: {self.keywords!r} ({self.num_relevant} relevant)"


@dataclass(slots=True)
class TopicSet:
    """An ordered collection of topics with JSON round-tripping."""

    topics: list[Topic] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.topics)

    def __iter__(self):
        return iter(self.topics)

    def __getitem__(self, index: int) -> Topic:
        return self.topics[index]

    def by_id(self, topic_id: int) -> Topic:
        """Topic with the given id (raises KeyError when absent)."""
        for topic in self.topics:
            if topic.topic_id == topic_id:
                return topic
        raise KeyError(f"no topic with id {topic_id}")

    def add(self, topic: Topic) -> None:
        """Append a topic, enforcing unique ids."""
        if any(existing.topic_id == topic.topic_id for existing in self.topics):
            raise ValueError(f"duplicate topic id {topic.topic_id}")
        self.topics.append(topic)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON string (sorted doc ids, stable output)."""
        payload = {
            "format": "repro-topics",
            "version": 1,
            "topics": [
                {
                    "id": topic.topic_id,
                    "keywords": topic.keywords,
                    "relevant": sorted(topic.relevant),
                    "domain_id": topic.domain_id,
                }
                for topic in self.topics
            ],
        }
        return json.dumps(payload, indent=2, ensure_ascii=False)

    @classmethod
    def from_json(cls, text: str) -> "TopicSet":
        """Parse a JSON string written by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DumpFormatError(f"invalid topics JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != "repro-topics":
            raise DumpFormatError("not a repro-topics document")
        if payload.get("version") != 1:
            raise DumpFormatError(f"unsupported topics version {payload.get('version')!r}")
        topic_set = cls()
        for record in payload.get("topics", []):
            try:
                topic_set.add(
                    Topic(
                        topic_id=int(record["id"]),
                        keywords=record["keywords"],
                        relevant=frozenset(record["relevant"]),
                        domain_id=int(record.get("domain_id", -1)),
                    )
                )
            except KeyError as exc:
                raise DumpFormatError(f"topic record missing field {exc}") from exc
        return topic_set

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "TopicSet":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
