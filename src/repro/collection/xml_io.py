"""XML serialisation of image documents, following the ImageCLEF layout.

The emitted XML mirrors Figure 2 of the paper::

    <image id="82531" file="images/9/82531.jpg">
      <name>Field Hamois Belgium Luc Viatour.jpg</name>
      <text xml:lang="en">
        <description>...</description>
        <comment/>
        <caption article="text/en/1/302887">...</caption>
      </text>
      <comment>({{Information |Description= ... }})</comment>
      <license>GFDL</license>
    </image>

Multiple documents are stored one file per image inside a directory, plus
an ``images.xml`` bundle writer/reader used by the benchmark artefacts.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import DumpFormatError
from repro.collection.document import Caption, ImageDocument, TextSection

__all__ = [
    "document_to_element",
    "element_to_document",
    "write_documents",
    "read_documents",
    "document_to_string",
    "document_from_string",
]

_XML_LANG = "{http://www.w3.org/XML/1998/namespace}lang"


def document_to_element(document: ImageDocument) -> ET.Element:
    """Convert a document into an ``<image>`` element."""
    image = ET.Element("image", {"id": document.doc_id, "file": document.file})
    name = ET.SubElement(image, "name")
    name.text = document.name
    for section in document.sections:
        text = ET.SubElement(image, "text", {_XML_LANG: section.lang})
        description = ET.SubElement(text, "description")
        description.text = section.description
        comment = ET.SubElement(text, "comment")
        comment.text = section.comment
        for caption in section.captions:
            attrs = {"article": caption.article} if caption.article else {}
            caption_el = ET.SubElement(text, "caption", attrs)
            caption_el.text = caption.text
    comment = ET.SubElement(image, "comment")
    comment.text = document.comment
    license_el = ET.SubElement(image, "license")
    license_el.text = document.license
    return image


def element_to_document(element: ET.Element) -> ImageDocument:
    """Parse an ``<image>`` element back into a document."""
    if element.tag != "image":
        raise DumpFormatError(f"expected <image>, got <{element.tag}>")
    doc_id = element.get("id")
    if not doc_id:
        raise DumpFormatError("<image> element is missing its id attribute")
    sections = []
    for text in element.findall("text"):
        lang = text.get(_XML_LANG) or text.get("lang") or ""
        captions = tuple(
            Caption(text=(c.text or "").strip(), article=c.get("article", ""))
            for c in text.findall("caption")
        )
        sections.append(
            TextSection(
                lang=lang,
                description=(text.findtext("description") or "").strip(),
                comment=(text.findtext("comment") or "").strip(),
                captions=captions,
            )
        )
    return ImageDocument(
        doc_id=doc_id,
        file=element.get("file", ""),
        name=(element.findtext("name") or "").strip(),
        sections=tuple(sections),
        comment=(element.findtext("comment") or "").strip(),
        license=(element.findtext("license") or "").strip(),
    )


def document_to_string(document: ImageDocument) -> str:
    """Serialise one document to an XML string."""
    return ET.tostring(document_to_element(document), encoding="unicode")


def document_from_string(text: str) -> ImageDocument:
    """Parse one document from an XML string."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DumpFormatError(f"invalid XML: {exc}") from exc
    return element_to_document(element)


def write_documents(documents: Iterable[ImageDocument], path: str | Path) -> int:
    """Write documents into one ``<images>`` bundle file; returns the count."""
    path = Path(path)
    root = ET.Element("images")
    count = 0
    for document in documents:
        root.append(document_to_element(document))
        count += 1
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(path, encoding="unicode", xml_declaration=True)
    return count


def read_documents(path: str | Path) -> Iterator[ImageDocument]:
    """Stream documents out of an ``<images>`` bundle file."""
    path = Path(path)
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise DumpFormatError(f"invalid XML in {path}: {exc}") from exc
    root = tree.getroot()
    if root.tag != "images":
        raise DumpFormatError(f"expected <images> root, got <{root.tag}>")
    for element in root.findall("image"):
        yield element_to_document(element)
