"""The paper's contribution: ground-truth construction, query graphs,
cycle enumeration and features, cycle-based expansion, and the aggregate
analysis behind every table and figure."""

from repro.core.analysis import (
    CycleRecord,
    FivePointSummary,
    article_cycle_frequency,
    average_category_ratio_by_length,
    average_contribution_by_length,
    average_count_by_length,
    average_density_by_length,
    binned_density_trend,
    density_contribution_points,
    expansion_distance_histogram,
    five_point_summary,
    frequency_contribution_correlation,
    linear_trend,
)
from repro.core.cycle_kernels import KernelBall
from repro.core.cycles import Cycle, CycleFinder, find_cycles, resolve_engine
from repro.core.expansion import (
    CycleExpander,
    DirectLinkExpander,
    Expander,
    ExpansionResult,
    NeighborhoodCycleExpander,
    NullExpander,
    RedirectExpander,
    expander_fingerprint,
)
from repro.core.features import CycleFeatures, compute_features, count_edges, max_edges
from repro.core.ground_truth import (
    GroundTruthResult,
    GroundTruthSearch,
    Operation,
    SearchStep,
)
from repro.core.metrics import (
    DEFAULT_RANKS,
    Evaluator,
    QualityScore,
    contribution_percent,
    mean_precision,
    top_r_precision,
)
from repro.core.query_graph import QueryGraph, QueryGraphStats, build_query_graph
from repro.core.viz import cycle_to_dot, describe_query_graph, query_graph_to_dot

__all__ = [
    "DEFAULT_RANKS",
    "top_r_precision",
    "mean_precision",
    "contribution_percent",
    "QualityScore",
    "Evaluator",
    "Operation",
    "SearchStep",
    "GroundTruthResult",
    "GroundTruthSearch",
    "QueryGraph",
    "QueryGraphStats",
    "build_query_graph",
    "Cycle",
    "CycleFinder",
    "KernelBall",
    "find_cycles",
    "resolve_engine",
    "CycleFeatures",
    "compute_features",
    "count_edges",
    "max_edges",
    "Expander",
    "ExpansionResult",
    "NullExpander",
    "DirectLinkExpander",
    "CycleExpander",
    "NeighborhoodCycleExpander",
    "RedirectExpander",
    "expander_fingerprint",
    "FivePointSummary",
    "five_point_summary",
    "CycleRecord",
    "average_contribution_by_length",
    "average_count_by_length",
    "average_category_ratio_by_length",
    "average_density_by_length",
    "density_contribution_points",
    "binned_density_trend",
    "linear_trend",
    "article_cycle_frequency",
    "expansion_distance_histogram",
    "query_graph_to_dot",
    "cycle_to_dot",
    "describe_query_graph",
    "frequency_contribution_correlation",
]
