"""Aggregate analysis across queries: the series behind every figure.

Each query contributes :class:`CycleRecord` objects (one per anchored
cycle, with features and measured contribution).  The functions here fold
records from all queries into exactly the statistics the paper plots:

* Figure 5 — average contribution vs cycle length;
* Figure 6 — average number of cycles per query vs length;
* Figure 7a — average category ratio vs length;
* Figure 7b — average density of extra edges vs length;
* Figure 9 — density of extra edges vs average contribution (trend);
* the unexplored correlation of Section 4 (article cycle frequency vs
  expansion quality) as :func:`article_cycle_frequency`.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.core.features import CycleFeatures

__all__ = [
    "FivePointSummary",
    "five_point_summary",
    "CycleRecord",
    "expansion_distance_histogram",
    "average_contribution_by_length",
    "average_count_by_length",
    "average_category_ratio_by_length",
    "average_density_by_length",
    "density_contribution_points",
    "binned_density_trend",
    "linear_trend",
    "article_cycle_frequency",
    "frequency_contribution_correlation",
]


@dataclass(frozen=True, slots=True)
class FivePointSummary:
    """min / 25 % / 50 % / 75 % / max, the shape of the paper's tables."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)

    def __str__(self) -> str:
        return (
            f"min={self.minimum:.3f} q1={self.q1:.3f} med={self.median:.3f} "
            f"q3={self.q3:.3f} max={self.maximum:.3f}"
        )


def five_point_summary(values: Iterable[float]) -> FivePointSummary:
    """Five-point summary of ``values`` (linear interpolation quartiles)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise AnalysisError("cannot summarise an empty sequence")
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    return FivePointSummary(
        minimum=float(data.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(data.max()),
    )


@dataclass(frozen=True, slots=True)
class CycleRecord:
    """One anchored cycle of one query, with its measured contribution."""

    query_id: int
    features: CycleFeatures
    contribution: float  # percent, paper Section 3

    @property
    def length(self) -> int:
        return self.features.length


# ----------------------------------------------------------------------
# Figures 5–7: per-length averages
# ----------------------------------------------------------------------


def _group_by_length(records: Iterable[CycleRecord]) -> dict[int, list[CycleRecord]]:
    groups: dict[int, list[CycleRecord]] = defaultdict(list)
    for record in records:
        groups[record.length].append(record)
    return dict(groups)


def average_contribution_by_length(records: Iterable[CycleRecord]) -> dict[int, float]:
    """Figure 5: mean contribution (%) per cycle length."""
    return {
        length: float(np.mean([r.contribution for r in group]))
        for length, group in sorted(_group_by_length(records).items())
    }


def average_count_by_length(
    records: Iterable[CycleRecord], num_queries: int
) -> dict[int, float]:
    """Figure 6: mean number of cycles per query, per length."""
    if num_queries < 1:
        raise AnalysisError("num_queries must be >= 1")
    counts: dict[int, int] = defaultdict(int)
    for record in records:
        counts[record.length] += 1
    return {length: counts[length] / num_queries for length in sorted(counts)}


def average_category_ratio_by_length(
    records: Iterable[CycleRecord], *, min_length: int = 3
) -> dict[int, float]:
    """Figure 7a: mean category ratio per length (lengths < 3 cannot
    contain categories and are excluded, as in the paper)."""
    grouped = _group_by_length(r for r in records if r.length >= min_length)
    return {
        length: float(np.mean([r.features.category_ratio for r in group]))
        for length, group in sorted(grouped.items())
    }


def average_density_by_length(
    records: Iterable[CycleRecord], *, min_length: int = 3
) -> dict[int, float]:
    """Figure 7b: mean density of extra edges per length (defined-density
    cycles only)."""
    grouped = _group_by_length(r for r in records if r.length >= min_length)
    out: dict[int, float] = {}
    for length, group in sorted(grouped.items()):
        densities = [
            r.features.extra_edge_density
            for r in group
            if r.features.extra_edge_density is not None
        ]
        if densities:
            out[length] = float(np.mean(densities))
    return out


# ----------------------------------------------------------------------
# Figure 9: density vs contribution
# ----------------------------------------------------------------------


def density_contribution_points(
    records: Iterable[CycleRecord],
) -> list[tuple[float, float]]:
    """(density, contribution) pairs for cycles with defined density."""
    return [
        (record.features.extra_edge_density, record.contribution)
        for record in records
        if record.features.extra_edge_density is not None
    ]


def binned_density_trend(
    points: Sequence[tuple[float, float]], num_bins: int = 5
) -> list[tuple[float, float]]:
    """Mean contribution per density bin: ``[(bin centre, mean), ...]``.

    Empty bins are omitted.  This is the readable form of Figure 9's
    scatter-plus-trend.
    """
    if num_bins < 1:
        raise AnalysisError("num_bins must be >= 1")
    if not points:
        return []
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    out = []
    densities = np.array([p[0] for p in points])
    contributions = np.array([p[1] for p in points])
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (densities >= low) & (densities < high if high < 1.0 else densities <= high)
        if mask.any():
            out.append((float((low + high) / 2), float(contributions[mask].mean())))
    return out


def linear_trend(points: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """Least-squares slope and intercept of y on x.

    The paper's Figure 9 claim is a positive slope ("the denser the cycle,
    the better its contribution"); this provides the number to assert.
    """
    if len(points) < 2:
        raise AnalysisError("need at least two points for a trend line")
    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1] for p in points], dtype=float)
    if np.allclose(xs, xs[0]):
        raise AnalysisError("trend line undefined: all x values are equal")
    slope, intercept = np.polyfit(xs, ys, deg=1)
    return float(slope), float(intercept)


# ----------------------------------------------------------------------
# Section 3 aside: distance of expansion features from the query articles
# ----------------------------------------------------------------------


def expansion_distance_histogram(query_graph) -> dict[int, int]:
    """Hop distance from ``L(q.k)`` to each expansion article of ``G(q)``.

    The paper notes (query #90) "expansion features being up to distance
    three from query articles".  Unreachable features count under -1.
    Returns an empty dict when the query graph has no seeds or no
    expansion articles.
    """
    from repro.wiki.paths import distance_histogram  # local import: avoid cycle

    if not query_graph.seed_articles or not query_graph.expansion_articles:
        return {}
    return distance_histogram(
        query_graph.graph,
        query_graph.seed_articles,
        query_graph.expansion_articles,
    )


# ----------------------------------------------------------------------
# Section 4 extension: article frequency across cycles
# ----------------------------------------------------------------------


def article_cycle_frequency(
    records: Iterable[CycleRecord], graph
) -> dict[int, int]:
    """How many recorded cycles each *article* appears in.

    Articles only: the prospective expansion features are article titles.
    """
    frequency: dict[int, int] = defaultdict(int)
    for record in records:
        for node in record.features.cycle.nodes:
            if graph.is_article(node):
                frequency[node] += 1
    return dict(frequency)


def frequency_contribution_correlation(
    records: Sequence[CycleRecord], graph
) -> float:
    """Pearson correlation between an article's cycle frequency and the
    mean contribution of the cycles containing it.

    This quantifies the correlation the paper explicitly leaves
    unexplored ("We have not analysed how the frequency of a given article
    in the cycles and the goodness of its title ... are correlated").
    Raises :class:`AnalysisError` when fewer than two articles appear or
    variance vanishes.
    """
    per_article: dict[int, list[float]] = defaultdict(list)
    for record in records:
        for node in record.features.cycle.nodes:
            if graph.is_article(node):
                per_article[node].append(record.contribution)
    if len(per_article) < 2:
        raise AnalysisError("need at least two distinct articles")
    frequencies = np.array([len(v) for v in per_article.values()], dtype=float)
    mean_contributions = np.array([np.mean(v) for v in per_article.values()])
    if np.allclose(frequencies, frequencies[0]) or np.allclose(
        mean_contributions, mean_contributions[0]
    ):
        raise AnalysisError("correlation undefined: zero variance")
    return float(np.corrcoef(frequencies, mean_contributions)[0, 1])
