"""Length-specialised cycle-mining kernels over bitset adjacency.

The general DFS of :mod:`repro.core.cycles` dominates cold serving
latency: profiling shows ~90 % of a cold ``cycle_mine`` span inside the
recursive path walk.  The input, however, is always a *query ball* — a
few hundred nodes — so each node's neighbour row fits in a handful of
machine words.  This module freezes the ball once per query into dense
bitset rows and replaces the DFS with one closed-form kernel per cycle
length of the paper's range L ∈ {2..5}, a semijoin-style reduction in
the spirit of Leinders & Van den Bussche's semijoin algebra: every
inner DFS level becomes one bitwise AND between precomputed rows.

**Relabeling.**  Ball nodes are interned to ``0..n-1`` ordered by
``(degree, node_id)`` ascending.  Degree ordering makes the canonical
root of most cycles a low-degree node, so the ``> root`` pruning masks
strip the dense rows hardest — the same orientation trick degeneracy-
ordered triangle counting uses.  Per label the ball stores Python-int
bitsets: the undirected redirect-free row ``adj``, the directed article
link row ``link_out``, the antiparallel-link row ``mutual``, the
article→category row ``belongs`` and the undirected category
containment row ``inside``, plus one ``articles`` mask for the whole
ball.

**Kernels.**  With ``above(x) = -1 << (x + 1)`` (all labels ``> x``):

* L=2 — antiparallel-pair scan: for each article ``u``, every set bit
  of ``mutual[u] & above(u)`` is one 2-cycle.
* L=3 — for root ``r`` and ``a ∈ adj[r] & above(r)``, every bit of
  ``adj[r] & adj[a] & above(a)`` closes a triangle ``(r, a, b)``.
* L=4 — for ``a < c`` both in ``adj[r] & above(r)``, every bit of
  ``adj[a] & adj[c] & above(r)`` minus ``{a, c}`` is a valid ``b`` of
  ``(r, a, b, c)``.
* L=5 — for ``a < d`` both in ``adj[r] & above(r)`` and
  ``b ∈ adj[a] & above(r), b ≠ d``, every bit of
  ``adj[b] & adj[d] & above(r)`` minus ``{a}`` is a valid ``c`` of
  ``(r, a, b, c, d)``.

**Canonical-order proof sketch.**  The DFS emits each simple cycle
exactly once as the tuple rooted at its minimum node id, every other
node exceeding the root, oriented so ``path[1] < path[-1]``.  Each
kernel enumerates, per root label ``r``, exactly the tuples whose
labels all exceed ``r``, whose consecutive pairs (and the closing pair)
are adjacent, whose nodes are pairwise distinct, and whose second label
is below the last — the same three constraints in *label* space, so
each rotation/reflection class is produced exactly once.  Because the
degree order permutes labels away from id order, each emitted label
tuple is mapped back to node ids and re-rooted at the minimum *id* in
the direction with the smaller second id (:func:`_canonical_nodes`),
which is precisely the DFS representative.  The caller sorts by
``(length, nodes)`` exactly as :meth:`CycleFinder.find` does, so the
final list is bit-identical.

Counting (:meth:`KernelBall.count_by_length`) never materialises
tuples: the innermost level of each kernel collapses to
``popcount`` — ``int.bit_count`` — of the candidate row (masked by the
anchor row unless an earlier path node is already an anchor).

The ball builds from any WikiGraph-shaped object; graphs exposing
``kernel_csr()`` (the compact CSR read path —
:class:`repro.wiki.compact.CompactGraphView` and its keep-set
subgraphs) are ingested straight from their int32 target/kind arrays
without decoding frozensets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import AnalysisError

__all__ = ["KernelBall", "KERNEL_MAX_LENGTH"]

# Kernels are specialised for the paper's lengths; beyond 5 the general
# DFS takes over (see repro.core.cycles.resolve_engine).
KERNEL_MAX_LENGTH = 5

# Edge-kind bits of the compact CSR (mirrors repro.wiki.compact, which
# core must not import at module level; a unit test asserts the sync).
_LINK_OUT = 1
_LINK_IN = 2
_BELONGS = 4
_INSIDE = 16 | 32  # INSIDE_PARENT | INSIDE_CHILD
_FLAG_ARTICLE = 1


def _iter_bits(bits: int) -> Iterator[int]:
    """Yield set-bit positions of ``bits``, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def _canonical_nodes(nodes: tuple[int, ...]) -> tuple[int, ...]:
    """Re-root a cyclic node sequence at its minimum id, oriented so the
    second node is smaller than the last — the DFS representative."""
    length = len(nodes)
    pivot = min(range(length), key=nodes.__getitem__)
    if nodes[(pivot + 1) % length] < nodes[pivot - 1]:
        return tuple(nodes[(pivot + k) % length] for k in range(length))
    return tuple(nodes[(pivot - k) % length] for k in range(length))


class KernelBall:
    """One query ball frozen into degree-ordered bitset rows."""

    __slots__ = (
        "n", "ids", "_label_of", "adj", "link_out", "mutual",
        "belongs", "inside", "articles",
    )

    def __init__(
        self,
        ids: list[int],
        adj: list[int],
        link_out: list[int],
        mutual: list[int],
        belongs: list[int],
        inside: list[int],
        articles: int,
    ) -> None:
        self.n = len(ids)
        self.ids = ids  # ids[label] -> original node id
        self._label_of = {node_id: label for label, node_id in enumerate(ids)}
        self.adj = adj
        self.link_out = link_out
        self.mutual = mutual
        self.belongs = belongs
        self.inside = inside
        self.articles = articles

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, graph) -> "KernelBall":
        """Freeze ``graph`` (any WikiGraph-shaped object) into a ball.

        Graphs exposing ``kernel_csr()`` feed their int32 CSR rows in
        directly; everything else goes through the typed adjacency API.
        """
        raw = getattr(graph, "kernel_csr", None)
        if raw is not None:
            return cls._from_csr(*raw())
        return cls._from_api(graph)

    @classmethod
    def _from_csr(
        cls, node_ids, index_of, offsets, targets, kinds, flags, keep
    ) -> "KernelBall":
        """Build from raw compact-CSR arrays, no frozenset decode.

        ``keep`` restricts to a ball (``None`` = the whole view);
        ``targets`` holds *base indices* into ``node_ids``.
        """
        if keep is None:
            ball_ids = list(node_ids)
            base_rows = range(len(ball_ids))
            in_ball = None
        else:
            ball_ids = sorted(keep)
            base_rows = [index_of[node_id] for node_id in ball_ids]
            in_ball = set(base_rows)

        # Pass 1: ball-restricted degree per node, for the label order.
        degrees = []
        for base in base_rows:
            count = 0
            for slot in range(offsets[base], offsets[base + 1]):
                target = targets[slot]
                if target != base and (in_ball is None or target in in_ball):
                    count += 1
            degrees.append(count)

        order = sorted(
            range(len(ball_ids)), key=lambda p: (degrees[p], ball_ids[p])
        )
        ids = [ball_ids[p] for p in order]
        base_rows = list(base_rows)
        label_of_base = {
            base_rows[p]: label for label, p in enumerate(order)
        }

        n = len(ids)
        adj = [0] * n
        link_out = [0] * n
        mutual = [0] * n
        belongs = [0] * n
        inside = [0] * n
        articles = 0
        both_links = _LINK_OUT | _LINK_IN

        # Pass 2: bitset rows in final label order.
        for label, p in enumerate(order):
            base = base_rows[p]
            if flags[base] & _FLAG_ARTICLE:
                articles |= 1 << label
            adj_bits = out_bits = mutual_bits = belongs_bits = inside_bits = 0
            for slot in range(offsets[base], offsets[base + 1]):
                target = targets[slot]
                if target == base:
                    continue
                neighbor = label_of_base.get(target)
                if neighbor is None:
                    continue
                bit = 1 << neighbor
                adj_bits |= bit
                kind = kinds[slot]
                if kind & _LINK_OUT:
                    out_bits |= bit
                    if kind & _LINK_IN:
                        mutual_bits |= bit
                if kind & _BELONGS:
                    belongs_bits |= bit
                if kind & _INSIDE:
                    inside_bits |= bit
            adj[label] = adj_bits
            link_out[label] = out_bits
            mutual[label] = mutual_bits
            belongs[label] = belongs_bits
            inside[label] = inside_bits

        return cls(ids, adj, link_out, mutual, belongs, inside, articles)

    @classmethod
    def _from_api(cls, graph) -> "KernelBall":
        """Build through the typed adjacency API (dict-backed graphs)."""
        sorted_ids = sorted(graph.node_ids())
        neighbor_sets = [
            graph.undirected_neighbors(node_id) for node_id in sorted_ids
        ]
        order = sorted(
            range(len(sorted_ids)),
            key=lambda p: (len(neighbor_sets[p]), sorted_ids[p]),
        )
        ids = [sorted_ids[p] for p in order]
        label_of = {node_id: label for label, node_id in enumerate(ids)}

        n = len(ids)
        adj = [0] * n
        link_out = [0] * n
        link_in = [0] * n
        belongs = [0] * n
        inside = [0] * n
        articles = 0

        for label, p in enumerate(order):
            node_id = ids[label]
            bits = 0
            for neighbor_id in neighbor_sets[p]:
                neighbor = label_of.get(neighbor_id)
                if neighbor is not None and neighbor != label:
                    bits |= 1 << neighbor
            adj[label] = bits
            if graph.is_article(node_id):
                articles |= 1 << label
                out_bits = 0
                for target_id in graph.links_from(node_id):
                    target = label_of.get(target_id)
                    if target is not None and target != label:
                        bit = 1 << target
                        out_bits |= bit
                        link_in[target] |= 1 << label
                link_out[label] = out_bits
                belongs_bits = 0
                for category_id in graph.categories_of(node_id):
                    category = label_of.get(category_id)
                    if category is not None:
                        belongs_bits |= 1 << category
                belongs[label] = belongs_bits
            else:
                inside_bits = 0
                for other_id in graph.parents_of(node_id):
                    other = label_of.get(other_id)
                    if other is not None:
                        inside_bits |= 1 << other
                for other_id in graph.children_of(node_id):
                    other = label_of.get(other_id)
                    if other is not None:
                        inside_bits |= 1 << other
                inside[label] = inside_bits

        mutual = [out & link_in[label] for label, out in enumerate(link_out)]
        return cls(ids, adj, link_out, mutual, belongs, inside, articles)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def anchors_mask(self, anchors: Iterable[int] | None) -> int | None:
        """Anchor set as a label bitset (ids outside the ball drop out);
        ``None`` means no filtering, 0 means nothing can qualify."""
        if anchors is None:
            return None
        label_of = self._label_of
        mask = 0
        for node_id in anchors:
            label = label_of.get(node_id)
            if label is not None:
                mask |= 1 << label
        return mask

    @staticmethod
    def _overflow(max_cycles: int) -> AnalysisError:
        return AnalysisError(
            f"more than {max_cycles} cycles; "
            "pass a smaller graph or raise max_cycles"
        )

    # ------------------------------------------------------------------
    # Per-length kernels (label-tuple generators)
    # ------------------------------------------------------------------

    def _pairs(self) -> Iterator[tuple[int, int]]:
        mutual = self.mutual
        for u in _iter_bits(self.articles):
            for v in _iter_bits(mutual[u] & (-1 << (u + 1))):
                yield (u, v)

    def _triangles(self) -> Iterator[tuple[int, int, int]]:
        adj = self.adj
        for r in range(self.n):
            row = adj[r]
            for a in _iter_bits(row & (-1 << (r + 1))):
                for b in _iter_bits(row & adj[a] & (-1 << (a + 1))):
                    yield (r, a, b)

    def _quads(self) -> Iterator[tuple[int, int, int, int]]:
        adj = self.adj
        for r in range(self.n):
            above_root = -1 << (r + 1)
            row = adj[r] & above_root
            for a in _iter_bits(row):
                row_a = adj[a] & above_root
                for c in _iter_bits(row & (-1 << (a + 1))):
                    candidates = row_a & adj[c] & ~(1 << c)
                    for b in _iter_bits(candidates):
                        yield (r, a, b, c)

    def _pentas(self) -> Iterator[tuple[int, int, int, int, int]]:
        adj = self.adj
        for r in range(self.n):
            above_root = -1 << (r + 1)
            row = adj[r] & above_root
            for a in _iter_bits(row):
                not_a = ~(1 << a)
                row_a = adj[a] & above_root
                for d in _iter_bits(row & (-1 << (a + 1))):
                    row_d = adj[d] & above_root & not_a
                    for b in _iter_bits(row_a & ~(1 << d)):
                        for c in _iter_bits(adj[b] & row_d):
                            yield (r, a, b, c, d)

    def _kernels(
        self, min_length: int, max_length: int
    ) -> Iterator[Iterator[tuple[int, ...]]]:
        if min_length <= 2 <= max_length:
            yield self._pairs()
        if min_length <= 3 <= max_length:
            yield self._triangles()
        if min_length <= 4 <= max_length:
            yield self._quads()
        if min_length <= 5 <= max_length:
            yield self._pentas()

    # ------------------------------------------------------------------
    # Mining entry points
    # ------------------------------------------------------------------

    def find(
        self,
        min_length: int,
        max_length: int,
        anchors: Iterable[int] | None,
        max_cycles: int,
    ) -> list[tuple[int, ...]]:
        """Canonical node-id tuples of every (anchored) cycle, unsorted."""
        anchor_bits = self.anchors_mask(anchors)
        ids = self.ids
        out: list[tuple[int, ...]] = []
        emitted = 0
        for kernel in self._kernels(min_length, max_length):
            for labels in kernel:
                if anchor_bits is not None:
                    mask = 0
                    for label in labels:
                        mask |= 1 << label
                    if not mask & anchor_bits:
                        continue
                emitted += 1
                if emitted > max_cycles:
                    raise self._overflow(max_cycles)
                if len(labels) == 2:
                    u, v = ids[labels[0]], ids[labels[1]]
                    out.append((u, v) if u < v else (v, u))
                else:
                    out.append(
                        _canonical_nodes(tuple(ids[label] for label in labels))
                    )
        return out

    def count_by_length(
        self,
        min_length: int,
        max_length: int,
        anchors: Iterable[int] | None,
        max_cycles: int,
    ) -> dict[int, int]:
        """The cycle census without materialising a single tuple.

        The innermost kernel level is replaced by a popcount of the
        candidate row; when no node of the partial path is an anchor,
        the row is masked by the anchor bitset first (exactly the
        "cycle contains >= 1 anchor" rule, because only the last node
        is still free)."""
        anchor_bits = self.anchors_mask(anchors)
        census = {
            length: 0 for length in range(min_length, max_length + 1)
        }
        total = 0
        adj = self.adj
        no_filter = anchor_bits is None

        if min_length <= 2 <= max_length:
            mutual = self.mutual
            count = 0
            for u in _iter_bits(self.articles):
                row = mutual[u] & (-1 << (u + 1))
                if not no_filter and not (anchor_bits >> u) & 1:
                    row &= anchor_bits
                count += row.bit_count()
            census[2] = count
            total += count

        if min_length <= 3 <= max_length:
            count = 0
            for r in range(self.n):
                row = adj[r]
                r_anchored = no_filter or (anchor_bits >> r) & 1
                for a in _iter_bits(row & (-1 << (r + 1))):
                    closing = row & adj[a] & (-1 << (a + 1))
                    if not (r_anchored or (anchor_bits >> a) & 1):
                        closing &= anchor_bits
                    count += closing.bit_count()
            census[3] = count
            total += count

        if min_length <= 4 <= max_length:
            count = 0
            for r in range(self.n):
                above_root = -1 << (r + 1)
                row = adj[r] & above_root
                r_anchored = no_filter or (anchor_bits >> r) & 1
                for a in _iter_bits(row):
                    row_a = adj[a] & above_root
                    a_anchored = r_anchored or (anchor_bits >> a) & 1
                    for c in _iter_bits(row & (-1 << (a + 1))):
                        candidates = row_a & adj[c] & ~(1 << c)
                        if not (a_anchored or (anchor_bits >> c) & 1):
                            candidates &= anchor_bits
                        count += candidates.bit_count()
            census[4] = count
            total += count

        if min_length <= 5 <= max_length:
            count = 0
            for r in range(self.n):
                above_root = -1 << (r + 1)
                row = adj[r] & above_root
                r_anchored = no_filter or (anchor_bits >> r) & 1
                for a in _iter_bits(row):
                    not_a = ~(1 << a)
                    row_a = adj[a] & above_root
                    a_anchored = r_anchored or (anchor_bits >> a) & 1
                    for d in _iter_bits(row & (-1 << (a + 1))):
                        row_d = adj[d] & above_root & not_a
                        d_anchored = a_anchored or (anchor_bits >> d) & 1
                        for b in _iter_bits(row_a & ~(1 << d)):
                            closing = adj[b] & row_d
                            if not (d_anchored or (anchor_bits >> b) & 1):
                                closing &= anchor_bits
                            count += closing.bit_count()
            census[5] = count
            total += count

        if total > max_cycles:
            raise self._overflow(max_cycles)
        return census

    def find_features(
        self,
        min_length: int,
        max_length: int,
        anchors: Iterable[int] | None,
        max_cycles: int,
        accept=None,
    ) -> list[tuple[tuple[int, ...], int, int]]:
        """``(canonical_nodes, num_articles, num_edges)`` per cycle.

        Edge counting follows the paper's ``M``-conventions exactly as
        :func:`repro.core.features.count_edges` does — directed article
        links individually, BELONGS once per pair, INSIDE once per
        unordered category pair — each reduced to popcounts over one
        merged edge row per node (article rows = LINK_OUT | BELONGS;
        category rows = the symmetric INSIDE row, whose popcount sum
        double-counts each pair and is halved at the end).

        ``accept`` is an optional ``(length, num_articles, num_edges) ->
        bool`` predicate; rejected cycles are dropped *before* the id
        mapping and canonicalisation — the expander's filters typically
        reject most of the ball's cycles, so this is where the cold path
        stops paying for tuples nobody keeps.  The ``max_cycles``
        tripwire counts every anchored cycle regardless of ``accept``,
        so both engines fire it at the identical total.

        This is the hottest loop of a cold expansion; the per-length
        kernels are inlined (no generators) with the anchor row folded
        into the innermost candidate mask whenever no prefix node is
        anchored.
        """
        anchor_bits = self.anchors_mask(anchors)
        no_anchor = anchor_bits is None
        ids = self.ids
        adj = self.adj
        articles = self.articles
        # Merged per-node edge rows (see docstring).
        link_out = self.link_out
        belongs = self.belongs
        inside = self.inside
        erow = [
            (link_out[u] | belongs[u]) if (articles >> u) & 1 else inside[u]
            for u in range(self.n)
        ]
        out: list[tuple[tuple[int, ...], int, int]] = []
        emitted = 0

        if min_length <= 2 <= max_length:
            mutual = self.mutual
            m_u = articles
            while m_u:
                low_u = m_u & -m_u
                u = low_u.bit_length() - 1
                m_u ^= low_u
                candidates = mutual[u] & (-1 << (u + 1))
                if not (no_anchor or (anchor_bits >> u) & 1):
                    candidates &= anchor_bits
                while candidates:
                    low_v = candidates & -candidates
                    v = low_v.bit_length() - 1
                    candidates ^= low_v
                    emitted += 1
                    if emitted > max_cycles:
                        raise self._overflow(max_cycles)
                    mask = low_u | low_v
                    edges = (erow[u] & mask).bit_count() + (
                        erow[v] & mask
                    ).bit_count()
                    if accept is None or accept(2, 2, edges):
                        iu, iv = ids[u], ids[v]
                        out.append(
                            ((iu, iv) if iu < iv else (iv, iu), 2, edges)
                        )

        if min_length <= 3 <= max_length:
            for r in range(self.n):
                row_r = adj[r]
                m_a = row_r & (-1 << (r + 1))
                if not m_a:
                    continue
                bit_r = 1 << r
                r_anch = no_anchor or anchor_bits & bit_r
                while m_a:
                    low_a = m_a & -m_a
                    a = low_a.bit_length() - 1
                    m_a ^= low_a
                    closing = row_r & adj[a] & (-1 << (a + 1))
                    if not (r_anch or anchor_bits & low_a):
                        closing &= anchor_bits
                    prefix = bit_r | low_a
                    while closing:
                        low_b = closing & -closing
                        b = low_b.bit_length() - 1
                        closing ^= low_b
                        emitted += 1
                        if emitted > max_cycles:
                            raise self._overflow(max_cycles)
                        mask = prefix | low_b
                        art_e = cat_e = 0
                        for label in (r, a, b):
                            if (articles >> label) & 1:
                                art_e += (erow[label] & mask).bit_count()
                            else:
                                cat_e += (erow[label] & mask).bit_count()
                        edges = art_e + cat_e // 2
                        num_art = (mask & articles).bit_count()
                        if accept is None or accept(3, num_art, edges):
                            out.append(
                                (
                                    _canonical_nodes((ids[r], ids[a], ids[b])),
                                    num_art,
                                    edges,
                                )
                            )

        if min_length <= 4 <= max_length:
            for r in range(self.n):
                above_root = -1 << (r + 1)
                row = adj[r] & above_root
                if not row:
                    continue
                bit_r = 1 << r
                r_anch = no_anchor or anchor_bits & bit_r
                m_a = row
                while m_a:
                    low_a = m_a & -m_a
                    a = low_a.bit_length() - 1
                    m_a ^= low_a
                    row_a = adj[a] & above_root
                    a_anch = r_anch or anchor_bits & low_a
                    prefix_a = bit_r | low_a
                    m_c = row & (-1 << (a + 1))
                    while m_c:
                        low_c = m_c & -m_c
                        c = low_c.bit_length() - 1
                        m_c ^= low_c
                        candidates = row_a & adj[c] & ~low_c
                        if not (a_anch or anchor_bits & low_c):
                            candidates &= anchor_bits
                        prefix = prefix_a | low_c
                        while candidates:
                            low_b = candidates & -candidates
                            b = low_b.bit_length() - 1
                            candidates ^= low_b
                            emitted += 1
                            if emitted > max_cycles:
                                raise self._overflow(max_cycles)
                            mask = prefix | low_b
                            art_e = cat_e = 0
                            for label in (r, a, b, c):
                                if (articles >> label) & 1:
                                    art_e += (erow[label] & mask).bit_count()
                                else:
                                    cat_e += (erow[label] & mask).bit_count()
                            edges = art_e + cat_e // 2
                            num_art = (mask & articles).bit_count()
                            if accept is None or accept(4, num_art, edges):
                                out.append(
                                    (
                                        _canonical_nodes(
                                            (ids[r], ids[a], ids[b], ids[c])
                                        ),
                                        num_art,
                                        edges,
                                    )
                                )

        if min_length <= 5 <= max_length:
            for r in range(self.n):
                above_root = -1 << (r + 1)
                row = adj[r] & above_root
                if not row:
                    continue
                bit_r = 1 << r
                r_anch = no_anchor or anchor_bits & bit_r
                m_a = row
                while m_a:
                    low_a = m_a & -m_a
                    a = low_a.bit_length() - 1
                    m_a ^= low_a
                    row_a = adj[a] & above_root
                    a_anch = r_anch or anchor_bits & low_a
                    prefix_a = bit_r | low_a
                    m_d = row & (-1 << (a + 1))
                    while m_d:
                        low_d = m_d & -m_d
                        d = low_d.bit_length() - 1
                        m_d ^= low_d
                        row_d = adj[d] & above_root & ~low_a
                        d_anch = a_anch or anchor_bits & low_d
                        prefix_d = prefix_a | low_d
                        m_b = row_a & ~low_d
                        while m_b:
                            low_b = m_b & -m_b
                            b = low_b.bit_length() - 1
                            m_b ^= low_b
                            closing = adj[b] & row_d
                            if not (d_anch or anchor_bits & low_b):
                                closing &= anchor_bits
                            prefix = prefix_d | low_b
                            while closing:
                                low_c = closing & -closing
                                c = low_c.bit_length() - 1
                                closing ^= low_c
                                emitted += 1
                                if emitted > max_cycles:
                                    raise self._overflow(max_cycles)
                                mask = prefix | low_c
                                art_e = cat_e = 0
                                for label in (r, a, b, c, d):
                                    if (articles >> label) & 1:
                                        art_e += (
                                            erow[label] & mask
                                        ).bit_count()
                                    else:
                                        cat_e += (
                                            erow[label] & mask
                                        ).bit_count()
                                edges = art_e + cat_e // 2
                                num_art = (mask & articles).bit_count()
                                if accept is None or accept(5, num_art, edges):
                                    out.append(
                                        (
                                            _canonical_nodes(
                                                (
                                                    ids[r],
                                                    ids[a],
                                                    ids[b],
                                                    ids[c],
                                                    ids[d],
                                                )
                                            ),
                                            num_art,
                                            edges,
                                        )
                                    )
        return out
