"""Undirected cycle enumeration (Section 3).

The paper's cycle definition:

    "We define a cycle C as a sequence of |C| nodes (either articles or
    categories) starting and ending at the same node, with at least one
    edge among each pair of consecutive nodes. [...] we do not consider
    the direction of the edges, and we limit the length of the cycles to 5
    [...]  Finally, we are interested in those cycles containing at least
    one article of L(q.k)."

Consequences implemented here:

* Cycles of length **2** are pairs of articles linked in *both* directions
  (two antiparallel LINK edges; a single undirected edge is not a cycle).
  Only article pairs can form them — the schema has at most one edge
  between an article and a category.
* Cycles of length **3..5** are simple cycles in the undirected,
  redirect-free view of the graph.  Chords are allowed (cycles are not
  required to be chordless); chords are *measured* by the density feature,
  not used to split the cycle.
* Each cycle is reported once, in canonical order: lowest node id first,
  then the direction whose second node has the smaller id.

Enumeration is exponential in the maximum length, as the paper points out;
the intended input is a per-query graph (hundreds of nodes), not all of
Wikipedia.  A ``max_cycles`` guard protects against degenerate inputs.

Two engines implement the same contract:

* ``"kernels"`` (default) — the bitset hot path of
  :mod:`repro.core.cycle_kernels`: the ball is frozen into degree-ordered
  bitset rows and each length in 2..5 is mined by a closed-form kernel.
  Used whenever ``max_length <= 5`` (the paper's range).
* ``"dfs"`` — the general recursive enumerator below, kept as the
  equivalence oracle and for ``max_length > 5``.

Both return the same canonical node tuples in the same sort order —
bit-identical lists — and both fire the ``max_cycles`` tripwire at the
same total count of emitted (anchor-filtered) cycles, 2-cycles included.
Select with the ``engine`` argument or the ``REPRO_CYCLE_ENGINE``
environment variable.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.cycle_kernels import KERNEL_MAX_LENGTH, KernelBall
from repro.errors import AnalysisError
from repro.wiki.graph import WikiGraph

__all__ = ["Cycle", "CycleFinder", "find_cycles", "resolve_engine"]

MAX_SUPPORTED_LENGTH = 8  # enumeration is exponential; hard stop well past 5

ENGINE_ENV_VAR = "REPRO_CYCLE_ENGINE"
_ENGINES = ("kernels", "dfs")


def resolve_engine(engine: str | None, max_length: int) -> str:
    """Resolve the cycle-mining engine for a finder.

    Explicit argument wins, then the ``REPRO_CYCLE_ENGINE`` environment
    variable, then the default ``"kernels"``.  The kernels are
    specialised for the paper's lengths, so any ``max_length`` beyond
    :data:`~repro.core.cycle_kernels.KERNEL_MAX_LENGTH` falls back to
    the general DFS regardless of the requested engine.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "kernels"
    if engine not in _ENGINES:
        raise AnalysisError(
            f"unknown cycle engine {engine!r}; expected one of {_ENGINES}"
        )
    if engine == "kernels" and max_length > KERNEL_MAX_LENGTH:
        return "dfs"
    return engine


@dataclass(frozen=True, slots=True)
class Cycle:
    """One cycle, as its canonical node sequence."""

    nodes: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def __iter__(self):
        return iter(self.nodes)

    def __str__(self) -> str:
        return "(" + " - ".join(str(n) for n in self.nodes) + ")"


class CycleFinder:
    """Enumerates cycles of a WikiGraph through anchor articles.

    Parameters
    ----------
    graph:
        Typically a query graph ``G(q)``; any WikiGraph works.
    max_length / min_length:
        Bounds on cycle length, inclusive (paper: 2..5).
    max_cycles:
        Enumeration aborts with :class:`AnalysisError` beyond this many
        cycles — a tripwire for accidentally passing a huge dense graph.
    engine:
        ``"kernels"`` (bitset hot path, the default) or ``"dfs"`` (the
        oracle); see :func:`resolve_engine`.  Both produce bit-identical
        results, so the choice never affects output, only speed.
    """

    def __init__(
        self,
        graph: WikiGraph,
        *,
        min_length: int = 2,
        max_length: int = 5,
        max_cycles: int = 1_000_000,
        engine: str | None = None,
    ) -> None:
        if min_length < 2:
            raise AnalysisError("min_length must be >= 2 (a cycle needs two nodes)")
        if max_length < min_length:
            raise AnalysisError("max_length must be >= min_length")
        if max_length > MAX_SUPPORTED_LENGTH:
            raise AnalysisError(
                f"max_length {max_length} exceeds the supported bound "
                f"{MAX_SUPPORTED_LENGTH}; enumeration cost grows exponentially"
            )
        self._graph = graph
        self._min_length = min_length
        self._max_length = max_length
        self._max_cycles = max_cycles
        self._engine = resolve_engine(engine, max_length)
        # Both views of the graph are built lazily, on first use by their
        # engine: the DFS adjacency snapshot costs a full sorted decode of
        # every neighbour set, the kernel ball a bitset freeze.
        self._adjacency_cache: dict[int, tuple[int, ...]] | None = None
        self._ball_cache: KernelBall | None = None

    @property
    def engine(self) -> str:
        """The resolved engine actually used by this finder."""
        return self._engine

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def find(self, anchors: Iterable[int] | None = None) -> list[Cycle]:
        """All cycles within the length bounds containing >= 1 anchor.

        ``anchors`` defaults to *no filtering* (every cycle is returned).
        The result is sorted by (length, nodes) so downstream analysis is
        deterministic.
        """
        anchor_set = None if anchors is None else frozenset(anchors)
        if self._engine == "kernels":
            cycles = [
                Cycle(nodes)
                for nodes in self._ball().find(
                    self._min_length, self._max_length, anchor_set, self._max_cycles
                )
            ]
        else:
            cycles = [Cycle(nodes) for nodes in self._dfs_tuples(anchor_set)]
        cycles.sort(key=lambda c: (c.length, c.nodes))
        return cycles

    def count_by_length(self, anchors: Iterable[int] | None = None) -> dict[int, int]:
        """Cycle census: ``{length: count}`` with zeros for empty lengths.

        Never materialises :class:`Cycle` objects; the kernel engine
        reduces the innermost level of each kernel to a popcount.
        """
        anchor_set = None if anchors is None else frozenset(anchors)
        if self._engine == "kernels":
            return self._ball().count_by_length(
                self._min_length, self._max_length, anchor_set, self._max_cycles
            )
        census = {length: 0 for length in range(self._min_length, self._max_length + 1)}
        for nodes in self._dfs_tuples(anchor_set):
            census[len(nodes)] += 1
        return census

    def find_with_features(
        self, anchors: Iterable[int] | None = None, *, accept=None
    ):
        """Like :meth:`find`, but paired with each cycle's structural
        features — ``list[CycleFeatures]`` in the same (length, nodes)
        order.

        On the kernel engine the features fall out of the bitset rows
        (popcounts of the typed rows masked by the cycle), skipping the
        per-cycle edge scan of :func:`repro.core.features.count_edges`;
        on DFS this is exactly ``compute_features`` over :meth:`find`.

        ``accept`` is an optional ``(length, num_articles, num_edges) ->
        bool`` prefilter; cycles it rejects are dropped before any
        object is built (inside the kernel's innermost loop on the
        kernel engine).  It sees identical values on both engines and
        never affects the ``max_cycles`` tripwire.
        """
        # Deferred: features imports Cycle from this module.
        from repro.core.features import CycleFeatures, compute_features, max_edges

        anchor_set = None if anchors is None else frozenset(anchors)
        if self._engine != "kernels":
            out = []
            for cycle in self.find(anchor_set):
                features = compute_features(self._graph, cycle)
                if accept is None or accept(
                    features.length, features.num_articles, features.num_edges
                ):
                    out.append(features)
            return out
        rows = self._ball().find_features(
            self._min_length,
            self._max_length,
            anchor_set,
            self._max_cycles,
            accept=accept,
        )
        rows.sort(key=lambda row: (len(row[0]), row[0]))
        out = []
        for nodes, num_articles, num_edges in rows:
            num_categories = len(nodes) - num_articles
            out.append(
                CycleFeatures(
                    cycle=Cycle(nodes),
                    num_articles=num_articles,
                    num_categories=num_categories,
                    num_edges=num_edges,
                    max_possible_edges=max_edges(num_articles, num_categories),
                )
            )
        return out

    # ------------------------------------------------------------------
    # Engine internals
    # ------------------------------------------------------------------

    def _ball(self) -> KernelBall:
        if self._ball_cache is None:
            self._ball_cache = KernelBall.build(self._graph)
        return self._ball_cache

    def _adjacency(self) -> dict[int, tuple[int, ...]]:
        """Undirected adjacency snapshot, sorted for determinism."""
        if self._adjacency_cache is None:
            graph = self._graph
            self._adjacency_cache = {
                node_id: tuple(sorted(graph.undirected_neighbors(node_id)))
                for node_id in graph.node_ids()
            }
        return self._adjacency_cache

    def _dfs_tuples(
        self, anchors: frozenset[int] | None
    ) -> Iterator[tuple[int, ...]]:
        """Canonical node tuples from the DFS engine, unsorted, with the
        shared ``max_cycles`` tripwire across all lengths."""
        emitted = 0
        if self._min_length <= 2:
            for nodes in self._two_cycles(anchors):
                emitted += 1
                if emitted > self._max_cycles:
                    raise self._overflow()
                yield nodes
        if self._max_length >= 3:
            for nodes in self._simple_cycles(anchors):
                emitted += 1
                if emitted > self._max_cycles:
                    raise self._overflow()
                yield nodes

    def _overflow(self) -> AnalysisError:
        return AnalysisError(
            f"more than {self._max_cycles} cycles; "
            "pass a smaller graph or raise max_cycles"
        )

    # ------------------------------------------------------------------
    # Length-2: antiparallel article links
    # ------------------------------------------------------------------

    def _two_cycles(
        self, anchors: frozenset[int] | None
    ) -> Iterator[tuple[int, ...]]:
        graph = self._graph
        for article in graph.articles():
            u = article.node_id
            for v in graph.links_from(u):
                if v <= u or v not in graph:
                    continue
                if anchors is not None and u not in anchors and v not in anchors:
                    continue
                if u in graph.links_from(v):
                    yield (u, v)

    # ------------------------------------------------------------------
    # Length >= 3: DFS over the undirected view
    # ------------------------------------------------------------------

    def _simple_cycles(
        self, anchors: frozenset[int] | None
    ) -> Iterator[tuple[int, ...]]:
        """Canonical enumeration: root is the smallest node id of the cycle,
        neighbours on the path must exceed the root, and the orientation
        with ``path[1] < path[-1]`` is kept (dedups the mirror image)."""
        adjacency = self._adjacency()
        max_length = self._max_length
        min_length = max(3, self._min_length)
        on_path: set[int] = set()

        for root in sorted(adjacency):
            root_neighbors = adjacency[root]
            path = [root]
            on_path = {root}

            def dfs() -> Iterator[tuple[int, ...]]:
                current = path[-1]
                for neighbor in adjacency[current]:
                    if neighbor <= root:
                        continue
                    if neighbor in on_path:
                        continue
                    path.append(neighbor)
                    on_path.add(neighbor)
                    length = len(path)
                    if (
                        length >= min_length
                        and path[1] < path[-1]
                        and root in adjacency[neighbor]
                    ):
                        nodes = tuple(path)
                        if anchors is None or not anchors.isdisjoint(nodes):
                            yield nodes
                    if length < max_length:
                        yield from dfs()
                    path.pop()
                    on_path.discard(neighbor)

            # A neighbour check avoids DFS on isolated/leaf roots.
            if len(root_neighbors) >= 2:
                yield from dfs()


def find_cycles(
    graph: WikiGraph,
    anchors: Iterable[int] | None = None,
    *,
    min_length: int = 2,
    max_length: int = 5,
    max_cycles: int = 1_000_000,
    engine: str | None = None,
) -> list[Cycle]:
    """Convenience wrapper over :class:`CycleFinder` for one-off calls."""
    finder = CycleFinder(
        graph,
        min_length=min_length,
        max_length=max_length,
        max_cycles=max_cycles,
        engine=engine,
    )
    return finder.find(anchors)
