"""Undirected cycle enumeration (Section 3).

The paper's cycle definition:

    "We define a cycle C as a sequence of |C| nodes (either articles or
    categories) starting and ending at the same node, with at least one
    edge among each pair of consecutive nodes. [...] we do not consider
    the direction of the edges, and we limit the length of the cycles to 5
    [...]  Finally, we are interested in those cycles containing at least
    one article of L(q.k)."

Consequences implemented here:

* Cycles of length **2** are pairs of articles linked in *both* directions
  (two antiparallel LINK edges; a single undirected edge is not a cycle).
  Only article pairs can form them — the schema has at most one edge
  between an article and a category.
* Cycles of length **3..5** are simple cycles in the undirected,
  redirect-free view of the graph.  Chords are allowed (cycles are not
  required to be chordless); chords are *measured* by the density feature,
  not used to split the cycle.
* Each cycle is reported once, in canonical order: lowest node id first,
  then the direction whose second node has the smaller id.

Enumeration is exponential in the maximum length, as the paper points out;
the intended input is a per-query graph (hundreds of nodes), not all of
Wikipedia.  A ``max_cycles`` guard protects against degenerate inputs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.wiki.graph import WikiGraph

__all__ = ["Cycle", "CycleFinder", "find_cycles"]

MAX_SUPPORTED_LENGTH = 8  # enumeration is exponential; hard stop well past 5


@dataclass(frozen=True, slots=True)
class Cycle:
    """One cycle, as its canonical node sequence."""

    nodes: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def __iter__(self):
        return iter(self.nodes)

    def __str__(self) -> str:
        return "(" + " - ".join(str(n) for n in self.nodes) + ")"


class CycleFinder:
    """Enumerates cycles of a WikiGraph through anchor articles.

    Parameters
    ----------
    graph:
        Typically a query graph ``G(q)``; any WikiGraph works.
    max_length / min_length:
        Bounds on cycle length, inclusive (paper: 2..5).
    max_cycles:
        Enumeration aborts with :class:`AnalysisError` beyond this many
        cycles — a tripwire for accidentally passing a huge dense graph.
    """

    def __init__(
        self,
        graph: WikiGraph,
        *,
        min_length: int = 2,
        max_length: int = 5,
        max_cycles: int = 1_000_000,
    ) -> None:
        if min_length < 2:
            raise AnalysisError("min_length must be >= 2 (a cycle needs two nodes)")
        if max_length < min_length:
            raise AnalysisError("max_length must be >= min_length")
        if max_length > MAX_SUPPORTED_LENGTH:
            raise AnalysisError(
                f"max_length {max_length} exceeds the supported bound "
                f"{MAX_SUPPORTED_LENGTH}; enumeration cost grows exponentially"
            )
        self._graph = graph
        self._min_length = min_length
        self._max_length = max_length
        self._max_cycles = max_cycles
        # Undirected adjacency snapshot, sorted for determinism.
        self._adjacency: dict[int, tuple[int, ...]] = {
            node_id: tuple(sorted(graph.undirected_neighbors(node_id)))
            for node_id in graph.node_ids()
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def find(self, anchors: Iterable[int] | None = None) -> list[Cycle]:
        """All cycles within the length bounds containing >= 1 anchor.

        ``anchors`` defaults to *no filtering* (every cycle is returned).
        The result is sorted by (length, nodes) so downstream analysis is
        deterministic.
        """
        anchor_set = None if anchors is None else frozenset(anchors)
        cycles = []
        if self._min_length <= 2:
            cycles.extend(self._two_cycles(anchor_set))
        if self._max_length >= 3:
            cycles.extend(self._simple_cycles(anchor_set))
        cycles.sort(key=lambda c: (c.length, c.nodes))
        return cycles

    def count_by_length(self, anchors: Iterable[int] | None = None) -> dict[int, int]:
        """Cycle census: ``{length: count}`` with zeros for empty lengths."""
        census = {length: 0 for length in range(self._min_length, self._max_length + 1)}
        for cycle in self.find(anchors):
            census[cycle.length] += 1
        return census

    # ------------------------------------------------------------------
    # Length-2: antiparallel article links
    # ------------------------------------------------------------------

    def _two_cycles(self, anchors: frozenset[int] | None) -> Iterator[Cycle]:
        graph = self._graph
        for article in graph.articles():
            u = article.node_id
            for v in graph.links_from(u):
                if v <= u or v not in graph:
                    continue
                if anchors is not None and u not in anchors and v not in anchors:
                    continue
                if u in graph.links_from(v):
                    yield Cycle((u, v))

    # ------------------------------------------------------------------
    # Length >= 3: DFS over the undirected view
    # ------------------------------------------------------------------

    def _simple_cycles(self, anchors: frozenset[int] | None) -> Iterator[Cycle]:
        """Canonical enumeration: root is the smallest node id of the cycle,
        neighbours on the path must exceed the root, and the orientation
        with ``path[1] < path[-1]`` is kept (dedups the mirror image)."""
        adjacency = self._adjacency
        max_length = self._max_length
        min_length = max(3, self._min_length)
        emitted = 0
        on_path: set[int] = set()

        for root in sorted(adjacency):
            root_neighbors = adjacency[root]
            path = [root]
            on_path = {root}

            def dfs() -> Iterator[Cycle]:
                nonlocal emitted
                current = path[-1]
                for neighbor in adjacency[current]:
                    if neighbor <= root:
                        continue
                    if neighbor in on_path:
                        continue
                    path.append(neighbor)
                    on_path.add(neighbor)
                    length = len(path)
                    if (
                        length >= min_length
                        and path[1] < path[-1]
                        and root in adjacency[neighbor]
                    ):
                        nodes = tuple(path)
                        if anchors is None or not anchors.isdisjoint(nodes):
                            emitted += 1
                            if emitted > self._max_cycles:
                                raise AnalysisError(
                                    f"more than {self._max_cycles} cycles; "
                                    "pass a smaller graph or raise max_cycles"
                                )
                            yield Cycle(nodes)
                    if length < max_length:
                        yield from dfs()
                    path.pop()
                    on_path.discard(neighbor)

            # A neighbour check avoids DFS on isolated/leaf roots.
            if len(root_neighbors) >= 2:
                yield from dfs()


def find_cycles(
    graph: WikiGraph,
    anchors: Iterable[int] | None = None,
    *,
    min_length: int = 2,
    max_length: int = 5,
    max_cycles: int = 1_000_000,
) -> list[Cycle]:
    """Convenience wrapper over :class:`CycleFinder` for one-off calls."""
    finder = CycleFinder(
        graph, min_length=min_length, max_length=max_length, max_cycles=max_cycles
    )
    return finder.find(anchors)
