"""Query expanders: turning graph structure into expansion features.

The paper's finding is that *cycles* through the query articles — dense
ones, with roughly 30 % categories — identify the best expansion features.
:class:`CycleExpander` implements that selection rule over a query graph;
:class:`NeighborhoodCycleExpander` lifts it to the full Wikipedia graph
(the "real query expansion system" the paper leaves as future work) by
mining cycles in a bounded neighbourhood of the query articles.

Baselines for the benchmarks:

* :class:`NullExpander` — no expansion (the raw keywords);
* :class:`DirectLinkExpander` — titles of articles directly linked from
  the query articles, the strategy of the prior work the paper contrasts
  with ([1, 2, 3]: "individual links of each article, without going deeper
  into further relationships").

Extension (Section 4 future work): :class:`RedirectExpander` decorates any
expander with the redirect titles of its selected articles — redirects can
never close a cycle, so the cycle analysis alone never surfaces them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.core.cycles import Cycle, CycleFinder, resolve_engine
from repro.core.features import CycleFeatures, compute_features
from repro.wiki.graph import WikiGraph

__all__ = [
    "ExpansionResult",
    "Expander",
    "NullExpander",
    "DirectLinkExpander",
    "CycleExpander",
    "NeighborhoodCycleExpander",
    "RedirectExpander",
    "expander_fingerprint",
]


def expander_fingerprint(expander) -> str:
    """Configuration-carrying identity of an expander.

    Used to stamp precomputed artifacts (warm-cache prefill): results
    are only reused when the serving expander's fingerprint matches the
    one recorded at build time, so neither a different class *nor a
    different configuration of the same class* can silently serve
    another strategy's cached expansions.  Falls back to the class name
    for duck-typed expanders that don't implement :meth:`Expander.fingerprint`.
    """
    method = getattr(expander, "fingerprint", None)
    if method is not None:
        return method()
    return type(expander).__qualname__


@dataclass(frozen=True, slots=True)
class ExpansionResult:
    """Expansion features selected for one query.

    ``article_ids`` excludes the seed articles; ``titles`` are the strings
    to append to the query.  ``cycles`` records provenance when the
    expander is cycle-based (empty otherwise).
    """

    seed_articles: frozenset[int]
    article_ids: frozenset[int]
    titles: tuple[str, ...]
    cycles: tuple[CycleFeatures, ...] = field(default=())

    @property
    def num_features(self) -> int:
        return len(self.article_ids)

    def all_titles(self, graph: WikiGraph) -> list[str]:
        """Seed titles followed by expansion titles (the full query)."""
        seed_titles = [graph.title(a) for a in sorted(self.seed_articles)]
        return seed_titles + list(self.titles)


class Expander(ABC):
    """Interface: select expansion features around seed articles."""

    @abstractmethod
    def expand(self, graph: WikiGraph, seed_articles: Iterable[int]) -> ExpansionResult:
        """Return expansion features for ``seed_articles`` within ``graph``."""

    def fingerprint(self) -> str:
        """Identity of this expander *including its configuration*.

        Subclasses with parameters override this to append them; two
        expanders with equal fingerprints must produce identical results
        for any input (see :func:`expander_fingerprint`).
        """
        return type(self).__qualname__

    @staticmethod
    def _result(
        graph: WikiGraph,
        seeds: frozenset[int],
        selected: set[int],
        cycles: tuple[CycleFeatures, ...] = (),
    ) -> ExpansionResult:
        selected -= seeds
        ordered = sorted(selected)
        return ExpansionResult(
            seed_articles=seeds,
            article_ids=frozenset(ordered),
            titles=tuple(graph.title(a) for a in ordered),
            cycles=cycles,
        )


class NullExpander(Expander):
    """No expansion: the baseline of using only the original keywords."""

    def expand(self, graph: WikiGraph, seed_articles: Iterable[int]) -> ExpansionResult:
        seeds = frozenset(seed_articles)
        return self._result(graph, seeds, set())


class DirectLinkExpander(Expander):
    """Expansion features = articles directly linked from the seeds.

    ``max_features`` caps the output (highest in-link overlap first would
    require global stats; we keep the deterministic id order instead,
    which matches how link-based prior work enumerates anchors).
    """

    def __init__(self, max_features: int | None = None) -> None:
        if max_features is not None and max_features < 1:
            raise AnalysisError("max_features must be >= 1 or None")
        self._max_features = max_features

    def fingerprint(self) -> str:
        return f"{type(self).__qualname__}(max_features={self._max_features})"

    def expand(self, graph: WikiGraph, seed_articles: Iterable[int]) -> ExpansionResult:
        seeds = frozenset(seed_articles)
        selected: set[int] = set()
        for seed in sorted(seeds):
            for target in graph.links_from(seed):
                if not graph.article(target).is_redirect:
                    selected.add(target)
        selected -= seeds
        if self._max_features is not None:
            selected = set(sorted(selected)[: self._max_features])
        return self._result(graph, seeds, selected)


class CycleExpander(Expander):
    """The paper's rule: expansion features from qualifying cycles.

    Parameters
    ----------
    lengths:
        Cycle lengths to use (Table 4 evaluates {2}, {3}, ..., {2,3,4,5}).
    min_category_ratio / max_category_ratio:
        Bounds on the per-cycle category ratio.  The paper's conclusion
        singles out "dense cycles, in which the ratio of categories stands
        around the 30 %"; ``min_category_ratio=0.2, max_category_ratio=0.5``
        approximates that band.  Length-2 cycles cannot contain categories
        and are exempt from the *minimum* bound (the paper keeps using
        them — they are its best contributors).
    min_extra_edge_density:
        Minimum chord density; cycles whose density is undefined (no chord
        possible) pass the filter.
    exclude_category_free:
        Drop article-only cycles of length >= 3 (the Figure 8 hazard).
        Subsumed by ``min_category_ratio`` > 0; kept as an explicit switch
        for the ablation.
    engine:
        Cycle-mining engine handed to :class:`CycleFinder` (``"kernels"``
        default / ``"dfs"`` oracle).  Engines are bit-identical, so this
        is deliberately *not* part of :meth:`fingerprint` — prefilled
        expansions built under one engine stay valid under the other.
    """

    def __init__(
        self,
        lengths: Iterable[int] = (2, 3, 4, 5),
        *,
        min_category_ratio: float = 0.0,
        max_category_ratio: float = 1.0,
        min_extra_edge_density: float = 0.0,
        exclude_category_free: bool = False,
        max_cycles: int = 1_000_000,
        engine: str | None = None,
    ) -> None:
        self._lengths = frozenset(lengths)
        if not self._lengths:
            raise AnalysisError("lengths must be non-empty")
        if min(self._lengths) < 2 or max(self._lengths) > 8:
            raise AnalysisError("cycle lengths must lie in 2..8")
        if not 0.0 <= min_category_ratio <= max_category_ratio <= 1.0:
            raise AnalysisError("category ratio bounds must satisfy 0 <= min <= max <= 1")
        if not 0.0 <= min_extra_edge_density <= 1.0:
            raise AnalysisError("min_extra_edge_density must be in [0, 1]")
        self._min_category_ratio = min_category_ratio
        self._max_category_ratio = max_category_ratio
        self._min_density = min_extra_edge_density
        self._exclude_category_free = exclude_category_free
        self._max_cycles = max_cycles
        # Validate eagerly (and pin the DFS fallback for lengths > 5).
        self._engine = resolve_engine(engine, max(self._lengths))

    @property
    def engine(self) -> str:
        """The resolved cycle-mining engine (for trace-span labelling)."""
        return self._engine

    def fingerprint(self) -> str:
        return (
            f"{type(self).__qualname__}(lengths={sorted(self._lengths)}, "
            f"min_category_ratio={self._min_category_ratio}, "
            f"max_category_ratio={self._max_category_ratio}, "
            f"min_density={self._min_density}, "
            f"exclude_category_free={self._exclude_category_free}, "
            f"max_cycles={self._max_cycles})"
        )

    def accepts(self, features: CycleFeatures) -> bool:
        """Whether one cycle passes every configured filter."""
        if features.length not in self._lengths:
            return False
        ratio = features.category_ratio
        if features.length > 2 and ratio < self._min_category_ratio:
            return False
        if ratio > self._max_category_ratio:
            return False
        if self._exclude_category_free and features.length > 2 and features.is_category_free:
            return False
        density = features.extra_edge_density
        if density is not None and density < self._min_density:
            return False
        return True

    def _prefilter(self):
        """:meth:`accepts` as a raw ``(length, A(C), E(C))`` predicate.

        Handed to :meth:`CycleFinder.find_with_features` so the kernel
        engine drops rejected cycles inside its innermost loop, before
        canonicalisation or any object build.  Only valid when
        :meth:`accepts` is not overridden — the caller checks.
        """
        lengths = self._lengths
        min_ratio = self._min_category_ratio
        max_ratio = self._max_category_ratio
        min_density = self._min_density
        exclude_free = self._exclude_category_free

        def accept(length: int, num_articles: int, num_edges: int) -> bool:
            if length not in lengths:
                return False
            num_categories = length - num_articles
            ratio = num_categories / length
            if length > 2 and ratio < min_ratio:
                return False
            if ratio > max_ratio:
                return False
            if exclude_free and length > 2 and num_categories == 0:
                return False
            max_possible = (
                num_articles * (num_articles - 1)
                + num_articles * num_categories
                + num_categories * (num_categories - 1) // 2
            )
            slack = max_possible - length
            if slack > 0 and (num_edges - length) / slack < min_density:
                return False
            return True

        return accept

    def qualifying_cycles(
        self, graph: WikiGraph, seeds: frozenset[int]
    ) -> list[CycleFeatures]:
        """All anchored cycles passing the filters, with their features.

        Goes through :meth:`CycleFinder.find_with_features` so the kernel
        engine computes ``A(C)``/``E(C)`` from its bitset rows instead of
        re-scanning each cycle's adjacency (the second-hottest loop of a
        cold expansion, after enumeration itself).
        """
        finder = CycleFinder(
            graph,
            min_length=min(self._lengths),
            max_length=max(self._lengths),
            max_cycles=self._max_cycles,
            engine=self._engine,
        )
        # The in-kernel prefilter mirrors accepts(); subclasses that
        # override accepts() fall back to filtering materialised features.
        accept = (
            self._prefilter()
            if type(self).accepts is CycleExpander.accepts
            else None
        )
        return [
            features
            for features in finder.find_with_features(anchors=seeds, accept=accept)
            if self.accepts(features)
        ]

    def expand(self, graph: WikiGraph, seed_articles: Iterable[int]) -> ExpansionResult:
        seeds = frozenset(seed_articles)
        qualifying = self.qualifying_cycles(graph, seeds)
        selected: set[int] = set()
        for features in qualifying:
            for node in features.cycle.nodes:
                if graph.is_article(node):
                    selected.add(node)
        return self._result(graph, seeds, selected, cycles=tuple(qualifying))


class NeighborhoodCycleExpander(Expander):
    """Cycle expansion over the full graph, bounded by a neighbourhood.

    Extracts the ``radius``-hop undirected neighbourhood of the seeds
    (capped at ``max_nodes`` by BFS order), then runs a
    :class:`CycleExpander` inside it.  This is the shape a deployed system
    would use — it needs no ground truth, only the knowledge graph.
    """

    def __init__(
        self,
        cycle_expander: CycleExpander | None = None,
        *,
        radius: int = 2,
        max_nodes: int = 400,
        engine: str | None = None,
    ) -> None:
        if radius < 1:
            raise AnalysisError("radius must be >= 1")
        if max_nodes < 2:
            raise AnalysisError("max_nodes must be >= 2")
        if cycle_expander is not None and engine is not None:
            raise AnalysisError(
                "pass engine on the inner CycleExpander, not both"
            )
        # Default filters = the paper's conclusion: *dense* cycles whose
        # category ratio stands around 30 %.  On the benchmark, dropping
        # the density bound admits distractor cycles and collapses top-1
        # precision (see benchmarks/test_ablation_expander_filters.py).
        self._expander = cycle_expander or CycleExpander(
            min_category_ratio=0.25,
            max_category_ratio=0.5,
            min_extra_edge_density=0.3,
            engine=engine,
        )
        self._radius = radius
        self._max_nodes = max_nodes

    @property
    def engine(self) -> str:
        """The inner expander's resolved cycle-mining engine."""
        return self._expander.engine

    def fingerprint(self) -> str:
        return (
            f"{type(self).__qualname__}(radius={self._radius}, "
            f"max_nodes={self._max_nodes}, inner={self._expander.fingerprint()})"
        )

    def neighborhood(self, graph: WikiGraph, seeds: frozenset[int]) -> set[int]:
        """BFS ball around the seeds, deterministic, size-capped."""
        frontier = sorted(seeds)
        nodes: set[int] = set(frontier)
        for _ in range(self._radius):
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in sorted(graph.undirected_neighbors(node)):
                    if neighbor not in nodes:
                        nodes.add(neighbor)
                        next_frontier.append(neighbor)
                        if len(nodes) >= self._max_nodes:
                            return nodes
            frontier = next_frontier
        return nodes

    def expand(self, graph: WikiGraph, seed_articles: Iterable[int]) -> ExpansionResult:
        seeds = frozenset(seed_articles)
        missing = [s for s in seeds if s not in graph]
        if missing:
            raise AnalysisError(f"seed articles not in graph: {missing[:3]}")
        ball = self.neighborhood(graph, seeds)
        subgraph = graph.induced_subgraph(ball)
        return self._expander.expand(subgraph, seeds)

    def expand_batch(
        self, graph: WikiGraph, seed_sets: Iterable[Iterable[int]]
    ) -> list[ExpansionResult]:
        """Expand several seed sets, amortising the full-graph edge scan.

        :meth:`expand` pays one pass over *every* edge of ``graph`` per
        query (``induced_subgraph`` filters the global edge list).  Here the
        balls of all seed sets are united first, the full graph is scanned
        once for the union subgraph, and each query's ball is then carved
        out of that much smaller graph.  Results are identical to calling
        :meth:`expand` per seed set: a ball's induced subgraph taken from
        the union subgraph contains exactly the edges it would get from the
        full graph, because the union is a superset of every ball.
        """
        resolved = [frozenset(seeds) for seeds in seed_sets]
        for seeds in resolved:
            missing = [s for s in seeds if s not in graph]
            if missing:
                raise AnalysisError(f"seed articles not in graph: {missing[:3]}")
        balls = [self.neighborhood(graph, seeds) for seeds in resolved]
        union: set[int] = set()
        for ball in balls:
            union |= ball
        shared = graph.induced_subgraph(union)
        return [
            self._expander.expand(shared.induced_subgraph(ball), seeds)
            for seeds, ball in zip(resolved, balls)
        ]


class RedirectExpander(Expander):
    """Decorator: add redirect titles of the inner expander's features.

    Implements the paper's future-work idea that redirect titles — "less
    common ways to refer a concept" — may be good expansion features even
    though they can never close a cycle themselves.
    """

    def __init__(self, inner: Expander, *, include_seed_redirects: bool = True) -> None:
        self._inner = inner
        self._include_seed_redirects = include_seed_redirects

    def fingerprint(self) -> str:
        return (
            f"{type(self).__qualname__}("
            f"include_seed_redirects={self._include_seed_redirects}, "
            f"inner={expander_fingerprint(self._inner)})"
        )

    def expand(self, graph: WikiGraph, seed_articles: Iterable[int]) -> ExpansionResult:
        base = self._inner.expand(graph, seed_articles)
        selected = set(base.article_ids)
        sources = set(base.article_ids)
        if self._include_seed_redirects:
            sources |= base.seed_articles
        for article_id in sorted(sources):
            selected.update(graph.redirects_of(article_id))
        return self._result(graph, base.seed_articles, selected, cycles=base.cycles)
