"""Structural features of cycles (Section 3).

For a cycle ``C`` the paper uses:

* ``A(C)``, ``C(C)``, ``E(C)`` — number of articles, categories, and edges
  among the cycle's nodes;
* the **category ratio** ``C(C) / |C|`` (Figure 7a);
* the **maximum edge count**
  ``M(C) = A(C)·(A(C)−1) + A(C)·C(C) + C(C)·(C(C)−1)/2``
  — article-article links are directed (ordered pairs), article-category
  memberships and category-category containments are single edges per pair
  (``INSIDE`` counts unordered pairs because the hierarchy is tree-like);
* the **density of extra edges** ``(E(C) − |C|) / (M(C) − |C|)``
  (Figure 7b/9) — how many chords the cycle carries relative to the
  maximum possible.  Undefined when ``M(C) = |C|`` (e.g. 2-cycles), in
  which case :attr:`CycleFeatures.extra_edge_density` is ``None``.

Edge counting follows the same conventions as ``M``: antiparallel article
links count twice, every other relation once per unordered pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cycles import Cycle
from repro.wiki.graph import WikiGraph

__all__ = ["CycleFeatures", "compute_features", "count_edges", "max_edges"]


@dataclass(frozen=True, slots=True)
class CycleFeatures:
    """All per-cycle structural features used by the analysis."""

    cycle: Cycle
    num_articles: int
    num_categories: int
    num_edges: int
    max_possible_edges: int

    @property
    def length(self) -> int:
        return self.cycle.length

    @property
    def category_ratio(self) -> float:
        """``C(C) / |C|`` — 0.0 for article-only cycles."""
        return self.num_categories / self.length

    @property
    def num_extra_edges(self) -> int:
        """Edges beyond the ``|C|`` strictly necessary to form the cycle."""
        return self.num_edges - self.length

    @property
    def extra_edge_density(self) -> float | None:
        """``(E − |C|) / (M − |C|)``, or None when no chord can exist."""
        slack = self.max_possible_edges - self.length
        if slack <= 0:
            return None
        return self.num_extra_edges / slack

    @property
    def is_category_free(self) -> bool:
        """True for cycles without categories (the Figure 8 hazard)."""
        return self.num_categories == 0


def max_edges(num_articles: int, num_categories: int) -> int:
    """The paper's ``M(C)`` for a node set of the given composition."""
    if num_articles < 0 or num_categories < 0:
        raise ValueError("node counts must be non-negative")
    return (
        num_articles * (num_articles - 1)
        + num_articles * num_categories
        + num_categories * (num_categories - 1) // 2
    )


def count_edges(graph: WikiGraph, nodes: tuple[int, ...]) -> int:
    """``E(C)``: edges among ``nodes``, counted with ``M``'s conventions.

    Directed article->article links count individually (a reciprocal pair
    contributes 2); BELONGS contributes 1 per (article, category) pair;
    INSIDE contributes 1 per unordered category pair regardless of
    direction(s).

    Graphs may provide a fused ``count_edges_among`` implementing these
    exact conventions natively (the compact read path does, over its
    cached adjacency sets); it is preferred when present — this function
    runs once per enumerated cycle, the hottest loop of the analysis.
    """
    counter = getattr(graph, "count_edges_among", None)
    if counter is not None:
        return counter(nodes)
    node_set = set(nodes)
    edges = 0
    for index, u in enumerate(nodes):
        if graph.is_article(u):
            # Directed links from u to other cycle nodes.
            edges += sum(1 for v in graph.links_from(u) if v in node_set)
            # Belongs edges from u to cycle categories.
            edges += sum(1 for v in graph.categories_of(u) if v in node_set)
        else:
            # Unordered containment pairs, counted from the lower index to
            # avoid double counting when both directions exist.
            for v in nodes[index + 1 :]:
                if graph.is_category(v):
                    if v in graph.parents_of(u) or v in graph.children_of(u):
                        edges += 1
    return edges


def compute_features(graph: WikiGraph, cycle: Cycle) -> CycleFeatures:
    """Compute every structural feature of ``cycle`` within ``graph``."""
    counter = getattr(graph, "count_articles_in", None)
    if counter is not None:
        num_articles = counter(cycle.nodes)
    else:
        num_articles = sum(1 for node in cycle.nodes if graph.is_article(node))
    num_categories = cycle.length - num_articles
    return CycleFeatures(
        cycle=cycle,
        num_articles=num_articles,
        num_categories=num_categories,
        num_edges=count_edges(graph, cycle.nodes),
        max_possible_edges=max_edges(num_articles, num_categories),
    )
