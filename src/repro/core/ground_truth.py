"""Ground-truth construction: the greedy local search of Section 2.2.

The paper defines the best expansion set as

    ``X(q) = argmax over A' ⊆ L(q.D) of O(L(q.k) ∪ A', q.D)``

and, because the power set of ``L(q.D)`` is unaffordable, approximates the
argmax with a hill-climbing procedure:

    "The procedure starts with A' containing a random article of L(q.D).
    From this moment on, it starts an iterative process that incrementally
    applies a single operation out of the following possible: ADD a new
    article to A' from L(q.D), REMOVE an article from A', SWAP an article
    of A' by one of L(q.D).  Operations are applied as long as they improve
    Equation 1 [...].  Note that if after removing an article the quality
    remains the same, the article is removed as we want the minimum set of
    articles with the maximum quality."
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import GroundTruthError
from repro.core.metrics import Evaluator, QualityScore

__all__ = ["Operation", "SearchStep", "GroundTruthResult", "GroundTruthSearch"]


class Operation(Enum):
    """The three local-search moves, plus the seeding step."""

    SEED = "seed"
    ADD = "add"
    REMOVE = "remove"
    SWAP = "swap"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class SearchStep:
    """One applied operation, for tracing/inspection."""

    operation: Operation
    added: int | None
    removed: int | None
    quality: float


@dataclass(slots=True)
class GroundTruthResult:
    """Outcome of the local search for one query.

    ``expansion_set`` is the paper's ``A'``; ``best_set`` is
    ``X(q) = L(q.k) ∪ A'`` (the ids actually evaluated); ``score`` its
    quality.
    """

    seed_articles: frozenset[int]
    expansion_set: frozenset[int]
    score: QualityScore
    steps: list[SearchStep] = field(default_factory=list)

    @property
    def best_set(self) -> frozenset[int]:
        return self.seed_articles | self.expansion_set

    @property
    def expansion_ratio(self) -> float:
        """``|X(q)| / |L(q.k)|`` as used by Table 3 (0.0 for no seeds)."""
        if not self.seed_articles:
            return 0.0
        return len(self.best_set) / len(self.seed_articles)

    @property
    def num_iterations(self) -> int:
        return len(self.steps)


class GroundTruthSearch:
    """Greedy ADD/REMOVE/SWAP hill climbing over candidate articles.

    Parameters
    ----------
    evaluator:
        Per-topic :class:`~repro.core.metrics.Evaluator`.
    rng:
        Source of the random initial article.  Pass a seeded
        ``random.Random`` for reproducibility.
    max_iterations:
        Safety cap on applied operations (the search converges long before
        this on realistic inputs).
    prefer_minimal:
        Apply the paper's rule of removing articles whose removal leaves
        quality unchanged.  Disabled by the ablation benchmark.
    restarts:
        Number of random restarts; the best outcome wins.  The paper uses
        a single run (restarts=1); more restarts tighten the approximation
        at linear cost.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        rng: random.Random | None = None,
        *,
        max_iterations: int = 200,
        prefer_minimal: bool = True,
        restarts: int = 1,
    ) -> None:
        if max_iterations < 1:
            raise GroundTruthError("max_iterations must be >= 1")
        if restarts < 1:
            raise GroundTruthError("restarts must be >= 1")
        self._evaluator = evaluator
        self._rng = rng or random.Random(0)
        self._max_iterations = max_iterations
        self._prefer_minimal = prefer_minimal
        self._restarts = restarts

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self, seed_articles: Iterable[int], candidates: Iterable[int]
    ) -> GroundTruthResult:
        """Search for the best expansion subset of ``candidates``.

        ``seed_articles`` is ``L(q.k)`` (kept in every evaluated set);
        ``candidates`` is ``L(q.D)``.  Candidates overlapping the seeds are
        ignored — they cannot change the query.  With no usable candidates
        the result is the bare seed set.
        """
        seeds = frozenset(seed_articles)
        pool = sorted(frozenset(candidates) - seeds)
        if not pool:
            return GroundTruthResult(
                seed_articles=seeds,
                expansion_set=frozenset(),
                score=self._evaluator.evaluate(seeds),
            )
        best: GroundTruthResult | None = None
        for _ in range(self._restarts):
            outcome = self._run_once(seeds, pool)
            if (
                best is None
                or outcome.score.mean > best.score.mean
                or (
                    outcome.score.mean == best.score.mean
                    and len(outcome.expansion_set) < len(best.expansion_set)
                )
            ):
                best = outcome
        assert best is not None  # restarts >= 1
        return best

    # ------------------------------------------------------------------
    # Search internals
    # ------------------------------------------------------------------

    def _run_once(self, seeds: frozenset[int], pool: list[int]) -> GroundTruthResult:
        evaluate = self._evaluator.quality
        current: set[int] = {self._rng.choice(pool)}
        current_quality = evaluate(seeds | current)
        steps = [
            SearchStep(Operation.SEED, added=next(iter(current)), removed=None,
                       quality=current_quality)
        ]

        for _ in range(self._max_iterations - 1):
            move = self._best_move(seeds, current, current_quality, pool)
            if move is None:
                break
            operation, added, removed, quality = move
            if added is not None:
                current.add(added)
            if removed is not None:
                current.discard(removed)
            current_quality = quality
            steps.append(SearchStep(operation, added, removed, quality))

        return GroundTruthResult(
            seed_articles=seeds,
            expansion_set=frozenset(current),
            score=self._evaluator.evaluate(seeds | current),
            steps=steps,
        )

    def _best_move(
        self,
        seeds: frozenset[int],
        current: set[int],
        current_quality: float,
        pool: list[int],
    ) -> tuple[Operation, int | None, int | None, float] | None:
        """The highest-gain single operation, or None at a local optimum.

        Ties prefer REMOVE (the paper's minimality rule), then ADD, then
        SWAP; within an operation the lowest article id wins, keeping the
        search deterministic given the RNG's starting article.
        """
        best_gaining: tuple[float, int, int | None, int | None, Operation] | None = None
        outside = [c for c in pool if c not in current]

        def consider(operation, added, removed, quality, order):
            nonlocal best_gaining
            if best_gaining is None or self._move_beats(
                (quality, order, added, removed, operation), best_gaining
            ):
                best_gaining = (quality, order, added, removed, operation)

        # REMOVE: strictly better, or equal when minimality is preferred
        # (the paper's rule) — order 0 so it wins quality ties.
        for article in sorted(current):
            quality = self._evaluator.quality(seeds | (current - {article}))
            improves = quality > current_quality
            equal_ok = self._prefer_minimal and quality == current_quality
            if improves or equal_ok:
                consider(Operation.REMOVE, None, article, quality, 0)
        # ADD — order 1.
        for article in sorted(outside):
            quality = self._evaluator.quality(seeds | current | {article})
            if quality > current_quality:
                consider(Operation.ADD, article, None, quality, 1)
        # SWAP — order 2.
        for article in sorted(current):
            without = current - {article}
            for candidate in sorted(outside):
                quality = self._evaluator.quality(seeds | without | {candidate})
                if quality > current_quality:
                    consider(Operation.SWAP, candidate, article, quality, 2)

        if best_gaining is None:
            return None
        quality, _, added, removed, operation = best_gaining
        return operation, added, removed, quality

    @staticmethod
    def _move_beats(challenger, incumbent) -> bool:
        """Order moves by quality desc, then operation priority, then id."""
        c_quality, c_order, c_added, c_removed, _ = challenger
        i_quality, i_order, i_added, i_removed, _ = incumbent
        if c_quality != i_quality:
            return c_quality > i_quality
        if c_order != i_order:
            return c_order < i_order
        c_tie = (c_added if c_added is not None else -1, c_removed if c_removed is not None else -1)
        i_tie = (i_added if i_added is not None else -1, i_removed if i_removed is not None else -1)
        return c_tie < i_tie
