"""Retrieval-quality metrics of Section 2.2.

* ``P(A, r, D)`` — top-r precision: the fraction of the top-r results that
  are correct, ``|T(A,r) ∩ D| / r``.
* ``O(A, D)`` — Equation 1: the mean of the top-r precisions over
  ``R = {1, 5, 10, 15}``.
* *contribution* of a cycle — "the percentual difference between
  ``O(L(q.k), q.D)`` and ``O(L(q.k) ∪ C, q.D)``".

:class:`Evaluator` binds the metrics to a search engine and a knowledge
graph: it turns a set of article ids into the paper's exact-phrase INDRI
query, runs it, and caches the quality per article set — the ground-truth
local search re-evaluates thousands of near-identical sets, so the cache
carries the workload.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import GroundTruthError
from repro.retrieval.engine import SearchEngine
from repro.wiki.graph import WikiGraph

__all__ = [
    "DEFAULT_RANKS",
    "top_r_precision",
    "mean_precision",
    "contribution_percent",
    "QualityScore",
    "Evaluator",
]

#: The paper's R = {1, 5, 10, 15}.
DEFAULT_RANKS: tuple[int, ...] = (1, 5, 10, 15)


def top_r_precision(ranked_ids: Sequence[str], relevant: frozenset[str] | set[str], r: int) -> float:
    """``P(A, r, D)``: precision of the first ``r`` ranked results.

    When fewer than ``r`` results were returned the denominator stays
    ``r`` — absent results are wrong results, exactly as a user sees it.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    hits = sum(1 for doc_id in ranked_ids[:r] if doc_id in relevant)
    return hits / r


def mean_precision(
    ranked_ids: Sequence[str],
    relevant: frozenset[str] | set[str],
    ranks: Iterable[int] = DEFAULT_RANKS,
) -> float:
    """``O(A, D)`` (Equation 1): mean of the top-r precisions over ``ranks``."""
    ranks = tuple(ranks)
    if not ranks:
        raise ValueError("ranks must be non-empty")
    return sum(top_r_precision(ranked_ids, relevant, r) for r in ranks) / len(ranks)


def contribution_percent(base_quality: float, expanded_quality: float) -> float:
    """Percentual difference between base and expanded quality.

    Positive when the expansion helped.  When the base quality is zero any
    improvement is an infinite relative gain; the paper's plots cap such
    cases, and we follow the convention of reporting the absolute gain
    times 100 (i.e. treating the base as 1.0) so a 0 → 0.5 improvement
    reads as +50 %.
    """
    if base_quality <= 0.0:
        return (expanded_quality - base_quality) * 100.0
    return (expanded_quality - base_quality) / base_quality * 100.0


@dataclass(frozen=True, slots=True)
class QualityScore:
    """Per-rank precisions plus their mean (Equation 1) for one query."""

    precisions: dict[int, float]
    mean: float

    def precision_at(self, r: int) -> float:
        try:
            return self.precisions[r]
        except KeyError:
            raise KeyError(f"precision at rank {r} was not evaluated") from None


class Evaluator:
    """Scores article sets as expansion features against one topic.

    Given a set of Wikipedia article ids, the evaluator writes the paper's
    expansion query — one exact ``#1`` phrase per article title under a
    ``#combine`` — runs it, and computes :class:`QualityScore` against the
    topic's relevance set.

    Instances are per-topic (they capture ``relevant``); build one per
    query and share the engine across them.
    """

    def __init__(
        self,
        engine: SearchEngine,
        graph: WikiGraph,
        relevant: frozenset[str] | set[str],
        ranks: tuple[int, ...] = DEFAULT_RANKS,
    ) -> None:
        if not ranks:
            raise GroundTruthError("ranks must be non-empty")
        self._engine = engine
        self._graph = graph
        self._relevant = frozenset(relevant)
        self._ranks = tuple(sorted(ranks))
        self._max_rank = max(self._ranks)
        self._cache: dict[frozenset[int], QualityScore] = {}
        self.evaluations = 0  # total evaluate() calls, cache hits included
        self.engine_calls = 0  # actual searches issued

    @property
    def ranks(self) -> tuple[int, ...]:
        return self._ranks

    @property
    def relevant(self) -> frozenset[str]:
        return self._relevant

    def titles_of(self, article_ids: Iterable[int]) -> list[str]:
        """Sorted titles of ``article_ids`` (sorted by id for determinism)."""
        return [self._graph.title(a) for a in sorted(set(article_ids))]

    def evaluate(self, article_ids: Iterable[int]) -> QualityScore:
        """Quality of using the titles of ``article_ids`` as the query."""
        key = frozenset(article_ids)
        self.evaluations += 1
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if not key:
            score = QualityScore(precisions={r: 0.0 for r in self._ranks}, mean=0.0)
            self._cache[key] = score
            return score
        self.engine_calls += 1
        results = self._engine.search_phrases(self.titles_of(key), top_k=self._max_rank)
        ranked = [result.doc_id for result in results]
        precisions = {r: top_r_precision(ranked, self._relevant, r) for r in self._ranks}
        score = QualityScore(
            precisions=precisions,
            mean=sum(precisions.values()) / len(precisions),
        )
        self._cache[key] = score
        return score

    def quality(self, article_ids: Iterable[int]) -> float:
        """Shortcut for ``evaluate(...).mean`` (Equation 1)."""
        return self.evaluate(article_ids).mean

    def contribution_of(self, seed_ids: frozenset[int], extra_ids: Iterable[int]) -> float:
        """Contribution (in %) of adding ``extra_ids`` to the seed set."""
        base = self.quality(seed_ids)
        expanded = self.quality(set(seed_ids) | set(extra_ids))
        return contribution_percent(base, expanded)

    def __repr__(self) -> str:
        return (
            f"Evaluator(relevant={len(self._relevant)}, ranks={self._ranks}, "
            f"cached={len(self._cache)})"
        )
