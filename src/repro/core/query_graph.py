"""Query graph assembly and statistics (Sections 2.3 and 3, Table 3).

    "Each query graph G(q) is built by inducing the subgraph with nodes
    X(q), their main articles in case of being a redirect, and their
    categories."

A :class:`QueryGraph` carries the induced :class:`WikiGraph` plus the roles
of its articles (which ids came from ``L(q.k)``, which from ``A'``), and
computes the largest-connected-component statistics reported in Table 3.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.wiki.graph import WikiGraph
from repro.wiki.stats import (
    composition,
    largest_connected_component,
    triangle_participation_ratio,
)

__all__ = ["QueryGraph", "QueryGraphStats", "build_query_graph"]


@dataclass(frozen=True, slots=True)
class QueryGraphStats:
    """The Table 3 row for one query graph.

    All ratios concern the *largest connected component* (LCC):

    ``relative_size``     |LCC| / |G(q)|
    ``query_node_ratio``  fraction of L(q.k) articles inside the LCC
    ``article_ratio``     articles / |LCC|
    ``category_ratio``    categories / |LCC|
    ``expansion_ratio``   |X(q) ∩ LCC| / |L(q.k) ∩ LCC| — 0 when no query
                          article made it into the LCC (paper's convention)
    ``tpr``               triangle participation ratio of the LCC
    """

    num_nodes: int
    lcc_size: int
    relative_size: float
    query_node_ratio: float
    article_ratio: float
    category_ratio: float
    expansion_ratio: float
    tpr: float


class QueryGraph:
    """The induced Wikipedia subgraph of one query."""

    def __init__(
        self,
        graph: WikiGraph,
        seed_articles: frozenset[int],
        expansion_articles: frozenset[int],
    ) -> None:
        unknown = [a for a in (*seed_articles, *expansion_articles) if a not in graph]
        if unknown:
            raise AnalysisError(f"query graph is missing its own articles: {unknown[:3]}")
        self.graph = graph
        self.seed_articles = seed_articles
        self.expansion_articles = expansion_articles

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def best_set(self) -> frozenset[int]:
        """``X(q)``: seed plus expansion articles."""
        return self.seed_articles | self.expansion_articles

    def articles(self) -> frozenset[int]:
        return frozenset(a.node_id for a in self.graph.articles())

    def categories(self) -> frozenset[int]:
        return frozenset(c.node_id for c in self.graph.categories())

    # ------------------------------------------------------------------
    # Table 3 statistics
    # ------------------------------------------------------------------

    def stats(self) -> QueryGraphStats:
        """Largest-connected-component statistics (one Table 3 row)."""
        total = self.graph.num_nodes
        if total == 0:
            return QueryGraphStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        lcc = largest_connected_component(self.graph)
        comp = composition(self.graph, lcc)
        seeds_in = self.seed_articles & lcc
        best_in = self.best_set & lcc
        if self.seed_articles:
            query_node_ratio = len(seeds_in) / len(self.seed_articles)
        else:
            query_node_ratio = 0.0
        expansion_ratio = len(best_in) / len(seeds_in) if seeds_in else 0.0
        lcc_graph = self.graph.to_networkx().subgraph(lcc)
        return QueryGraphStats(
            num_nodes=total,
            lcc_size=len(lcc),
            relative_size=len(lcc) / total,
            query_node_ratio=query_node_ratio,
            article_ratio=comp.article_ratio,
            category_ratio=comp.category_ratio,
            expansion_ratio=expansion_ratio,
            tpr=triangle_participation_ratio(lcc_graph),
        )

    def __repr__(self) -> str:
        return (
            f"QueryGraph(nodes={self.num_nodes}, seeds={len(self.seed_articles)}, "
            f"expansion={len(self.expansion_articles)})"
        )


def build_query_graph(
    graph: WikiGraph,
    seed_articles: Iterable[int],
    expansion_articles: Iterable[int],
) -> QueryGraph:
    """Assemble ``G(q)`` per Section 2.3.

    Node set: ``X(q)`` (= seeds ∪ expansion), the main article of any
    redirect among them, the redirects pointing at those articles (they
    appear in the paper's Figure 3 as satellite nodes), and the categories
    of every article included.  The subgraph is induced — every edge of the
    full graph between retained nodes is kept.
    """
    seeds = frozenset(seed_articles)
    expansion = frozenset(expansion_articles) - seeds
    nodes: set[int] = set()
    resolved_seeds: set[int] = set()
    resolved_expansion: set[int] = set()

    for source_set, resolved in (
        (seeds, resolved_seeds),
        (expansion, resolved_expansion),
    ):
        for article_id in source_set:
            if article_id not in graph:
                raise AnalysisError(f"article {article_id} not in the knowledge graph")
            main_id = graph.resolve(article_id)
            nodes.add(article_id)
            nodes.add(main_id)
            resolved.add(main_id)

    # Categories of every retained article (redirects have none).
    for article_id in list(nodes):
        nodes.update(graph.categories_of(article_id))

    induced = graph.induced_subgraph(nodes)
    return QueryGraph(
        graph=induced,
        seed_articles=frozenset(resolved_seeds),
        expansion_articles=frozenset(resolved_expansion) - frozenset(resolved_seeds),
    )
