"""Visual exports of query graphs and cycles (the paper's Figures 3 & 4).

Emits Graphviz DOT text — no graphviz binary required; render with
``dot -Tpng`` wherever available, or read the DOT directly.  Node shapes
follow the paper's Figure 3 legend:

* triangle — articles of ``L(q.k)`` (the query entities)
* ellipse  — expansion articles (``A'``)
* plain    — main articles pulled in by redirects / other articles
* box      — categories
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.cycles import Cycle
from repro.core.query_graph import QueryGraph
from repro.wiki.graph import WikiGraph
from repro.wiki.schema import EdgeKind

__all__ = ["query_graph_to_dot", "cycle_to_dot", "describe_query_graph"]


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_line(graph: WikiGraph, node_id: int, shape: str) -> str:
    label = _dot_escape(graph.title(node_id))
    return f'  n{node_id} [label="{label}", shape={shape}];'


def query_graph_to_dot(query_graph: QueryGraph, *, name: str = "query_graph") -> str:
    """Render a query graph as DOT, shapes per the paper's Figure 3."""
    graph = query_graph.graph
    lines = [f"graph {_dot_escape(name)} {{", "  layout=neato;", "  overlap=false;"]
    for node_id in sorted(graph.node_ids()):
        if node_id in query_graph.seed_articles:
            shape = "triangle"
        elif node_id in query_graph.expansion_articles:
            shape = "ellipse"
        elif graph.is_category(node_id):
            shape = "box"
        else:
            shape = "plaintext"
        lines.append(_node_line(graph, node_id, shape))
    seen: set[tuple[int, int, str]] = set()
    for edge in graph.edges():
        if edge.kind is EdgeKind.REDIRECT:
            style = ' [style=dashed, label="redirects_to"]'
            key = (edge.source, edge.target, "r")
        else:
            style = ""
            key = (min(edge.source, edge.target), max(edge.source, edge.target), "u")
        if key in seen:
            continue
        seen.add(key)
        lines.append(f"  n{edge.source} -- n{edge.target}{style};")
    lines.append("}")
    return "\n".join(lines)


def cycle_to_dot(graph: WikiGraph, cycle: Cycle, *, name: str = "cycle") -> str:
    """Render one cycle (plus its chords) as DOT, like Figure 4."""
    nodes = cycle.nodes
    node_set = set(nodes)
    lines = [f"graph {_dot_escape(name)} {{"]
    for node_id in nodes:
        shape = "box" if graph.is_category(node_id) else "ellipse"
        lines.append(_node_line(graph, node_id, shape))
    emitted: set[tuple[int, int]] = set()
    for u in nodes:
        for v in graph.undirected_neighbors(u):
            if v not in node_set:
                continue
            key = (min(u, v), max(u, v))
            if key in emitted:
                continue
            emitted.add(key)
            lines.append(f"  n{u} -- n{v};")
    lines.append("}")
    return "\n".join(lines)


def describe_query_graph(query_graph: QueryGraph) -> str:
    """Readable multi-line summary of a query graph (for CLIs/logs)."""
    graph = query_graph.graph
    stats = query_graph.stats()

    def names(ids: Iterable[int]) -> str:
        return ", ".join(graph.title(n) for n in sorted(ids)) or "(none)"

    return "\n".join(
        [
            f"query graph: {graph.num_nodes} nodes / {graph.num_edges} edges",
            f"  seeds (L(q.k)):   {names(query_graph.seed_articles)}",
            f"  expansion (A'):   {names(query_graph.expansion_articles)}",
            f"  LCC: {stats.lcc_size} nodes ({stats.relative_size:.0%} of graph), "
            f"TPR {stats.tpr:.2f}",
            f"  composition: {stats.article_ratio:.0%} articles, "
            f"{stats.category_ratio:.0%} categories",
        ]
    )
