"""Exception hierarchy shared by all ``repro`` subpackages.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
Subpackages define finer-grained subclasses here rather than locally so the
hierarchy stays discoverable in a single module.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised deliberately by this library."""


class SchemaError(ReproError):
    """An entity or edge violates the Wikipedia schema of Figure 1.

    Examples: an article that belongs to no category, a redirect with more
    than one target, a category membership edge whose endpoint is not a
    category.
    """


class UnknownNodeError(ReproError, KeyError):
    """A node id was requested that is not present in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(node_id)
        self.node_id = node_id

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable.
        return f"unknown node: {self.node_id!r}"


class DuplicateNodeError(SchemaError):
    """A node with the same id or title was added twice."""


class DumpFormatError(ReproError):
    """A serialized graph/collection dump could not be parsed."""


class QueryLanguageError(ReproError):
    """A retrieval query string could not be parsed."""


class IndexError_(ReproError):
    """The inverted index was used inconsistently (e.g. duplicate doc id)."""


class EmptyIndexError(IndexError_):
    """A search was issued against an index with no documents."""


class LinkingError(ReproError):
    """The entity linker was misconfigured (e.g. empty knowledge base)."""


class GroundTruthError(ReproError):
    """The ground-truth local search received unusable inputs."""


class AnalysisError(ReproError):
    """An analysis routine received inconsistent inputs."""


class BenchmarkConfigError(ReproError):
    """A synthetic benchmark configuration is invalid."""


class ServiceError(ReproError):
    """The online expansion service was misused or misconfigured."""


class SnapshotError(ServiceError):
    """A service snapshot on disk is missing, corrupt, or incompatible.

    Raised with a message that names the offending file and, for version
    mismatches, both the found and the supported version.
    """


class DeltaError(ServiceError):
    """A live-update delta is malformed or invalid against the graph.

    Examples: adding a node id that already exists, removing an edge
    that is not present, redirecting an article onto itself.  The HTTP
    admin endpoint maps this onto a structured 400.
    """


class StaleGenerationError(DeltaError):
    """A delta batch targeted a snapshot generation no longer serving.

    Carries both generations so the client can refetch ``/healthz`` and
    resubmit; the HTTP admin endpoint maps this onto a 409.
    """

    def __init__(self, expected: int, got: object) -> None:
        super().__init__(
            f"delta targets generation {got!r}, but the service is at "
            f"generation {expected}"
        )
        self.expected = expected
        self.got = got


class WireProtocolError(ServiceError):
    """A shard-protocol frame was malformed, oversized, or truncated.

    Raised by :mod:`repro.service.wire` on decode; the socket adapter
    treats it as a transient transport failure (the connection is
    dropped and the call retried on a fresh one).
    """


class WorkerCallError(ServiceError):
    """A shard worker executed a call and reported an application error.

    Unlike :class:`WireProtocolError` this is *not* transient: the
    worker is alive and answered with an error frame, so retrying would
    repeat the same failure.  ``error_type`` carries the worker-side
    exception class name.
    """

    def __init__(self, shard_id: int | None, error_type: str, message: str) -> None:
        super().__init__(f"shard {shard_id}: {error_type}: {message}")
        self.shard_id = shard_id
        self.error_type = error_type


class ShardUnavailableError(ServiceError):
    """A shard worker is down and the call cannot be served without it.

    The router degrades gracefully: queries owned by healthy shards keep
    serving (ranking falls back to the router-local segment engine), and
    queries owned by the dead shard raise this — the HTTP front end maps
    it onto a structured 503 with ``retry_after_s``.
    """

    def __init__(
        self,
        shard_id: int,
        message: str,
        *,
        state: str = "down",
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.state = state
        self.retry_after_s = retry_after_s
