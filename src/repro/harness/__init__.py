"""Experiment harness: the pipeline runner, per-table/figure experiment
functions, text rendering, and the default cached benchmark."""

from functools import lru_cache

from repro.collection.benchmark import Benchmark
from repro.collection.synthetic import SyntheticCollectionConfig
from repro.harness.experiments import (
    PAPER_FIG5,
    PAPER_FIG6,
    PAPER_FIG7A,
    PAPER_FIG7B,
    PAPER_SEC3_STATS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Fig9Data,
    StructuralStats,
    Table4Row,
    fig5_contribution_by_length,
    fig6_cycle_counts,
    fig7a_category_ratio,
    fig7b_density,
    fig9_density_vs_contribution,
    sec3_structural_stats,
    table2_ground_truth_precision,
    table3_largest_cc_stats,
    table4_cycle_expansion_precision,
)
from repro.harness.pipeline import (
    PipelineConfig,
    PipelineResult,
    QueryOutcome,
    run_pipeline,
)
from repro.harness.report import render_report, save_report
from repro.harness.sweep import ShapeChecks, SweepOutcome, check_shapes, run_seed_sweep
from repro.harness.tables import (
    format_five_point_table,
    format_series,
    format_series_comparison,
    format_table4,
)
from repro.wiki.synthetic import SyntheticWikiConfig

__all__ = [
    "default_benchmark",
    "default_pipeline_result",
    "PipelineConfig",
    "PipelineResult",
    "QueryOutcome",
    "run_pipeline",
    "table2_ground_truth_precision",
    "table3_largest_cc_stats",
    "table4_cycle_expansion_precision",
    "Table4Row",
    "fig5_contribution_by_length",
    "fig6_cycle_counts",
    "fig7a_category_ratio",
    "fig7b_density",
    "fig9_density_vs_contribution",
    "Fig9Data",
    "sec3_structural_stats",
    "StructuralStats",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_FIG5",
    "PAPER_FIG6",
    "PAPER_FIG7A",
    "PAPER_FIG7B",
    "PAPER_SEC3_STATS",
    "render_report",
    "ShapeChecks",
    "SweepOutcome",
    "check_shapes",
    "run_seed_sweep",
    "save_report",
    "format_five_point_table",
    "format_series",
    "format_series_comparison",
    "format_table4",
]


def default_benchmark(seed: int = 7) -> Benchmark:
    """The standard 50-topic synthetic benchmark used by every bench."""
    return Benchmark.synthetic(
        SyntheticWikiConfig(seed=seed),
        SyntheticCollectionConfig(seed=seed + 6),
    )


@lru_cache(maxsize=4)
def default_pipeline_result(seed: int = 7) -> PipelineResult:
    """Cached full pipeline run over :func:`default_benchmark`.

    The pipeline takes tens of seconds; benches for different tables and
    figures share this single run, like the paper derives all its
    analysis from one ground truth.
    """
    return run_pipeline(default_benchmark(seed), PipelineConfig(seed=seed + 90))
