"""One function per table/figure of the paper.

Every function consumes a :class:`~repro.harness.pipeline.PipelineResult`
and returns plain data structures (dataclasses / dicts / lists) that the
formatting layer renders and the benchmark suite asserts on.  The paper's
measured values are included as ``PAPER_*`` constants so EXPERIMENTS.md and
the benches can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import (
    CycleRecord,
    FivePointSummary,
    average_category_ratio_by_length,
    average_contribution_by_length,
    average_count_by_length,
    average_density_by_length,
    binned_density_trend,
    density_contribution_points,
    five_point_summary,
    linear_trend,
)
from repro.core.metrics import contribution_percent
from repro.harness.pipeline import PipelineResult
from repro.wiki.stats import reciprocal_link_ratio

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_FIG5",
    "PAPER_FIG6",
    "PAPER_FIG7A",
    "PAPER_FIG7B",
    "PAPER_SEC3_STATS",
    "table2_ground_truth_precision",
    "table3_largest_cc_stats",
    "table4_cycle_expansion_precision",
    "fig5_contribution_by_length",
    "fig6_cycle_counts",
    "fig7a_category_ratio",
    "fig7b_density",
    "fig9_density_vs_contribution",
    "sec3_structural_stats",
    "Table4Row",
    "Fig9Data",
    "StructuralStats",
]

# ----------------------------------------------------------------------
# Paper-reported values (for side-by-side reporting, not for assertions
# on exact equality — the substrate differs; see DESIGN.md)
# ----------------------------------------------------------------------

PAPER_TABLE2: dict[str, tuple[float, float, float, float, float]] = {
    # top-r: (min, q1, median, q3, max)
    "top-1": (0.0, 1.0, 1.0, 1.0, 1.0),
    "top-5": (0.0, 1.0, 1.0, 1.0, 1.0),
    "top-10": (0.2, 0.6, 0.9, 1.0, 1.0),
    "top-15": (0.2, 0.65, 0.8, 0.85, 1.0),
}

PAPER_TABLE3: dict[str, tuple[float, float, float, float, float]] = {
    "%size": (0.164, 0.477, 0.587, 0.688, 1.0),
    "%query nodes": (0.0, 1.0, 1.0, 1.0, 1.0),
    "%articles": (0.025, 0.148, 0.217, 0.269, 0.5),
    "%categories": (0.5, 0.731, 0.783, 0.852, 0.975),
    "expansion ratio": (0.0, 2.125, 4.5, 23.750, 176.0),
}

PAPER_TABLE4: dict[tuple[int, ...], tuple[float, float, float, float]] = {
    # lengths: (top-1, top-5, top-10, top-15)
    (2,): (0.826, 0.539, 0.539, 0.552),
    (3,): (0.833, 0.578, 0.519, 0.513),
    (4,): (0.703, 0.589, 0.541, 0.494),
    (5,): (0.788, 0.624, 0.588, 0.547),
    (2, 3): (0.944, 0.656, 0.583, 0.621),
    (2, 3, 4): (0.944, 0.667, 0.594, 0.629),
    (2, 3, 4, 5): (0.944, 0.667, 0.622, 0.658),
}

PAPER_FIG5: dict[int, float] = {2: 50.53, 3: 24.38, 4: 32.74, 5: 32.31}
PAPER_FIG6: dict[int, float] = {2: 1.56, 3: 9.1, 4: 35.22, 5: 136.84}
PAPER_FIG7A: dict[int, float] = {3: 0.366, 4: 0.375, 5: 0.382}
PAPER_FIG7B: dict[int, float] = {3: 0.289, 4: 0.38, 5: 0.333}
PAPER_SEC3_STATS = {
    "tpr": 0.3,
    "reciprocal_pair_ratio": 0.1147,
    "avg_query_graph_nodes": 208.22,
}


# ----------------------------------------------------------------------
# Table 2 — ground truth precision quartiles
# ----------------------------------------------------------------------


def table2_ground_truth_precision(result: PipelineResult) -> dict[str, FivePointSummary]:
    """Quartiles of X(q)'s top-r precision across queries (Table 2)."""
    out: dict[str, FivePointSummary] = {}
    for rank in result.config.ranks:
        values = [o.best_score.precision_at(rank) for o in result.outcomes]
        out[f"top-{rank}"] = five_point_summary(values)
    return out


# ----------------------------------------------------------------------
# Table 3 — largest connected component statistics
# ----------------------------------------------------------------------


def table3_largest_cc_stats(result: PipelineResult) -> dict[str, FivePointSummary]:
    """Quartiles of the per-query LCC statistics (Table 3)."""
    stats = [o.query_graph.stats() for o in result.outcomes]
    return {
        "%size": five_point_summary(s.relative_size for s in stats),
        "%query nodes": five_point_summary(s.query_node_ratio for s in stats),
        "%articles": five_point_summary(s.article_ratio for s in stats),
        "%categories": five_point_summary(s.category_ratio for s in stats),
        "expansion ratio": five_point_summary(s.expansion_ratio for s in stats),
    }


# ----------------------------------------------------------------------
# Table 4 — precision by cycle-length configuration
# ----------------------------------------------------------------------

TABLE4_CONFIGURATIONS: tuple[tuple[int, ...], ...] = (
    (2,), (3,), (4,), (5,), (2, 3), (2, 3, 4), (2, 3, 4, 5),
)


@dataclass(frozen=True, slots=True)
class Table4Row:
    """Average top-r precisions of one cycle-length configuration."""

    lengths: tuple[int, ...]
    precisions: dict[int, float]

    def label(self) -> str:
        return " & ".join(str(length) for length in self.lengths)


def table4_cycle_expansion_precision(
    result: PipelineResult,
    configurations: tuple[tuple[int, ...], ...] = TABLE4_CONFIGURATIONS,
) -> list[Table4Row]:
    """Average precision using cycle articles as expansion features.

    For each configuration of cycle lengths, each query is expanded with
    the titles of all articles appearing in its anchored cycles of those
    lengths; precisions are averaged over queries that have at least one
    such cycle (queries without cycles of a length cannot use that
    configuration, matching the paper's setup).
    """
    rows: list[Table4Row] = []
    for lengths in configurations:
        sums = {rank: 0.0 for rank in result.config.ranks}
        used = 0
        for outcome in result.outcomes:
            articles: set[int] = set()
            for record in outcome.records:
                if record.length in lengths:
                    articles.update(
                        node
                        for node in record.features.cycle.nodes
                        if outcome.query_graph.graph.is_article(node)
                    )
            if not articles:
                continue
            assert outcome.evaluator is not None
            score = outcome.evaluator.evaluate(outcome.seed_articles | articles)
            for rank in result.config.ranks:
                sums[rank] += score.precision_at(rank)
            used += 1
        if used:
            precisions = {rank: sums[rank] / used for rank in result.config.ranks}
        else:
            precisions = {rank: 0.0 for rank in result.config.ranks}
        rows.append(Table4Row(lengths=lengths, precisions=precisions))
    return rows


# ----------------------------------------------------------------------
# Figures 5, 6, 7a, 7b
# ----------------------------------------------------------------------


def fig5_contribution_by_length(result: PipelineResult) -> dict[int, float]:
    return average_contribution_by_length(result.all_records())


def fig6_cycle_counts(result: PipelineResult) -> dict[int, float]:
    return average_count_by_length(result.all_records(), result.num_queries)


def fig7a_category_ratio(result: PipelineResult) -> dict[int, float]:
    return average_category_ratio_by_length(result.all_records())


def fig7b_density(result: PipelineResult) -> dict[int, float]:
    return average_density_by_length(result.all_records())


# ----------------------------------------------------------------------
# Figure 9 — density of extra edges vs contribution
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig9Data:
    """Scatter points, binned trend and least-squares slope."""

    points: list[tuple[float, float]]
    trend: list[tuple[float, float]]
    slope: float
    intercept: float


def fig9_density_vs_contribution(result: PipelineResult, num_bins: int = 5) -> Fig9Data:
    points = density_contribution_points(result.all_records())
    trend = binned_density_trend(points, num_bins=num_bins)
    slope, intercept = linear_trend(points)
    return Fig9Data(points=points, trend=trend, slope=slope, intercept=intercept)


# ----------------------------------------------------------------------
# Section 3 structural statistics
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StructuralStats:
    """The loose numbers of Section 3 (TPR, 2-cycle ratio, graph size)."""

    average_tpr: float
    reciprocal_pair_ratio: float
    average_query_graph_nodes: float
    average_cycle_seconds: float
    average_base_quality: float
    average_best_quality: float
    average_improvement_percent: float


def sec3_structural_stats(result: PipelineResult) -> StructuralStats:
    outcomes = result.outcomes
    tprs = [o.query_graph.stats().tpr for o in outcomes]
    base = [o.base_score.mean for o in outcomes]
    best = [o.best_score.mean for o in outcomes]
    improvements = [
        contribution_percent(b, x) for b, x in zip(base, best)
    ]
    return StructuralStats(
        average_tpr=sum(tprs) / len(tprs),
        reciprocal_pair_ratio=reciprocal_link_ratio(result.benchmark.graph),
        average_query_graph_nodes=(
            sum(o.query_graph.num_nodes for o in outcomes) / len(outcomes)
        ),
        average_cycle_seconds=(
            sum(o.cycle_wall_seconds for o in outcomes) / len(outcomes)
        ),
        average_base_quality=sum(base) / len(base),
        average_best_quality=sum(best) / len(best),
        average_improvement_percent=sum(improvements) / len(improvements),
    )
