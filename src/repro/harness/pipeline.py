"""End-to-end pipeline: benchmark -> ground truth -> query graphs -> cycles.

This is the orchestration of Sections 2 and 3:

1. index the collection, build the entity linker;
2. per topic: link the keywords (``L(q.k)``) and the relevant documents
   (``L(q.D)``);
3. run the ground-truth local search for ``X(q)``;
4. assemble the query graph ``G(q)``;
5. enumerate anchored cycles and measure each cycle's features and
   contribution.

The result object holds everything the experiment functions (one per
table/figure) need, so the expensive pipeline runs once per benchmark.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.collection.benchmark import Benchmark
from repro.collection.topics import Topic
from repro.core.analysis import CycleRecord
from repro.core.cycles import CycleFinder
from repro.core.features import compute_features
from repro.core.ground_truth import GroundTruthResult, GroundTruthSearch
from repro.core.metrics import DEFAULT_RANKS, Evaluator, QualityScore
from repro.core.query_graph import QueryGraph, build_query_graph
from repro.errors import GroundTruthError
from repro.linking.linker import EntityLinker
from repro.retrieval.engine import SearchEngine

__all__ = ["PipelineConfig", "QueryOutcome", "PipelineResult", "run_pipeline"]


@dataclass(frozen=True, slots=True)
class PipelineConfig:
    """Knobs of the end-to-end run."""

    seed: int = 97
    ranks: tuple[int, ...] = DEFAULT_RANKS
    max_cycle_length: int = 5
    use_synonyms: bool = True
    prefer_minimal: bool = True
    restarts: int = 1
    max_candidates: int = 60  # cap |L(q.D)| fed to the local search
    max_search_iterations: int = 120


@dataclass(slots=True)
class QueryOutcome:
    """Everything measured for one topic."""

    topic: Topic
    seed_articles: frozenset[int]  # L(q.k)
    candidate_articles: frozenset[int]  # L(q.D)
    ground_truth: GroundTruthResult
    query_graph: QueryGraph
    base_score: QualityScore  # O(L(q.k))
    records: list[CycleRecord] = field(default_factory=list)
    cycle_wall_seconds: float = 0.0
    evaluator: Evaluator | None = None

    @property
    def best_score(self) -> QualityScore:
        return self.ground_truth.score

    @property
    def num_cycles(self) -> int:
        return len(self.records)


@dataclass(slots=True)
class PipelineResult:
    """Outcomes for every topic, plus the shared machinery."""

    benchmark: Benchmark
    outcomes: list[QueryOutcome]
    engine: SearchEngine
    linker: EntityLinker
    config: PipelineConfig

    @property
    def num_queries(self) -> int:
        return len(self.outcomes)

    def all_records(self) -> list[CycleRecord]:
        records: list[CycleRecord] = []
        for outcome in self.outcomes:
            records.extend(outcome.records)
        return records


def _link_topic(
    linker: EntityLinker, benchmark: Benchmark, topic: Topic
) -> tuple[frozenset[int], frozenset[int]]:
    """Compute ``L(q.k)`` and ``L(q.D)`` for one topic."""
    seed_articles = linker.link_keywords(topic.keywords)
    candidates: set[int] = set()
    for doc_id in sorted(topic.relevant):
        document = benchmark.documents[doc_id]
        candidates |= linker.link(document.extraction_text()).article_ids
    return frozenset(seed_articles), frozenset(candidates)


def run_pipeline(
    benchmark: Benchmark, config: PipelineConfig | None = None
) -> PipelineResult:
    """Run the whole paper pipeline over ``benchmark``.

    Deterministic given ``config.seed``.  Topics whose keywords link to no
    article at all are skipped with a :class:`GroundTruthError` only if
    *every* topic fails; individual failures are recorded as outcomes with
    empty seed sets so aggregate statistics stay honest about them.
    """
    config = config or PipelineConfig()
    engine = benchmark.build_engine()
    linker = EntityLinker(benchmark.graph, use_synonyms=config.use_synonyms)
    rng = random.Random(config.seed)

    outcomes: list[QueryOutcome] = []
    for topic in benchmark.topics:
        outcome = _run_topic(benchmark, engine, linker, topic, config, rng)
        outcomes.append(outcome)

    if outcomes and all(not o.seed_articles for o in outcomes):
        raise GroundTruthError(
            "no topic's keywords linked to any article; benchmark and graph "
            "are inconsistent"
        )
    return PipelineResult(
        benchmark=benchmark,
        outcomes=outcomes,
        engine=engine,
        linker=linker,
        config=config,
    )


def _run_topic(
    benchmark: Benchmark,
    engine: SearchEngine,
    linker: EntityLinker,
    topic: Topic,
    config: PipelineConfig,
    rng: random.Random,
) -> QueryOutcome:
    seeds, candidates = _link_topic(linker, benchmark, topic)
    evaluator = Evaluator(engine, benchmark.graph, topic.relevant, ranks=config.ranks)

    pool = sorted(candidates - seeds)
    if len(pool) > config.max_candidates:
        # Deterministic subsample: keeps the search tractable on dense
        # benchmarks while remaining reproducible.
        pool = sorted(rng.sample(pool, config.max_candidates))

    search = GroundTruthSearch(
        evaluator,
        rng=random.Random(rng.randrange(1 << 30)),
        max_iterations=config.max_search_iterations,
        prefer_minimal=config.prefer_minimal,
        restarts=config.restarts,
    )
    ground_truth = search.run(seeds, pool)

    query_graph = build_query_graph(
        benchmark.graph, seeds, ground_truth.expansion_set
    )

    base_score = evaluator.evaluate(seeds)

    started = time.perf_counter()
    finder = CycleFinder(
        query_graph.graph, min_length=2, max_length=config.max_cycle_length
    )
    records = []
    for cycle in finder.find(anchors=query_graph.seed_articles):
        features = compute_features(query_graph.graph, cycle)
        cycle_articles = [
            node for node in cycle.nodes if query_graph.graph.is_article(node)
        ]
        contribution = evaluator.contribution_of(seeds, cycle_articles)
        records.append(
            CycleRecord(
                query_id=topic.topic_id,
                features=features,
                contribution=contribution,
            )
        )
    elapsed = time.perf_counter() - started

    return QueryOutcome(
        topic=topic,
        seed_articles=seeds,
        candidate_articles=candidates,
        ground_truth=ground_truth,
        query_graph=query_graph,
        base_score=base_score,
        records=records,
        cycle_wall_seconds=elapsed,
        evaluator=evaluator,
    )
