"""Markdown report generation for a pipeline run.

``render_report`` turns a :class:`~repro.harness.pipeline.PipelineResult`
into a single self-contained markdown document: per-query ground truth,
all tables/figures with the paper's numbers alongside, and the structural
statistics.  ``save_report`` writes it to disk.  The CLI exposes this as
part of ``repro-analyze`` consumers' workflow (import and call; kept as a
library function so tests can assert on content).
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.experiments import (
    PAPER_FIG5,
    PAPER_FIG6,
    PAPER_FIG7A,
    PAPER_FIG7B,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    fig5_contribution_by_length,
    fig6_cycle_counts,
    fig7a_category_ratio,
    fig7b_density,
    fig9_density_vs_contribution,
    sec3_structural_stats,
    table2_ground_truth_precision,
    table3_largest_cc_stats,
    table4_cycle_expansion_precision,
)
from repro.harness.pipeline import PipelineResult

__all__ = ["render_report", "save_report"]


def _five_point_rows(rows, paper) -> list[str]:
    out = ["| row | source | min | 25% | 50% | 75% | max |",
           "|---|---|---|---|---|---|---|"]
    for name, summary in rows.items():
        values = " | ".join(f"{v:.3f}" for v in summary.as_tuple())
        out.append(f"| {name} | measured | {values} |")
        if paper and name in paper:
            paper_values = " | ".join(f"{v:g}" for v in paper[name])
            out.append(f"| {name} | paper | {paper_values} |")
    return out


def _series_rows(series, paper, key_label="length") -> list[str]:
    out = [f"| {key_label} | measured | paper |", "|---|---|---|"]
    for key in sorted(set(series) | set(paper)):
        measured = f"{series[key]:.3f}" if key in series else "—"
        expected = f"{paper[key]:g}" if key in paper else "—"
        out.append(f"| {key} | {measured} | {expected} |")
    return out


def render_report(result: PipelineResult, *, title: str = "Reproduction report") -> str:
    """Render the full pipeline outcome as a markdown document."""
    lines: list[str] = [f"# {title}", ""]
    lines.append(
        f"Benchmark: {result.benchmark.num_documents} documents, "
        f"{result.benchmark.num_topics} topics, graph "
        f"{result.benchmark.graph.num_articles} articles / "
        f"{result.benchmark.graph.num_categories} categories."
    )
    lines.append("")

    # Per-query ground truth.
    lines.append("## Ground truth per query")
    lines.append("")
    lines.append("| topic | keywords | O(base) | O(X(q)) | |A'| | cycles |")
    lines.append("|---|---|---|---|---|---|")
    for outcome in result.outcomes:
        keywords = outcome.topic.keywords
        if len(keywords) > 48:
            keywords = keywords[:45] + "..."
        lines.append(
            f"| {outcome.topic.topic_id} | {keywords} "
            f"| {outcome.base_score.mean:.3f} | {outcome.best_score.mean:.3f} "
            f"| {len(outcome.ground_truth.expansion_set)} | {outcome.num_cycles} |"
        )
    lines.append("")

    lines.append("## Table 2 — ground truth precision")
    lines.append("")
    lines.extend(_five_point_rows(table2_ground_truth_precision(result), PAPER_TABLE2))
    lines.append("")

    lines.append("## Table 3 — largest connected component")
    lines.append("")
    lines.extend(_five_point_rows(table3_largest_cc_stats(result), PAPER_TABLE3))
    lines.append("")

    lines.append("## Table 4 — precision by cycle-length configuration")
    lines.append("")
    ranks = result.config.ranks
    header = "| cycles | " + " | ".join(f"top-{r}" for r in ranks) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(ranks) + 1))
    for row in table4_cycle_expansion_precision(result):
        values = " | ".join(f"{row.precisions[r]:.3f}" for r in ranks)
        lines.append(f"| {row.label()} | {values} |")
        if row.lengths in PAPER_TABLE4:
            paper_values = " | ".join(f"{v:g}" for v in PAPER_TABLE4[row.lengths])
            lines.append(f"| {row.label()} (paper) | {paper_values} |")
    lines.append("")

    for heading, series, paper in (
        ("Figure 5 — average contribution (%)", fig5_contribution_by_length(result), PAPER_FIG5),
        ("Figure 6 — cycles per query", fig6_cycle_counts(result), PAPER_FIG6),
        ("Figure 7a — category ratio", fig7a_category_ratio(result), PAPER_FIG7A),
        ("Figure 7b — density of extra edges", fig7b_density(result), PAPER_FIG7B),
    ):
        lines.append(f"## {heading}")
        lines.append("")
        lines.extend(_series_rows(series, paper))
        lines.append("")

    fig9 = fig9_density_vs_contribution(result)
    lines.append("## Figure 9 — density vs contribution")
    lines.append("")
    lines.append(f"Least-squares slope **{fig9.slope:+.2f}** over "
                 f"{len(fig9.points)} cycles (paper: positive trend).")
    lines.append("")
    lines.append("| density bin centre | mean contribution (%) |")
    lines.append("|---|---|")
    for center, mean in fig9.trend:
        lines.append(f"| {center:.2f} | {mean:+.1f} |")
    lines.append("")

    stats = sec3_structural_stats(result)
    lines.append("## Section 3 structural statistics")
    lines.append("")
    lines.append("| statistic | measured | paper |")
    lines.append("|---|---|---|")
    lines.append(f"| TPR of LCC | {stats.average_tpr:.3f} | ~0.3 |")
    lines.append(
        f"| 2-cycle linked-pair ratio | {stats.reciprocal_pair_ratio:.4f} | 0.1147 |"
    )
    lines.append(
        f"| avg query graph nodes | {stats.average_query_graph_nodes:.1f} | 208.22 |"
    )
    lines.append(
        f"| avg cycle mining seconds | {stats.average_cycle_seconds:.4f} | ~360 |"
    )
    lines.append(
        f"| avg improvement over base | {stats.average_improvement_percent:+.1f}% | — |"
    )
    lines.append("")
    return "\n".join(lines)


def save_report(result: PipelineResult, path: str | Path, **kwargs) -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.write_text(render_report(result, **kwargs), encoding="utf-8")
    return path
