"""Robustness sweeps: do the paper's shapes hold across seeds and scales?

A reproduction built on a synthetic substrate must show its findings are
not an artefact of one lucky seed.  :func:`run_seed_sweep` regenerates the
whole pipeline for several seeds and records, per seed, whether each
headline *shape* of the paper holds:

* Figure 5 — 2-cycles contribute most and 3-cycles least;
* Figure 6 — cycle counts grow monotonically with length;
* Figure 9 — density/contribution slope positive;
* Table 4 — the all-lengths configuration best (or tied) at top-15;
* expansion helps — mean O(X(q)) > mean O(L(q.k)).

``ShapeChecks.holds_majority`` is what the robustness bench asserts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.collection.benchmark import Benchmark
from repro.collection.synthetic import SyntheticCollectionConfig
from repro.harness.experiments import (
    fig5_contribution_by_length,
    fig6_cycle_counts,
    fig9_density_vs_contribution,
    table4_cycle_expansion_precision,
)
from repro.harness.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.wiki.synthetic import SyntheticWikiConfig

__all__ = ["ShapeChecks", "SweepOutcome", "run_seed_sweep", "check_shapes"]


@dataclass(frozen=True, slots=True)
class ShapeChecks:
    """Truth values of the headline shapes for one pipeline run.

    ``fig5_two_best_per_article`` is the seed-robust form of the paper's
    2-cycle claim: a 2-cycle introduces a single article, so its
    contribution *per added article* must top every other length.  The
    raw peak (``fig5_two_peak``) also holds on the default benchmark but
    fluctuates across seeds, because longer cycles aggregate several
    ground-truth articles (see EXPERIMENTS.md).
    """

    fig5_two_peak: bool
    fig5_two_best_per_article: bool
    fig5_three_min: bool
    fig6_monotone: bool
    fig9_positive_slope: bool
    table4_full_best_at_depth: bool
    expansion_helps: bool

    def as_dict(self) -> dict[str, bool]:
        return {
            "fig5_two_peak": self.fig5_two_peak,
            "fig5_two_best_per_article": self.fig5_two_best_per_article,
            "fig5_three_min": self.fig5_three_min,
            "fig6_monotone": self.fig6_monotone,
            "fig9_positive_slope": self.fig9_positive_slope,
            "table4_full_best_at_depth": self.table4_full_best_at_depth,
            "expansion_helps": self.expansion_helps,
        }

    @property
    def all_hold(self) -> bool:
        return all(self.as_dict().values())


@dataclass(slots=True)
class SweepOutcome:
    """Checks for every seed plus aggregate pass rates."""

    seeds: list[int]
    checks: list[ShapeChecks]

    def pass_rate(self, shape: str) -> float:
        """Fraction of seeds for which ``shape`` held."""
        if not self.checks:
            return 0.0
        return sum(1 for c in self.checks if c.as_dict()[shape]) / len(self.checks)

    def holds_majority(self, shape: str, threshold: float = 0.5) -> bool:
        return self.pass_rate(shape) > threshold

    def summary(self) -> str:
        """Readable pass-rate table."""
        lines = [f"seed sweep over {len(self.seeds)} seeds: {self.seeds}"]
        if self.checks:
            for shape in self.checks[0].as_dict():
                lines.append(f"  {shape:<28} {self.pass_rate(shape):.0%}")
        return "\n".join(lines)


def check_shapes(result: PipelineResult) -> ShapeChecks:
    """Evaluate every headline shape on one pipeline result."""
    fig5 = fig5_contribution_by_length(result)
    # Contribution per *added article*: cycles of length L carry about
    # ceil(L * (1 - category_ratio)) articles, one of which is the seed.
    per_article: dict[int, float] = {}
    records = result.all_records()
    from collections import defaultdict
    sums: dict[int, list[float]] = defaultdict(list)
    for record in records:
        added = max(1, record.features.num_articles - 1)
        sums[record.length].append(record.contribution / added)
    per_article = {length: sum(v) / len(v) for length, v in sums.items() if v}
    fig6 = fig6_cycle_counts(result)
    lengths = sorted(fig6)
    fig9 = fig9_density_vs_contribution(result)
    table4 = {row.lengths: row.precisions for row in
              table4_cycle_expansion_precision(result)}

    base = sum(o.base_score.mean for o in result.outcomes)
    best = sum(o.best_score.mean for o in result.outcomes)

    full = table4.get((2, 3, 4, 5), {})
    full_best = bool(full) and all(
        full.get(15, 0.0) >= precisions.get(15, 0.0) - 1e-9
        for precisions in table4.values()
    )
    return ShapeChecks(
        fig5_two_peak=bool(fig5) and fig5.get(2, float("-inf")) == max(fig5.values()),
        fig5_two_best_per_article=bool(per_article)
        and per_article.get(2, float("-inf")) == max(per_article.values()),
        fig5_three_min=bool(fig5) and fig5.get(3, float("inf")) == min(fig5.values()),
        fig6_monotone=all(
            fig6[a] <= fig6[b] for a, b in zip(lengths, lengths[1:])
        ),
        fig9_positive_slope=fig9.slope > 0,
        table4_full_best_at_depth=full_best,
        expansion_helps=best > base,
    )


def run_seed_sweep(
    seeds: Iterable[int] = (3, 11, 19, 27, 35),
    *,
    num_domains: int = 20,
    pipeline_overrides: PipelineConfig | None = None,
) -> SweepOutcome:
    """Run the full pipeline per seed and collect shape checks.

    ``num_domains`` trades sweep cost against statistical stability; 20
    domains keeps each run around a second.
    """
    seeds = list(seeds)
    checks: list[ShapeChecks] = []
    for seed in seeds:
        benchmark = Benchmark.synthetic(
            SyntheticWikiConfig(seed=seed, num_domains=num_domains),
            SyntheticCollectionConfig(seed=seed + 6),
        )
        config = pipeline_overrides or PipelineConfig(seed=seed + 90)
        checks.append(check_shapes(run_pipeline(benchmark, config)))
    return SweepOutcome(seeds=seeds, checks=checks)
