"""Plain-text rendering of experiment outputs (paper-vs-measured)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.analysis import FivePointSummary

__all__ = [
    "format_five_point_table",
    "format_series",
    "format_series_comparison",
    "format_table4",
]


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def format_five_point_table(
    rows: Mapping[str, FivePointSummary],
    title: str,
    paper: Mapping[str, tuple[float, float, float, float, float]] | None = None,
) -> str:
    """Render min/quartiles/max rows, optionally with the paper's values."""
    lines = [title, "-" * len(title)]
    header = f"{'row':<18}{'min':>8}{'25%':>8}{'50%':>8}{'75%':>8}{'max':>8}"
    lines.append(header)
    for name, summary in rows.items():
        values = summary.as_tuple()
        lines.append(
            f"{name:<18}" + "".join(f"{_fmt(v):>8}" for v in values)
        )
        if paper and name in paper:
            lines.append(
                f"{'  (paper)':<18}" + "".join(f"{_fmt(v):>8}" for v in paper[name])
            )
    return "\n".join(lines)


def format_series(
    series: Mapping[int, float], title: str, key_label: str = "length"
) -> str:
    """Render a ``{x: y}`` series as two columns."""
    lines = [title, "-" * len(title), f"{key_label:<10}{'value':>10}"]
    for key in sorted(series):
        lines.append(f"{key:<10}{_fmt(series[key]):>10}")
    return "\n".join(lines)


def format_series_comparison(
    measured: Mapping[int, float],
    paper: Mapping[int, float],
    title: str,
    key_label: str = "length",
) -> str:
    """Render measured vs paper values side by side."""
    lines = [title, "-" * len(title), f"{key_label:<10}{'measured':>10}{'paper':>10}"]
    for key in sorted(set(measured) | set(paper)):
        measured_text = _fmt(measured[key]) if key in measured else "-"
        paper_text = _fmt(paper[key]) if key in paper else "-"
        lines.append(f"{key:<10}{measured_text:>10}{paper_text:>10}")
    return "\n".join(lines)


def format_table4(rows: Sequence, ranks: Sequence[int], paper=None) -> str:
    """Render Table 4 rows (precision per cycle-length configuration)."""
    title = "Table 4 — precision by cycle-length configuration"
    lines = [title, "-" * len(title)]
    header = f"{'cycles':<14}" + "".join(f"{f'top-{r}':>9}" for r in ranks)
    lines.append(header)
    for row in rows:
        label = row.label()
        lines.append(
            f"{label:<14}"
            + "".join(f"{_fmt(row.precisions[r]):>9}" for r in ranks)
        )
        if paper and row.lengths in paper:
            values = paper[row.lengths]
            lines.append(
                f"{'  (paper)':<14}" + "".join(f"{_fmt(v):>9}" for v in values)
            )
    return "\n".join(lines)
