"""Entity linking: matching text substrings to Wikipedia article titles,
with redirect-derived synonym phrases (paper Section 2.1)."""

from repro.linking.linker import EntityLinker, EntityMatch, LinkResult
from repro.linking.synonyms import SynonymProvider

__all__ = ["EntityLinker", "EntityMatch", "LinkResult", "SynonymProvider"]
