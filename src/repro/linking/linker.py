"""Largest-substring entity linking against Wikipedia article titles.

Section 2.1:

    "The entity linking process consists in identifying the set of the
    largest substrings in the input query that matches with the title of
    an article in Wikipedia."

The linker tokenises the input, then greedily matches the longest title
n-gram starting at each position (longest-match-first, left to right,
non-overlapping).  Optionally it also scans *synonym phrases* (variants of
the input built from redirect titles, see
:class:`repro.linking.synonyms.SynonymProvider`) and maps every match to
its main article by resolving redirects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LinkingError
from repro.linking.synonyms import SynonymProvider
from repro.retrieval.tokenizer import Tokenizer
from repro.wiki.graph import WikiGraph

__all__ = ["EntityLinker", "EntityMatch", "LinkResult"]


@dataclass(frozen=True, slots=True)
class EntityMatch:
    """One matched entity.

    ``start``/``end`` index the *token* span in the text the match was
    found in (``end`` exclusive); for synonym-phrase matches they index the
    variant token sequence, and ``via_synonym`` is True.
    """

    article_id: int
    title_tokens: tuple[str, ...]
    start: int
    end: int
    via_synonym: bool = False

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class LinkResult:
    """Outcome of linking one text: matches plus the resolved entity set."""

    matches: tuple[EntityMatch, ...]
    article_ids: frozenset[int]

    def __len__(self) -> int:
        return len(self.article_ids)

    def __contains__(self, article_id: int) -> bool:
        return article_id in self.article_ids


class EntityLinker:
    """Matches text substrings against article titles of a WikiGraph.

    Parameters
    ----------
    graph:
        The knowledge base.  Every article (redirects included) is an
        entity whose title participates in matching.
    tokenizer:
        Must match the tokenizer used elsewhere in the pipeline so phrases
        align with the retrieval index.
    use_synonyms:
        Also link inside redirect-derived synonym phrases (the paper's
        accuracy booster; ablation benchmarks switch it off).
    resolve_redirects:
        Map matched redirect articles onto their main article (the query
        graph is built over main articles; Section 2.3).
    max_title_tokens:
        Upper bound for candidate n-gram length, capped for speed; real
        titles hardly exceed ~10 tokens.
    title_index:
        A prebuilt vocabulary (tokenised title -> article id), e.g. one
        loaded from a service snapshot.  When given, the title scan over
        ``graph`` is skipped entirely; the caller asserts the vocabulary
        was built with a compatible tokenizer.
    """

    def __init__(
        self,
        graph: WikiGraph,
        tokenizer: Tokenizer | None = None,
        *,
        use_synonyms: bool = True,
        resolve_redirects: bool = True,
        max_title_tokens: int = 12,
        title_index: dict[tuple[str, ...], int] | None = None,
    ) -> None:
        if graph.num_articles == 0:
            raise LinkingError("cannot link against a graph with no articles")
        if max_title_tokens < 1:
            raise LinkingError("max_title_tokens must be >= 1")
        self._graph = graph
        self._tokenizer = tokenizer or Tokenizer()
        self._use_synonyms = use_synonyms
        self._resolve_redirects = resolve_redirects
        self._synonyms = SynonymProvider(graph, self._tokenizer) if use_synonyms else None

        # Map of tokenised title -> article id.  When two articles tokenise
        # identically (e.g. "color" vs "Color!"), the lowest id wins, making
        # linking deterministic.
        self._title_index: dict[tuple[str, ...], int] = {}
        self._max_len = 1
        if title_index is not None:
            if not title_index:
                raise LinkingError("prebuilt title_index must be non-empty")
            for tokens, article_id in title_index.items():
                self._title_index[tuple(tokens)] = article_id
                self._max_len = max(self._max_len, len(tokens))
        else:
            for article in sorted(graph.articles(), key=lambda a: a.node_id):
                tokens = self._tokenizer.tokenize_phrase(article.title)
                if not tokens or len(tokens) > max_title_tokens:
                    continue
                self._title_index.setdefault(tokens, article.node_id)
                self._max_len = max(self._max_len, len(tokens))

    @property
    def num_titles(self) -> int:
        """Number of distinct tokenised titles the linker can match."""
        return len(self._title_index)

    def vocabulary(self) -> dict[tuple[str, ...], int]:
        """Copy of the matching vocabulary (tokenised title -> article id).

        The inverse of the ``title_index`` constructor parameter: feeding
        this back into a new linker over the same graph reproduces the
        original linking behaviour without rescanning titles.
        """
        return dict(self._title_index)

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------

    def link(self, text: str) -> LinkResult:
        """Link ``text`` and return every matched entity.

        Matching is greedy longest-first over the direct text; when synonym
        scanning is enabled, single-term replacements derived from
        redirects are scanned the same way and contribute additional
        entities (flagged ``via_synonym``).
        """
        tokens = self._tokenizer.tokenize_phrase(text)
        matches = list(self._scan(tokens, via_synonym=False))
        if self._synonyms is not None and tokens:
            direct_ids = {m.article_id for m in matches}
            for variant in self._synonyms.synonym_phrases(tokens):
                for match in self._scan(variant, via_synonym=True):
                    if match.article_id not in direct_ids:
                        matches.append(match)
                        direct_ids.add(match.article_id)
        article_ids = frozenset(self._finalize(m.article_id) for m in matches)
        return LinkResult(matches=tuple(matches), article_ids=article_ids)

    def link_keywords(self, keywords: str) -> frozenset[int]:
        """Convenience: the entity set ``L(k)`` of a keyword list."""
        return self.link(keywords).article_ids

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _finalize(self, article_id: int) -> int:
        if self._resolve_redirects:
            return self._graph.resolve(article_id)
        return article_id

    def _scan(self, tokens: tuple[str, ...], *, via_synonym: bool):
        position = 0
        n = len(tokens)
        while position < n:
            matched = None
            longest = min(self._max_len, n - position)
            for length in range(longest, 0, -1):
                candidate = tokens[position : position + length]
                article_id = self._title_index.get(candidate)
                if article_id is not None:
                    matched = EntityMatch(
                        article_id=article_id,
                        title_tokens=candidate,
                        start=position,
                        end=position + length,
                        via_synonym=via_synonym,
                    )
                    break
            if matched is not None:
                yield matched
                position = matched.end
            else:
                position += 1

    def __repr__(self) -> str:
        return (
            f"EntityLinker(titles={self.num_titles}, "
            f"synonyms={self._synonyms is not None}, "
            f"resolve_redirects={self._resolve_redirects})"
        )
