"""Redirect-derived synonyms (Section 2.1 of the paper).

    "Given a term t, we retrieve (if it exists) the article a from
    Wikipedia whose title is equal to t.  Then, the synonyms of t are the
    titles of the redirects of a."

A *synonym phrase* is the input token sequence with at least one term
replaced by a synonymous term.  The linker runs entity matching over these
variants as well, which lets a query phrased with a less common title still
hit the main article's neighbourhood.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.retrieval.tokenizer import Tokenizer
from repro.wiki.graph import WikiGraph

__all__ = ["SynonymProvider"]


class SynonymProvider:
    """Computes term synonyms from Wikipedia redirects."""

    def __init__(self, graph: WikiGraph, tokenizer: Tokenizer | None = None) -> None:
        self._graph = graph
        self._tokenizer = tokenizer or Tokenizer()
        self._cache: dict[str, tuple[tuple[str, ...], ...]] = {}

    def synonyms(self, term: str) -> list[tuple[str, ...]]:
        """Tokenised titles of the redirects of the article titled ``term``.

        Returns an empty list when no article carries that exact title or
        the article has no redirects.  The term itself is never returned.
        """
        key = self._tokenizer.normalize(term).strip()
        cached = self._cache.get(key)
        if cached is None:
            cached = tuple(self._compute(key))
            self._cache[key] = cached
        return list(cached)

    def _compute(self, term: str) -> Iterator[tuple[str, ...]]:
        article = self._graph.article_by_title(term)
        if article is None:
            return
        # If the term itself names a redirect, its main article's other
        # redirects are equally valid synonyms, so resolve first.
        main_id = self._graph.resolve(article.node_id)
        for redirect_id in sorted(self._graph.redirects_of(main_id)):
            title_tokens = self._tokenizer.tokenize_phrase(self._graph.title(redirect_id))
            if title_tokens:
                yield title_tokens

    def synonym_phrases(
        self, tokens: tuple[str, ...], max_phrases: int = 32
    ) -> list[tuple[str, ...]]:
        """All single-replacement synonym variants of ``tokens``.

        Each variant replaces exactly one token by one of its synonyms
        (which may span several tokens).  ``max_phrases`` caps the output
        since a long document with many synonym-bearing terms would
        otherwise explode combinatorially; the paper links short queries
        and short extracted document strings, where the cap never binds.
        """
        variants: list[tuple[str, ...]] = []
        for position, token in enumerate(tokens):
            for replacement in self.synonyms(token):
                variant = tokens[:position] + replacement + tokens[position + 1 :]
                if variant != tokens:
                    variants.append(variant)
                if len(variants) >= max_phrases:
                    return variants
        return variants
