"""Deterministic, seeded load generation against the HTTP front end.

The serving stack is benchmarked by :mod:`benchmarks` in a tight loop
over a handful of topics — realistic traffic looks nothing like that:
topic popularity is Zipf-skewed, crowds pile onto one entity, batch
jobs share the wire with interactive queries, adversaries flood
cache-missing garbage, and writes trickle in while all of it happens.
This package generates exactly that traffic, deterministically:

* :mod:`repro.loadgen.generator` — topic pools sampled from a snapshot's
  linker vocabulary, query templates with paraphrase/typo/operator
  augmentation, garbage queries, and delta batches.  Same seed →
  byte-identical request stream, across runs and Python versions;
* :mod:`repro.loadgen.shapes` — the traffic shapes (``interactive``
  Zipf skew, ``flash_crowd``, ``batch_mix``, ``flood``,
  ``delta_trickle``) planned into concrete request lists;
* :mod:`repro.loadgen.runner` — closed-loop paced replay of those plans
  against a live ``serve --http`` process, with ``/metrics`` captured
  before and after;
* :mod:`repro.loadgen.report` — the SLO report (client p50/p99/p999
  cross-checked against the server's own histograms, error rate, shed
  rate, cache hit rate per shape) merged into the ``loadgen_slo``
  section of ``BENCH_service.json``.

CLI entry point: ``python -m repro.cli loadgen`` (``docs/loadgen.md``).
The flood shape is what proves load shedding
(:mod:`repro.service.admission`) under real overload.
"""

from repro.loadgen.generator import (
    QueryGenerator,
    WorkloadRequest,
    offset_delta_body,
    seeded_rng,
    stream_digest,
    topic_pool,
)
from repro.loadgen.report import build_report, merge_into_bench, percentile
from repro.loadgen.runner import LoadgenResult, RequestOutcome, run_plans
from repro.loadgen.shapes import SHAPE_NAMES, plan_shape, plan_workload, zipf_indices

__all__ = [
    "QueryGenerator",
    "WorkloadRequest",
    "offset_delta_body",
    "seeded_rng",
    "stream_digest",
    "topic_pool",
    "SHAPE_NAMES",
    "plan_shape",
    "plan_workload",
    "zipf_indices",
    "LoadgenResult",
    "RequestOutcome",
    "run_plans",
    "build_report",
    "merge_into_bench",
    "percentile",
]
