"""Seeded synthetic query generation: topic pools, templates, augmentation.

Everything here is a pure function of ``(seed, snapshot contents)``:
randomness comes only from :class:`random.Random` instances seeded via
:func:`seeded_rng` (a SHA-512 of the seed string, stable across Python
versions and platforms), and every choice draws from that stream in a
fixed order.  The determinism tests in ``tests/loadgen`` assert the
resulting request stream is byte-identical run to run.

Augmentation deliberately never touches the topic phrase itself — case
flips, punctuation, search-style operators and typos land on the filler
words around it — so an augmented query still links the same entities
through the real :class:`~repro.linking.linker.EntityLinker` (asserted
by the property tests).  Flood queries are the opposite: tokens built
from a consonant-only alphabet with a ``qzx`` prefix so they can never
match a snapshot title, guaranteeing cache misses all the way down.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

__all__ = [
    "QueryGenerator",
    "WorkloadRequest",
    "offset_delta_body",
    "seeded_rng",
    "stream_digest",
    "topic_pool",
    "DELTA_NODE_BASE",
]

# Fresh articles injected by the delta_trickle shape get node ids far
# above any synthetic benchmark graph so they can never collide with
# existing nodes (validate_delta rejects duplicates).
DELTA_NODE_BASE = 50_000_000

_TEMPLATES = (
    "{topic}",
    "{topic}",  # bare topics dominate real query logs; weight them double
    "{topic} overview",
    "what is {topic}",
    "history of {topic}",
    "tell me about {topic}",
    "{topic} compared with {other}",
)

# Filler vocabulary that typos may mutate.  None of these words appear
# in synthetic snapshot titles, so mutating them never changes linking.
_FILLERS = ("overview", "what", "history", "tell", "about", "compared", "with")

_OPERATORS = ('"{q}"', "+{q}", "{q} AND recent", "{q} OR summary", "{q}?")

# Consonant-heavy alphabet for garbage tokens — no vowels means no
# accidental collision with English-like synthetic titles.
_GARBAGE_ALPHABET = "bcdfghjklmnpqrstvwxz0123456789"


def seeded_rng(*parts) -> random.Random:
    """A ``random.Random`` seeded from the string form of ``parts``.

    ``random.Random(str)`` hashes via a version-pinned algorithm already,
    but routing through SHA-512 makes the independence of two streams
    (``seed/interactive`` vs ``seed/flood``) explicit and keeps the seed
    space uniform even for adjacent integer seeds.
    """
    text = "/".join(str(part) for part in parts)
    digest = hashlib.sha512(text.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:16], "big"))


def topic_pool(snapshot, *, limit: int | None = None) -> list[str]:
    """Topic phrases from the snapshot's linker vocabulary, deterministic.

    The vocabulary maps title token tuples to article ids; sorting the
    tuples gives a stable order independent of dict insertion, and the
    phrases are guaranteed to link (they *are* titles).  ``limit`` keeps
    pools small for tests.
    """
    phrases = [" ".join(tokens) for tokens in sorted(snapshot.title_index)]
    if limit is not None:
        phrases = phrases[:limit]
    if not phrases:
        raise ValueError("snapshot has an empty linker vocabulary")
    return phrases


@dataclass(frozen=True)
class WorkloadRequest:
    """One planned HTTP request of a shape's stream.

    ``to_line()`` is the canonical byte form (sorted keys, no spaces) —
    the determinism contract is over these lines, and
    :func:`stream_digest` hashes them into the SLO report as a witness.
    """

    shape: str
    index: int
    method: str
    path: str
    client: str
    body: dict = field(default_factory=dict)

    def to_line(self) -> str:
        return json.dumps(
            {
                "shape": self.shape,
                "index": self.index,
                "method": self.method,
                "path": self.path,
                "client": self.client,
                "body": self.body,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def stream_digest(requests) -> str:
    """SHA-256 over the newline-joined canonical lines of ``requests``."""
    hasher = hashlib.sha256()
    for request in requests:
        hasher.update(request.to_line().encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


class QueryGenerator:
    """Turns topics into augmented query text using one seeded stream.

    Parameters are rates in [0, 1]; each query draws template → partner
    topic → augmentation coins in a fixed order so the output is a pure
    function of the rng state.
    """

    def __init__(
        self,
        rng: random.Random,
        pool: list[str],
        *,
        case_rate: float = 0.3,
        operator_rate: float = 0.2,
        typo_rate: float = 0.15,
    ) -> None:
        if not pool:
            raise ValueError("topic pool must not be empty")
        self._rng = rng
        self._pool = pool
        self._case_rate = case_rate
        self._operator_rate = operator_rate
        self._typo_rate = typo_rate

    # ------------------------------------------------------------------
    # Entity-bearing queries
    # ------------------------------------------------------------------

    def query_for(self, topic: str) -> str:
        """One augmented query that still links ``topic``."""
        rng = self._rng
        template = rng.choice(_TEMPLATES)
        other = rng.choice(self._pool)
        text = template.format(topic=topic, other=other)
        if rng.random() < self._typo_rate:
            text = self._typo_filler(text)
        if rng.random() < self._operator_rate:
            text = rng.choice(_OPERATORS).format(q=text)
        if rng.random() < self._case_rate:
            # The tokenizer lower-cases, so case flips are free paraphrase.
            text = "".join(
                ch.upper() if rng.random() < 0.5 else ch for ch in text
            )
        return text

    def _typo_filler(self, text: str) -> str:
        """Mutate one filler word (never topic tokens) with a typo."""
        rng = self._rng
        words = text.split(" ")
        filler_slots = [
            i for i, word in enumerate(words) if word.lower() in _FILLERS
        ]
        if not filler_slots:
            return text
        slot = rng.choice(filler_slots)
        word = words[slot]
        kind = rng.randrange(3)
        pos = rng.randrange(len(word))
        if kind == 0:  # double a letter
            word = word[: pos + 1] + word[pos] + word[pos + 1 :]
        elif kind == 1 and len(word) > 2:  # drop a letter
            word = word[:pos] + word[pos + 1 :]
        elif len(word) > 1:  # swap adjacent letters
            pos = min(pos, len(word) - 2)
            word = word[:pos] + word[pos + 1] + word[pos] + word[pos + 2 :]
        words[slot] = word
        return " ".join(words)

    # ------------------------------------------------------------------
    # Adversarial garbage
    # ------------------------------------------------------------------

    def garbage_query(self) -> str:
        """Cache-missing junk: unique ``qzx``-prefixed consonant tokens."""
        rng = self._rng
        tokens = []
        for _ in range(rng.randint(2, 4)):
            length = rng.randint(5, 9)
            tokens.append(
                "qzx" + "".join(rng.choice(_GARBAGE_ALPHABET) for _ in range(length))
            )
        return " ".join(tokens)

    # ------------------------------------------------------------------
    # Delta batches (relative sequence numbers)
    # ------------------------------------------------------------------

    def delta_batch(self, rel_seq: int, tag: str) -> tuple[dict, int]:
        """One ``/admin/apply_delta`` body using *relative* sequences.

        Returns ``(body, next_rel_seq)``.  Node ids and seqs are relative
        (node id == rel seq); :func:`offset_delta_body` rebases them onto
        the live server's ``delta_seq`` just before sending, so the
        planned stream stays byte-identical while replays against any
        server state stay valid (no id/title/seq collisions).

        Each batch adds one fresh article; from the third batch on it
        also links the two previously added articles so edge application
        and cache invalidation get exercised, not just node inserts.
        """
        deltas: list[dict] = [
            {
                "op": "add_article",
                "seq": rel_seq,
                "node_id": rel_seq,
                "title": f"loadgen {tag} fresh {rel_seq}",
            }
        ]
        next_seq = rel_seq + 1
        if rel_seq >= 3:
            deltas.append(
                {
                    "op": "add_edge",
                    "seq": next_seq,
                    "source": rel_seq - 2,
                    "target": rel_seq - 1,
                    "kind": "link",
                }
            )
            next_seq += 1
        return {"deltas": deltas}, next_seq


def offset_delta_body(body: dict, offset: int) -> dict:
    """Rebase a planned delta body's relative seqs/ids by ``offset``.

    Pure and deterministic: ``seq += offset``, node references move to
    ``DELTA_NODE_BASE + offset + rel``, and fresh-article titles gain the
    absolute seq so a second loadgen run against the same server never
    collides on title.  The runner reads ``offset`` from the server's
    live ``delta_seq`` (``/healthz``) at send time.
    """
    rebased = []
    for delta in body["deltas"]:
        moved = dict(delta)
        moved["seq"] = delta["seq"] + offset
        for ref in ("node_id", "source", "target"):
            if ref in moved:
                moved[ref] = DELTA_NODE_BASE + offset + delta[ref]
        if "title" in moved:
            moved["title"] = f"{delta['title']} at {offset + delta['seq']}"
        rebased.append(moved)
    return {"deltas": rebased}
