"""The SLO report: per-shape quantiles, error/shed/cache rates, cross-check.

Client-side timings alone can lie (they include connection setup and
client-side scheduling jitter); server histograms alone can lie too
(they only see admitted requests).  The report therefore carries both:
per-shape p50/p99/p999 from the client's own stopwatch *and* the
server's ``repro_request_seconds`` quantiles computed from ``/metrics``
bucket *deltas* (after minus before), so the numbers describe exactly
this run even on a long-lived server.

``merge_into_bench`` writes the report under the ``loadgen_slo`` key of
``BENCH_service.json`` while preserving every key owned by other bench
modules — the same courtesy ``benchmarks/test_service_latency.py``
extends back.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.metrics import histogram_quantile, parse_prometheus_text

__all__ = ["build_report", "merge_into_bench", "percentile", "server_quantiles"]

_QUANTILES = (("p50_ms", 0.50), ("p99_ms", 0.99), ("p999_ms", 0.999))


def percentile(values, quantile: float) -> float:
    """Linear-interpolation percentile of ``values`` (0 for empty input)."""
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = quantile * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


def _histogram_delta(before: dict, after: dict, name: str) -> list[tuple[float, float]]:
    """Cumulative ``(upper_bound, count_delta)`` pairs for one histogram,
    summed across all label sets (server paths) of ``name``."""
    bounds: dict[float, float] = {}
    for (sample, labels), value in after["samples"].items():
        if sample != f"{name}_bucket":
            continue
        le = dict(labels).get("le")
        if le is None:
            continue
        bound = math.inf if le == "+Inf" else float(le)
        previous = before["samples"].get((sample, labels), 0.0)
        # Exposed bucket counts are already cumulative, and subtracting
        # two cumulative readings stays cumulative — sum across label
        # sets per bound, but never re-accumulate across bounds.
        bounds[bound] = bounds.get(bound, 0.0) + (value - previous)
    return sorted(bounds.items())


def _counter_delta(before: dict, after: dict, name: str) -> dict[frozenset, float]:
    deltas: dict[frozenset, float] = {}
    for (sample, labels), value in after["samples"].items():
        if sample != name:
            continue
        delta = value - before["samples"].get((sample, labels), 0.0)
        if delta:
            deltas[labels] = delta
    return deltas


def server_quantiles(metrics_before: str, metrics_after: str) -> dict:
    """Server-side view of the run from ``/metrics`` bucket deltas.

    Quantiles of ``repro_request_seconds`` (all router paths folded
    together — the client report carries the per-shape split), plus the
    run's cache hit rate and shed counts by reason.
    """
    before = parse_prometheus_text(metrics_before)
    after = parse_prometheus_text(metrics_after)
    buckets = _histogram_delta(before, after, "repro_request_seconds")
    out: dict = {}
    for key, quantile in _QUANTILES:
        out[key] = round(histogram_quantile(buckets, quantile) * 1000.0, 3)
    lookups = _counter_delta(before, after, "repro_cache_lookups_total")
    hits = sum(v for labels, v in lookups.items()
               if dict(labels).get("result") == "hit")
    total = sum(lookups.values())
    out["cache_hit_rate"] = round(hits / total, 4) if total else 0.0
    shed = _counter_delta(before, after, "repro_shed_total")
    out["shed_by_reason"] = {
        dict(labels)["reason"]: int(v) for labels, v in sorted(
            shed.items(), key=lambda item: dict(item[0])["reason"]
        )
    }
    out["shed_total"] = int(sum(shed.values()))
    return out


def _summarize_shape(outcomes) -> dict:
    latencies_ok = [o.latency_ms for o in outcomes if o.ok]
    errors = sum(1 for o in outcomes if not o.ok and not o.shed)
    shed = sum(1 for o in outcomes if o.shed)
    total = len(outcomes)
    summary = {
        "requests": total,
        "completed": len(latencies_ok),
        "errors": errors,
        "error_rate": round(errors / total, 4) if total else 0.0,
        "shed": shed,
        "shed_rate": round(shed / total, 4) if total else 0.0,
    }
    for key, quantile in _QUANTILES:
        summary[key] = round(percentile(latencies_ok, quantile), 3)
    return summary


def build_report(
    result,
    *,
    seed: int,
    rate: float,
    stream_sha256: str,
    zipf_s: float,
) -> dict:
    """Assemble the ``loadgen_slo`` section from one replay."""
    shapes = {
        name: _summarize_shape(outcomes)
        for name, outcomes in sorted(result.outcomes.items())
    }
    return {
        "seed": seed,
        "zipf_s": zipf_s,
        "target_rate_per_shape": rate,
        "achieved_rate_total": round(result.achieved_rate, 2),
        "wall_s": round(result.wall_s, 3),
        "stream_sha256": stream_sha256,
        "shapes": shapes,
        "server": server_quantiles(result.metrics_before, result.metrics_after),
    }


def merge_into_bench(path, report: dict) -> dict:
    """Write ``report`` under ``loadgen_slo`` in ``BENCH_service.json``,
    preserving whatever other bench modules have already written."""
    path = Path(path)
    payload: dict = {}
    if path.exists():
        payload = json.loads(path.read_text())
    payload["loadgen_slo"] = report
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload
