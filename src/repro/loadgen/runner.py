"""Closed-loop paced replay of planned shapes against a live server.

All requested shapes run *concurrently* — that is the point: the flood
is only a flood if interactive queries are in flight while it happens.
Each shape gets its own small worker pool; workers take the next
planned request, sleep until its scheduled start (``i / rate`` after
launch), send it, and wait for the response before taking another.
That closed loop is the feedback: when the server slows down, workers
fall behind schedule and the *achieved* rate drops instead of requests
piling up without bound inside the client.

Latency is measured client-side per request; ``/metrics`` is captured
before and after the run so the report can cross-check those timings
against the server's own histograms (bucket deltas) and compute cache
hit and shed rates for exactly this run.

Stdlib only (``http.client`` + threads) — the generator must not drag
dependencies into the repo.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field

from repro.loadgen.generator import WorkloadRequest, offset_delta_body

__all__ = [
    "LoadgenResult",
    "RequestOutcome",
    "fetch_healthz",
    "fetch_metrics",
    "run_plans",
]

# The delta trickle is planned at count/8 (see plan_workload); pacing it
# at rate/8 keeps every shape finishing at roughly the same time.
_TRICKLE_DIVISOR = 8


@dataclass(frozen=True)
class RequestOutcome:
    """One request's fate as the client saw it."""

    shape: str
    index: int
    status: int  # 0 = transport failure before any status line
    latency_ms: float
    error_code: str | None = None  # envelope code for >= 400 responses
    retry_after_s: float | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400

    @property
    def shed(self) -> bool:
        return self.status == 429


@dataclass
class LoadgenResult:
    """Everything the report needs about one replay."""

    outcomes: dict[str, list[RequestOutcome]] = field(default_factory=dict)
    metrics_before: str = ""
    metrics_after: str = ""
    wall_s: float = 0.0

    @property
    def total_requests(self) -> int:
        return sum(len(v) for v in self.outcomes.values())

    @property
    def achieved_rate(self) -> float:
        return self.total_requests / self.wall_s if self.wall_s > 0 else 0.0


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None,
    *,
    client: str = "",
    timeout_s: float = 30.0,
) -> tuple[int, dict | str, dict]:
    """One HTTP exchange on a fresh connection; returns (status, payload,
    headers).  JSON bodies are decoded; ``/metrics`` text comes back raw."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        headers = {"Connection": "close"}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if client:
            headers["X-Client-Id"] = client
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        response_headers = {k.lower(): v for k, v in response.getheaders()}
        text = raw.decode("utf-8", "replace")
        if response_headers.get("content-type", "").startswith("application/json"):
            return response.status, json.loads(text), response_headers
        return response.status, text, response_headers
    finally:
        conn.close()


def fetch_metrics(host: str, port: int, *, timeout_s: float = 30.0) -> str:
    status, text, _ = _request(host, port, "GET", "/metrics", None,
                               timeout_s=timeout_s)
    if status != 200 or not isinstance(text, str):
        raise RuntimeError(f"GET /metrics failed with status {status}")
    return text


def fetch_healthz(host: str, port: int, *, timeout_s: float = 30.0) -> dict:
    status, payload, _ = _request(host, port, "GET", "/healthz", None,
                                  timeout_s=timeout_s)
    if status != 200 or not isinstance(payload, dict):
        raise RuntimeError(f"GET /healthz failed with status {status}")
    return payload


class _ShapeRun:
    """Shared state for one shape's worker pool: cursor + outcomes."""

    def __init__(self, plan: list[WorkloadRequest], rate: float) -> None:
        self.plan = plan
        self.rate = rate
        self.cursor = 0
        self.lock = threading.Lock()
        self.outcomes: list[RequestOutcome] = []

    def next_index(self) -> int | None:
        with self.lock:
            if self.cursor >= len(self.plan):
                return None
            index = self.cursor
            self.cursor += 1
            return index

    def record(self, outcome: RequestOutcome) -> None:
        with self.lock:
            self.outcomes.append(outcome)


def _worker(
    host: str,
    port: int,
    run: _ShapeRun,
    t0: float,
    timeout_s: float,
    delta_offset: int,
) -> None:
    while True:
        index = run.next_index()
        if index is None:
            return
        planned = run.plan[index]
        # Pacing: request i is due i/rate seconds after launch.  A busy
        # server pushes workers past their due times — the loop stays
        # closed and the achieved rate degrades instead of queueing.
        due = t0 + index / run.rate
        delay = due - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        body = planned.body
        if planned.path == "/admin/apply_delta":
            body = offset_delta_body(body, delta_offset)
        started = time.perf_counter()
        try:
            status, payload, headers = _request(
                host, port, planned.method, planned.path, body,
                client=planned.client, timeout_s=timeout_s,
            )
        except (OSError, http.client.HTTPException):
            run.record(RequestOutcome(
                shape=planned.shape, index=index, status=0,
                latency_ms=(time.perf_counter() - started) * 1000.0,
                error_code="transport",
            ))
            continue
        latency_ms = (time.perf_counter() - started) * 1000.0
        error_code = None
        retry_after = None
        if status >= 400 and isinstance(payload, dict):
            error = payload.get("error", {})
            if isinstance(error, dict):
                error_code = error.get("code")
                raw_retry = headers.get("retry-after")
                if raw_retry is not None:
                    try:
                        retry_after = float(raw_retry)
                    except ValueError:
                        retry_after = None
        run.record(RequestOutcome(
            shape=planned.shape, index=index, status=status,
            latency_ms=latency_ms, error_code=error_code,
            retry_after_s=retry_after,
        ))


def run_plans(
    host: str,
    port: int,
    plans: dict[str, list[WorkloadRequest]],
    *,
    rate: float,
    concurrency: int = 4,
    timeout_s: float = 30.0,
) -> LoadgenResult:
    """Replay every shape concurrently at ``rate`` requests/s each.

    The delta trickle runs on a single worker (batches carry contiguous
    sequence numbers and must apply in order) at ``rate / 8``; its
    sequence base is read from the live server's ``delta_seq`` once,
    just before launch.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    delta_offset = 0
    if any(name == "delta_trickle" for name in plans):
        delta_offset = int(fetch_healthz(
            host, port, timeout_s=timeout_s
        ).get("delta_seq", 0))

    result = LoadgenResult(metrics_before=fetch_metrics(
        host, port, timeout_s=timeout_s
    ))
    runs: dict[str, _ShapeRun] = {}
    threads: list[threading.Thread] = []
    t0 = time.monotonic()
    wall_started = time.perf_counter()
    for name, plan in plans.items():
        if not plan:
            continue
        trickle = name == "delta_trickle"
        run = _ShapeRun(plan, rate / _TRICKLE_DIVISOR if trickle else rate)
        runs[name] = run
        workers = 1 if trickle else concurrency
        for worker_id in range(workers):
            thread = threading.Thread(
                target=_worker,
                args=(host, port, run, t0, timeout_s, delta_offset),
                name=f"loadgen-{name}-{worker_id}",
                daemon=True,
            )
            threads.append(thread)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_s = time.perf_counter() - wall_started
    result.metrics_after = fetch_metrics(host, port, timeout_s=timeout_s)
    for name, run in runs.items():
        result.outcomes[name] = sorted(run.outcomes, key=lambda o: o.index)
    return result
