"""Traffic shapes: planned request lists with distinct popularity laws.

A *shape* is a named recipe turning a topic pool into a concrete list
of :class:`~repro.loadgen.generator.WorkloadRequest`.  Each shape plans
from its own rng (``seeded_rng(seed, name)``), so adding or dropping a
shape never perturbs another shape's stream — the per-shape streams are
independently byte-stable.

Shapes (``docs/loadgen.md`` shows the knobs and intended use):

* ``interactive`` — Zipf(s)-skewed single queries over a shuffled pool,
  a handful of polite clients.  The latency-SLO shape;
* ``flash_crowd`` — most traffic piles onto one hot entity (cache-hit
  heaven for the winner, misses for the background tail);
* ``batch_mix`` — interactive queries interleaved with
  ``/batch_expand`` batches, the throughput-vs-latency tension;
* ``flood`` — one greedy client firing cache-missing garbage, the
  adversarial overload that admission control must absorb;
* ``delta_trickle`` — a slow stream of ``/admin/apply_delta`` writes so
  invalidation runs under read pressure, not just in unit tests.
"""

from __future__ import annotations

import bisect
import random

from repro.loadgen.generator import QueryGenerator, WorkloadRequest, seeded_rng

__all__ = ["SHAPE_NAMES", "plan_shape", "plan_workload", "zipf_indices"]

SHAPE_NAMES = (
    "interactive",
    "flash_crowd",
    "batch_mix",
    "flood",
    "delta_trickle",
)

# Zipf support cap: popularity laws need enough ranks to show a tail but
# sampling cost must stay flat for huge vocabularies.
_MAX_RANKED_TOPICS = 512


def zipf_indices(
    rng: random.Random, n_items: int, s: float, count: int
) -> list[int]:
    """``count`` draws from a Zipf(s) law over ranks ``0..n_items-1``.

    Cumulative-weight inversion (weight of rank r is ``1/(r+1)^s``) via
    bisect — exact, no rejection loop, deterministic per rng stream.
    """
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    if s < 0:
        raise ValueError("zipf exponent s must be >= 0")
    cumulative: list[float] = []
    total = 0.0
    for rank in range(n_items):
        total += 1.0 / float(rank + 1) ** s
        cumulative.append(total)
    return [
        bisect.bisect_left(cumulative, rng.random() * total)
        for _ in range(count)
    ]


def _ranked_pool(rng: random.Random, pool: list[str]) -> list[str]:
    """Shuffle a copy so popularity ranks differ per seed and shape."""
    ranked = list(pool)
    rng.shuffle(ranked)
    return ranked[:_MAX_RANKED_TOPICS]


def plan_shape(
    name: str,
    *,
    seed: int,
    pool: list[str],
    count: int,
    zipf_s: float = 1.1,
    top_k: int = 10,
) -> list[WorkloadRequest]:
    """Plan ``count`` requests of shape ``name`` (see module docstring)."""
    if name not in SHAPE_NAMES:
        raise ValueError(
            f"unknown shape {name!r} (expected one of {SHAPE_NAMES})"
        )
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = seeded_rng(seed, name)
    generator = QueryGenerator(rng, pool)
    ranked = _ranked_pool(rng, pool)
    requests: list[WorkloadRequest] = []

    def add(path: str, body: dict, client: str) -> None:
        requests.append(
            WorkloadRequest(
                shape=name,
                index=len(requests),
                method="POST",
                path=path,
                client=client,
                body=body,
            )
        )

    if name == "interactive":
        for rank in zipf_indices(rng, len(ranked), zipf_s, count):
            query = generator.query_for(ranked[rank])
            add(
                "/expand",
                {"query": query, "top_k": top_k},
                f"interactive-{len(requests) % 4}",
            )
    elif name == "flash_crowd":
        hot = ranked[0]
        ranks = zipf_indices(rng, len(ranked), zipf_s, count)
        for rank in ranks:
            # 70% of the crowd hammers the hot entity regardless of rank.
            topic = hot if rng.random() < 0.7 else ranked[rank]
            add(
                "/expand",
                {"query": generator.query_for(topic), "top_k": top_k},
                f"crowd-{len(requests) % 8}",
            )
    elif name == "batch_mix":
        ranks = zipf_indices(rng, len(ranked), zipf_s, count)
        for i, rank in enumerate(ranks):
            if i % 4 == 3:
                size = rng.randint(3, 8)
                batch_ranks = zipf_indices(rng, len(ranked), zipf_s, size)
                add(
                    "/batch_expand",
                    {
                        "queries": [
                            generator.query_for(ranked[r]) for r in batch_ranks
                        ],
                        "top_k": top_k,
                    },
                    "batch-0",
                )
            else:
                add(
                    "/search",
                    {"query": generator.query_for(ranked[rank]), "top_k": top_k},
                    f"interactive-{len(requests) % 4}",
                )
    elif name == "flood":
        for _ in range(count):
            add(
                "/search",
                {"query": generator.garbage_query(), "top_k": top_k},
                "flood-0",
            )
    else:  # delta_trickle
        rel_seq = 1
        tag = f"s{seed}"
        for _ in range(count):
            body, rel_seq = generator.delta_batch(rel_seq, tag)
            add("/admin/apply_delta", body, "delta-0")
    return requests


def plan_workload(
    *,
    seed: int,
    pool: list[str],
    shapes,
    count: int,
    zipf_s: float = 1.1,
    top_k: int = 10,
) -> dict[str, list[WorkloadRequest]]:
    """Plan every requested shape; ``count`` requests each.

    The delta trickle is intentionally sparser than read shapes (one
    write per ~8 reads) — it is a trickle, not a write benchmark.
    """
    plans: dict[str, list[WorkloadRequest]] = {}
    for name in shapes:
        shape_count = max(1, count // 8) if name == "delta_trickle" else count
        plans[name] = plan_shape(
            name,
            seed=seed,
            pool=pool,
            count=shape_count,
            zipf_s=zipf_s,
            top_k=top_k,
        )
    return plans
