"""Observability plane for the serving stack (no external dependencies).

Four pieces, layered so the hot path stays cheap:

* :mod:`repro.obs.trace` — request-scoped :class:`Trace` spans riding a
  context variable through router, workers and executor threads
  (:func:`carry_context` is the thread-pool boundary glue);
* :mod:`repro.obs.metrics` — Prometheus-style counters, gauges and
  fixed-bucket histograms with a text-exposition renderer and the
  matching round-trip parser;
* :mod:`repro.obs.serving` — :class:`ServingMetrics`, the named metric
  families of the serving stack, folded from finished traces once per
  request;
* :mod:`repro.obs.logs` — :class:`RequestLog`, structured JSON request
  logs with deterministic slow-query sampling (threshold + bounded
  slowest-K reservoir);
* :mod:`repro.obs.dashboard` — the ``repro top`` terminal dashboard
  over ``GET /stats`` + ``GET /metrics``.

The operator-facing contract (metric names, label sets, trace stages,
scrape guidance) lives in ``docs/observability.md``.
"""

from repro.obs.logs import RequestLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus_text,
)
from repro.obs.serving import ServingMetrics
from repro.obs.trace import (
    Span,
    Trace,
    annotate,
    carry_context,
    current_trace,
    span,
    start_trace,
)

__all__ = [
    "Span",
    "Trace",
    "annotate",
    "carry_context",
    "current_trace",
    "span",
    "start_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "histogram_quantile",
    "parse_prometheus_text",
    "ServingMetrics",
    "RequestLog",
]
