"""``repro top`` — a terminal dashboard over ``/stats`` + ``/metrics``.

Polls a running ``repro serve --http`` endpoint and renders one frame
per interval: request totals and interval QPS, error counters, cache
hit rates, a per-shard table (queries, inflight, hit rate), stage
latency quantiles reconstructed from the Prometheus histograms, and the
slowest sampled queries.  ``--once`` renders a single frame without
clearing the screen — the mode CI smoke uses.

Rendering is a pure function of the fetched payloads
(:func:`render_dashboard`), so tests feed canned ``/stats`` JSON and
``/metrics`` text and assert on the frame; only :func:`run_top` touches
the network (stdlib ``urllib`` — the no-new-dependencies rule holds
here too).
"""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request

from repro.obs.metrics import histogram_quantile, parse_prometheus_text

__all__ = ["render_dashboard", "run_top", "fetch_frame"]

_STAGE_ORDER = ("link", "expand", "cycle_mine", "rank", "merge")


def fetch_frame(base_url: str, timeout: float = 10.0) -> tuple[dict, str]:
    """One poll: (``/stats`` JSON, ``/metrics`` text)."""
    base = base_url.rstrip("/")
    with urllib.request.urlopen(f"{base}/stats", timeout=timeout) as response:
        stats = json.load(response)
    with urllib.request.urlopen(f"{base}/metrics", timeout=timeout) as response:
        metrics_text = response.read().decode("utf-8")
    return stats, metrics_text


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:8.2f}"


def _engine_counts(metrics_text: str) -> list[tuple[str, int]]:
    """(engine, runs) pairs from ``repro_cycle_mine_total``, sorted."""
    parsed = parse_prometheus_text(metrics_text)
    counts: dict[str, int] = {}
    for (name, labelset), value in parsed["samples"].items():
        if name == "repro_cycle_mine_total":
            engine = dict(labelset).get("engine", "?")
            counts[engine] = counts.get(engine, 0) + int(value)
    return sorted(counts.items())


def _stage_rows(metrics_text: str) -> list[tuple[str, int, float, float, float]]:
    """(stage, count, p50_s, p95_s, p99_s) rows from the exposition text."""
    parsed = parse_prometheus_text(metrics_text)
    samples = parsed["samples"]
    by_stage: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, int] = {}
    for (name, labelset), value in samples.items():
        labels = dict(labelset)
        if name == "repro_stage_seconds_bucket":
            bound = labels.get("le", "")
            upper = math.inf if bound == "+Inf" else float(bound)
            by_stage.setdefault(labels["stage"], []).append((upper, value))
        elif name == "repro_stage_seconds_count":
            counts[labels["stage"]] = int(value)
    known = [stage for stage in _STAGE_ORDER if stage in by_stage]
    known += sorted(set(by_stage) - set(_STAGE_ORDER))
    return [
        (
            stage,
            counts.get(stage, 0),
            histogram_quantile(by_stage[stage], 0.50),
            histogram_quantile(by_stage[stage], 0.95),
            histogram_quantile(by_stage[stage], 0.99),
        )
        for stage in known
    ]


def render_dashboard(
    stats: dict,
    metrics_text: str = "",
    *,
    previous: dict | None = None,
    interval_s: float | None = None,
    now: float | None = None,
) -> str:
    """One dashboard frame as plain text.

    ``previous``/``interval_s`` (the prior poll's ``/stats`` and the
    seconds between polls) turn monotonic totals into interval rates;
    without them the rate column reads ``-``.
    """
    lines: list[str] = []
    http = stats.get("http", {})
    uptime = stats.get("uptime_s")
    header = f"repro top — shards={stats.get('shards', '?')}"
    generation = stats.get("generation")
    if generation is not None:
        header += f"  gen:{generation}"
        delta_seq = stats.get("delta_seq", 0)
        if delta_seq:
            header += f"+{delta_seq}"
    if uptime is not None:
        header += f"  uptime={uptime:.0f}s"
    if now is not None:
        header += f"  at={now:.0f}"
    lines.append(header)
    lines.append("=" * len(header))

    total = stats.get("requests_total", 0)
    errors = stats.get("errors", 0)
    qps = "-"
    if previous is not None and interval_s:
        delta = total - previous.get("requests_total", 0)
        qps = f"{delta / interval_s:.1f}"
    lines.append(
        f"router  requests={total}  queries={stats.get('queries', 0)}  "
        f"batches={stats.get('batches', 0)}  errors={errors}  qps={qps}"
    )
    retries = stats.get("retries_total", 0)
    hedges = stats.get("hedges_total", 0)
    hedge_wins = stats.get("hedge_wins_total", 0)
    restarts = stats.get("worker_restarts", 0)
    if retries or hedges or hedge_wins or restarts:
        lines.append(
            f"resil.  retries={retries}  hedges={hedges} "
            f"(wins={hedge_wins})  worker_restarts={restarts}"
        )
    if http:
        by_status = http.get("errors_by_status", {})
        status_text = " ".join(
            f"{status}:{count}" for status, count in sorted(by_status.items())
        ) or "none"
        lines.append(
            f"http    requests={http.get('requests_total', 0)}  "
            f"errors={http.get('errors', 0)} ({status_text})  "
            f"coalesced={http.get('coalesced_requests', 0)}"
        )
        admission = http.get("admission")
        if admission:
            by_reason = admission.get("shed_by_reason", {})
            reason_text = " ".join(
                f"{reason}:{count}"
                for reason, count in sorted(by_reason.items())
            ) or "none"
            limit = admission.get("queue_limit")
            lines.append(
                f"shed.   queue={admission.get('queue_depth', 0)}"
                f"/{'∞' if limit is None else limit} "
                f"(peak={admission.get('peak_queue_depth', 0)})  "
                f"shed={admission.get('shed_total', 0)} ({reason_text})  "
                f"clients={admission.get('clients_tracked', 0)}"
            )

    for cache in ("link_cache", "expansion_cache"):
        payload = stats.get(cache)
        if not payload:
            continue
        rate = payload.get("hit_rate", 0.0)
        lines.append(
            f"{cache:<16} [{_bar(rate)}] {rate * 100:5.1f}% hit  "
            f"{payload.get('size', 0)}/{payload.get('capacity', payload.get('max_size', 0))} entries"
        )

    per_shard = stats.get("per_shard", [])
    if per_shard:
        hit_rates = stats.get("per_shard_hit_rates", [0.0] * len(per_shard))
        inflight = stats.get("per_shard_inflight", [0] * len(per_shard))
        lines.append("")
        lines.append("shard  queries  inflight  waits  hit_rate")
        for shard_id, shard in enumerate(per_shard):
            rate = hit_rates[shard_id] if shard_id < len(hit_rates) else 0.0
            lines.append(
                f"{shard_id:>5}  {shard.get('queries', 0):>7}  "
                f"{(inflight[shard_id] if shard_id < len(inflight) else 0):>8}  "
                f"{shard.get('inflight_waits', 0):>5}  "
                f"[{_bar(rate, 12)}] {rate * 100:5.1f}%"
            )

    if metrics_text:
        rows = _stage_rows(metrics_text)
        if rows:
            lines.append("")
            lines.append("stage        count   p50_ms   p95_ms   p99_ms")
            for stage, count, p50, p95, p99 in rows:
                lines.append(
                    f"{stage:<11} {count:>6} {_fmt_ms(p50)} {_fmt_ms(p95)} "
                    f"{_fmt_ms(p99)}"
                )
        engines = _engine_counts(metrics_text)
        if engines:
            lines.append(
                "cycle_mine engines: "
                + "  ".join(f"{engine}={count}" for engine, count in engines)
            )

    slow = http.get("slow_queries") or stats.get("slow_queries")
    if slow:
        entries = slow.get("entries", [])
        lines.append("")
        lines.append(
            f"slow queries (>= {slow.get('threshold_ms', 0):.0f} ms): "
            f"{slow.get('slow', 0)}/{slow.get('requests', 0)} sampled"
        )
        for entry in entries[:5]:
            query = entry.get("query", "")
            lines.append(
                f"  {entry.get('latency_ms', 0):8.1f} ms  "
                f"{entry.get('endpoint', '?'):<14} {query[:48]!r}"
            )
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    out=None,
) -> int:
    """Poll-and-render loop behind ``repro top``; returns an exit code."""
    import sys

    write = (out or sys.stdout).write
    previous: dict | None = None
    rounds = 0
    while True:
        try:
            stats, metrics_text = fetch_frame(url)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
            write(f"repro top: cannot reach {url}: {error}\n")
            return 1
        frame = render_dashboard(
            stats,
            metrics_text,
            previous=previous,
            interval_s=interval_s if previous is not None else None,
            now=time.time() if not once else None,
        )
        if not once:
            write("\x1b[2J\x1b[H")  # clear screen, home cursor
        write(frame)
        if hasattr(out or sys.stdout, "flush"):
            (out or sys.stdout).flush()
        rounds += 1
        if once or (iterations is not None and rounds >= iterations):
            return 0
        previous = stats
        time.sleep(interval_s)
