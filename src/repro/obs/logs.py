"""Structured JSON request logs with deterministic slow-query sampling.

:class:`RequestLog` sees every served request.  Fast requests only bump
counters; a request at or above ``slow_ms`` is *sampled*: serialised as
one JSON line to the sink (stderr under ``repro serve``) and retained
in a bounded in-memory reservoir that ``/stats`` and ``repro top``
read back.

The sampling rule is deterministic — no randomness anywhere:

* **threshold** — a request is slow iff ``latency_ms >= slow_ms``;
* **reservoir** — of the slow requests, the ``capacity`` slowest are
  retained, ties broken toward the earlier request (by sequence
  number).  Feeding the same request stream twice yields the same
  reservoir, which is what makes the sampler testable and log-based
  repro honest.

The reservoir is a min-heap keyed by ``(latency_ms, -seq)``: the root
is the entry that the next slower request will displace.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
from pathlib import Path

__all__ = ["RequestLog", "RECENT_QUERIES_FILENAME"]

# Recent-query retention defaults: how many distinct queries the warm-up
# ring keeps and how old an entry may grow before age-out drops it.
DEFAULT_RECENT_CAPACITY = 256
DEFAULT_RECENT_MAX_AGE_S = 900.0

# On-disk form of the recency set, written next to the snapshot manifest
# (the snapshot root survives generation compaction, so a restart warms
# from the queries the *previous* process was serving).
RECENT_QUERIES_FILENAME = "recent_queries.json"
_RECENT_FORMAT_VERSION = 1


class RequestLog:
    """Thread-safe request accounting + slow-query reservoir.

    Parameters
    ----------
    slow_ms:
        Threshold at and above which a request counts (and logs) as
        slow.
    capacity:
        Maximum reservoir entries retained (the slowest win).
    sink:
        Optional ``callable(str)`` receiving one compact JSON line per
        slow request, at record time (e.g. ``sys.stderr.write``).
        Reservoir eviction never retracts an emitted line — the sink is
        a log, the reservoir is a summary.
    """

    def __init__(
        self,
        *,
        slow_ms: float = 100.0,
        capacity: int = 32,
        sink=None,
        recent_capacity: int = DEFAULT_RECENT_CAPACITY,
        recent_max_age_s: float = DEFAULT_RECENT_MAX_AGE_S,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        if slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        if recent_capacity < 1:
            raise ValueError("recent_capacity must be >= 1")
        if recent_max_age_s <= 0:
            raise ValueError("recent_max_age_s must be > 0")
        self.slow_ms = float(slow_ms)
        self.capacity = capacity
        self.recent_capacity = recent_capacity
        self.recent_max_age_s = float(recent_max_age_s)
        self._clock = clock
        self._sink = sink
        self._lock = threading.Lock()
        self._seq = 0
        self._slow = 0
        # heap of (latency_ms, -seq, entry): root = first to displace
        self._reservoir: list[tuple[float, int, dict]] = []
        # Warm-up ring: query text -> last-seen clock reading, in
        # insertion order (re-seeing a query moves it to the back).
        # Bounded by recent_capacity; reads age out stale entries.
        self._recent: dict[str, float] = {}

    def record(
        self,
        *,
        endpoint: str,
        latency_ms: float,
        status: int | None = None,
        query: str | None = None,
        trace=None,
        trace_id: str | None = None,
        stages: dict | None = None,
    ) -> bool:
        """Account one request; returns whether it was sampled as slow.

        ``trace`` (a :class:`repro.obs.trace.Trace`) contributes the
        trace id and per-stage totals to the logged entry, so a slow
        line already says *which stage* was slow.  Callers holding only
        a serialised response (the HTTP front end) pass ``trace_id`` /
        ``stages`` directly instead.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
        if query is not None and (status is None or status < 400):
            self._note_recent(query)
        if latency_ms < self.slow_ms:
            return False
        entry: dict = {
            "event": "slow_query",
            "seq": seq,
            "endpoint": endpoint,
            "latency_ms": round(latency_ms, 3),
        }
        if status is not None:
            entry["status"] = status
        if query is not None:
            entry["query"] = query
        if trace is not None:
            trace_id = trace.trace_id
            stages = trace.stage_totals_ms()
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if stages:
            entry["stage_ms"] = dict(stages)
        with self._lock:
            self._slow += 1
            item = (latency_ms, -seq, entry)
            if len(self._reservoir) < self.capacity:
                heapq.heappush(self._reservoir, item)
            elif item > self._reservoir[0]:
                heapq.heapreplace(self._reservoir, item)
        if self._sink is not None:
            self._sink(json.dumps(entry, sort_keys=True) + "\n")
        return True

    def _note_recent(self, query: str) -> None:
        now = self._clock()
        with self._lock:
            # Re-insertion keeps the dict ordered by last-seen time.
            self._recent.pop(query, None)
            self._recent[query] = now
            while len(self._recent) > self.recent_capacity:
                del self._recent[next(iter(self._recent))]

    def recent_queries(self, *, max_age_s: float | None = None) -> list[str]:
        """Distinct queries served successfully within the age window,
        oldest first — the warm-up feed the update coordinator replays
        through a freshly swapped snapshot generation.  Entries past the
        window are dropped (age-out is enforced on read, so an idle
        service does not retain stale query text indefinitely)."""
        age = self.recent_max_age_s if max_age_s is None else float(max_age_s)
        horizon = self._clock() - age
        with self._lock:
            for query, seen in list(self._recent.items()):
                if seen < horizon:
                    del self._recent[query]
                else:
                    break  # ordered by last-seen: the rest are fresh
            return list(self._recent)

    # ------------------------------------------------------------------
    # Recency persistence (the cold-start warm-up set, docs/operations.md)
    # ------------------------------------------------------------------

    def seed_recent(self, queries) -> int:
        """Pre-populate the warm-up ring (oldest first), as if each query
        had just been served.  Returns how many entries the ring holds.
        Used at startup to restore a persisted recency set; capacity
        still applies, so an oversized file cannot blow up memory."""
        for query in queries:
            if isinstance(query, str) and query:
                self._note_recent(query)
        with self._lock:
            return len(self._recent)

    def save_recent(self, directory) -> Path:
        """Persist the current recency set (oldest first) to
        ``directory/recent_queries.json`` and return the path.

        The write is atomic (tmp + rename) so a crash mid-save leaves
        the previous file intact.  Ages are *not* persisted — monotonic
        clocks do not survive a restart — so a loaded set counts as
        freshly seen, which is the right bias for warm-up."""
        directory = Path(directory)
        path = directory / RECENT_QUERIES_FILENAME
        payload = {
            "version": _RECENT_FORMAT_VERSION,
            "queries": self.recent_queries(),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    def load_recent(self, directory) -> int:
        """Restore a persisted recency set; returns entries loaded.

        Missing or malformed files load nothing (0) — cold starts with
        no history are normal, and a corrupt warm-up file must never
        stop a server from coming up."""
        path = Path(directory) / RECENT_QUERIES_FILENAME
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return 0
        queries = payload.get("queries") if isinstance(payload, dict) else None
        if not isinstance(queries, list):
            return 0
        return self.seed_recent(queries)

    @property
    def requests(self) -> int:
        with self._lock:
            return self._seq

    @property
    def slow(self) -> int:
        with self._lock:
            return self._slow

    def entries(self) -> list[dict]:
        """Reservoir contents, slowest first (earlier request wins ties)."""
        with self._lock:
            ordered = sorted(self._reservoir, key=lambda item: (-item[0], -item[1]))
            return [dict(entry) for _, _, entry in ordered]

    def snapshot(self) -> dict:
        """JSON-ready summary for ``/stats`` and the dashboard."""
        with self._lock:
            requests, slow = self._seq, self._slow
        return {
            "threshold_ms": self.slow_ms,
            "requests": requests,
            "slow": slow,
            "reservoir_capacity": self.capacity,
            "entries": self.entries(),
        }

    def __repr__(self) -> str:
        return (
            f"RequestLog(slow_ms={self.slow_ms}, requests={self.requests}, "
            f"slow={self.slow})"
        )
