"""Dependency-free Prometheus-style metrics.

Three instrument kinds — :class:`Counter` (monotonic), :class:`Gauge`
(set to the current value at observation or scrape time) and
:class:`Histogram` (fixed cumulative buckets plus ``_sum``/``_count``)
— grouped in a :class:`MetricsRegistry` that renders the standard text
exposition format (``text/plain; version=0.0.4``) for ``GET /metrics``.

Labels are declared per family and passed by keyword per observation::

    registry = MetricsRegistry()
    stage = registry.histogram(
        "repro_stage_seconds", "Per-stage latency", labelnames=("stage",)
    )
    stage.observe(0.0123, stage="link")

Everything is lock-guarded per family: shard threads observe
concurrently while the event loop renders a scrape.  There is no global
default registry — each router owns one, so tests and multiple servers
in one process never share counters.

:func:`parse_prometheus_text` is the matching round-trip parser.  It is
used by the test suite and ``tools/http_smoke.py`` to validate that the
renderer emits well-formed exposition, and by the ``repro top``
dashboard to read histograms back; it rejects malformed lines rather
than skipping them, so drift fails loudly.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "histogram_quantile",
]

# Seconds; spans the cached tier (~1 ms) through slow cold requests.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Canonical sample value: integers stay integral, floats use repr."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, bool):  # guard: True would render as "1" silently
        raise TypeError("metric values must be numbers, not bool")
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Family:
    """Shared machinery: label validation and the per-labelset table."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _render_labels(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def _header(self) -> list[str]:
        help_text = self.help_text.replace("\\", "\\\\").replace("\n", "\\n")
        return [
            f"# HELP {self.name} {help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Family):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{self._render_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class Gauge(_Family):
    """A value that can go up and down; ``set`` at observation time."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{self._render_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets  # per-bucket, not cumulative
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-bucket latency histogram (cumulative buckets on render).

    Observations land in the first bucket whose upper bound is >= the
    value; values above the last bound land only in ``+Inf``.  Bounds
    are validated strictly increasing at construction so bucket math
    can binary-search.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or bounds[-1] == math.inf:
            raise ValueError("buckets must be strictly increasing and finite")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        # binary search for the first bound >= value
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets) + 1  # + the +Inf bucket
                )
            series.bucket_counts[min(lo, len(self.buckets))] += 1
            series.total += value
            series.count += 1

    def snapshot(self, **labels) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count) for one series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return [0] * (len(self.buckets) + 1), 0.0, 0
            cumulative, running = [], 0
            for count in series.bucket_counts:
                running += count
                cumulative.append(running)
            return cumulative, series.total, series.count

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                series = self._series[key]
                running = 0
                for bound, count in zip(
                    (*self.buckets, math.inf), series.bucket_counts
                ):
                    running += count
                    le = "+Inf" if bound == math.inf else _format_value(bound)
                    labels = self._render_labels(key, f'le="{le}"')
                    lines.append(f"{self.name}_bucket{labels} {running}")
                suffix = self._render_labels(key)
                lines.append(
                    f"{self.name}_sum{suffix} {_format_value(series.total)}"
                )
                lines.append(f"{self.name}_count{suffix} {running}")
        return lines


class MetricsRegistry:
    """A named collection of metric families with one text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family) or \
                        existing.labelnames != family.labelnames:
                    raise ValueError(
                        f"metric {family.name!r} re-registered with a "
                        "different type or label set"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames))

    def gauge(
        self, name: str, help_text: str, labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labelnames, buckets))

    def render(self) -> str:
        """The full exposition document, families in name order."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Round-trip parsing (tests, smoke tool, dashboard)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_prometheus_text(text: str) -> dict:
    """Parse an exposition document back into structured samples.

    Returns ``{"samples": {(name, labels_frozenset): value}, "types":
    {name: kind}, "helps": {name: text}}``.  Raises ``ValueError`` on
    any line that is neither a comment, blank, nor a well-formed
    sample — the point is validation, not tolerance.
    """
    samples: dict[tuple[str, frozenset], float] = {}
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group("name")] = _unescape(pair.group("value"))
                consumed = pair.end()
            if consumed != len(raw):
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        raw_value = match.group("value")
        value = math.inf if raw_value == "+Inf" else float(raw_value)
        samples[(match.group("name"), frozenset(labels.items()))] = value
    return {"samples": samples, "types": types, "helps": helps}


def histogram_quantile(
    buckets: list[tuple[float, float]], quantile: float
) -> float:
    """Estimate a quantile from cumulative ``(upper_bound, count)`` pairs.

    Linear interpolation inside the bucket holding the target rank —
    the same estimate ``histogram_quantile()`` makes in PromQL.  The
    +Inf bucket clamps to the highest finite bound.  Returns 0.0 for an
    empty histogram.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(buckets, key=lambda pair: pair[0])
    if not ordered or ordered[-1][1] <= 0:
        return 0.0
    total = ordered[-1][1]
    rank = quantile * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in ordered:
        if count >= rank:
            if bound == math.inf:
                return previous_bound
            span = count - previous_count
            if span <= 0:
                return bound
            fraction = (rank - previous_count) / span
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = (
            bound if bound != math.inf else previous_bound, count
        )
    return previous_bound
