"""The serving stack's metric families, aggregated from traces.

Instrumentation is split in two cheap halves: request code records
*spans* into its request-scoped :class:`~repro.obs.trace.Trace` (no
shared state touched on the hot path beyond one list append), and the
router folds each finished trace into the process-wide families here —
one :meth:`ServingMetrics.observe_request` call per request.

Families (all prefixed ``repro_``):

* ``repro_requests_total{path}`` / ``repro_errors_total{path}`` —
  monotonic, per entry point (``expand_query`` / ``batch_expand``);
* ``repro_request_seconds{path}`` — end-to-end latency histogram;
* ``repro_stage_seconds{stage}`` — per-stage busy-time histogram
  (``link``, ``expand``, ``cycle_mine``, ``rank``, ``merge``);
* ``repro_shard_stage_seconds{shard,stage}`` — the same, split by the
  shard that did the work (fan-out stages record one span per shard);
* ``repro_cache_lookups_total{cache,result}`` — link/expansion cache
  outcomes (``hit`` / ``miss``), derived from span labels;
* ``repro_cycle_mine_total{engine}`` — cycle-mining runs by engine
  (``kernels`` bitset hot path / ``dfs`` oracle), derived from the
  ``engine`` label on ``cycle_mine`` spans — the switch that proves
  which enumerator served a cold request;
* ``repro_delta_invalidations_total{cache}`` — cache entries evicted by
  applied graph deltas (live updates, ``docs/live_updates.md``),
  incremented by the :class:`~repro.updates.UpdateCoordinator`;
* ``repro_inflight_requests`` / ``repro_shard_inflight{shard}`` /
  ``repro_uptime_seconds`` / ``repro_snapshot_generation`` /
  ``repro_delta_seq`` — gauges refreshed from
  :class:`~repro.service.router.RouterStats` at scrape time by
  :meth:`update_from_stats`, not maintained continuously.

Metric names and label sets are part of the operator contract —
documented in ``docs/observability.md``; change the two together.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace

__all__ = ["ServingMetrics"]

# Span labels that map onto the cache-lookup counter: stage -> cache name.
_CACHE_STAGES = {"link": "link", "expand": "expansion"}


class ServingMetrics:
    """One router's metric families over one (typically private) registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.requests = self.registry.counter(
            "repro_requests_total",
            "Requests offered to the router, by entry point.",
            ("path",),
        )
        self.errors = self.registry.counter(
            "repro_errors_total",
            "Requests that raised, by entry point.",
            ("path",),
        )
        self.request_latency = self.registry.histogram(
            "repro_request_seconds",
            "End-to-end request latency in seconds.",
            ("path",),
        )
        self.stage_latency = self.registry.histogram(
            "repro_stage_seconds",
            "Per-stage busy time in seconds (fan-out stages sum shards).",
            ("stage",),
        )
        self.shard_stage_latency = self.registry.histogram(
            "repro_shard_stage_seconds",
            "Per-shard, per-stage busy time in seconds.",
            ("shard", "stage"),
        )
        self.cache_lookups = self.registry.counter(
            "repro_cache_lookups_total",
            "Cache lookups by cache tier and outcome.",
            ("cache", "result"),
        )
        self.cycle_mine = self.registry.counter(
            "repro_cycle_mine_total",
            "Cycle-mining runs by enumeration engine.",
            ("engine",),
        )
        self.delta_invalidations = self.registry.counter(
            "repro_delta_invalidations_total",
            "Cache entries evicted by applied graph deltas, by cache tier.",
            ("cache",),
        )
        self.snapshot_generation = self.registry.gauge(
            "repro_snapshot_generation",
            "Generation of the serving snapshot (advanced by compaction).",
        )
        self.delta_seq = self.registry.gauge(
            "repro_delta_seq",
            "Sequence number of the last applied delta (0 = pristine).",
        )
        self.inflight = self.registry.gauge(
            "repro_inflight_requests",
            "Requests currently inside the router.",
        )
        self.shard_inflight = self.registry.gauge(
            "repro_shard_inflight",
            "Expansions currently executing or queued on each shard worker.",
            ("shard",),
        )
        self.uptime = self.registry.gauge(
            "repro_uptime_seconds",
            "Seconds since the router was constructed.",
        )

    def observe_request(
        self, path: str, trace: Trace | None, latency_s: float,
        *, error: bool = False,
    ) -> None:
        """Fold one finished request (and its trace, if any) in."""
        self.requests.inc(path=path)
        if error:
            self.errors.inc(path=path)
        self.request_latency.observe(latency_s, path=path)
        if trace is None:
            return
        for span in trace.spans:
            seconds = span.duration_ms / 1000.0
            self.stage_latency.observe(seconds, stage=span.stage)
            if span.shard is not None:
                self.shard_stage_latency.observe(
                    seconds, shard=span.shard, stage=span.stage
                )
            cache = _CACHE_STAGES.get(span.stage)
            cached = span.labels.get("cached")
            if cache is not None and cached is not None:
                self.cache_lookups.inc(
                    cache=cache, result="hit" if cached else "miss"
                )
            if span.stage == "cycle_mine":
                engine = span.labels.get("engine")
                if engine is not None:
                    self.cycle_mine.inc(engine=engine)

    def update_from_stats(self, stats) -> None:
        """Refresh the scrape-time gauges from a :class:`RouterStats`."""
        self.uptime.set(round(stats.uptime_s, 3))
        self.snapshot_generation.set(getattr(stats, "generation", 1))
        self.delta_seq.set(getattr(stats, "delta_seq", 0))
        inflight = stats.requests_total - stats.queries - stats.errors
        self.inflight.set(max(0, inflight))
        for shard_id, value in enumerate(stats.per_shard_inflight):
            self.shard_inflight.set(value, shard=shard_id)

    def render(self) -> str:
        return self.registry.render()
