"""Request-scoped tracing for the serving stack.

A :class:`Trace` is a per-request recorder of *spans*: named, timed
stages of the serving pipeline (``link`` → ``expand`` → ``cycle_mine``
→ ``rank`` → ``merge``), each optionally labelled with the shard that
did the work and whether a cache answered it.  The active trace rides a
:mod:`contextvars` context variable, so instrumentation sites never
take a trace parameter — they call :func:`span` and record into
whatever trace the current request activated (or into nothing, cheaply,
when no trace is active).

Concurrency model:

* **asyncio** — tasks copy the ambient context at creation, so a trace
  activated before ``ensure_future`` is visible inside the task, and
  two concurrent requests each see only their own trace.
* **threads** — plain ``ThreadPoolExecutor.submit``/``map`` and
  ``loop.run_in_executor`` do *not* carry context into the worker
  thread.  Wrap the callable with :func:`carry_context` at the
  submission site; the shard fan-out paths in
  :class:`~repro.service.router.ShardRouter` and
  :class:`~repro.service.async_router.ExecutorShardAdapter` do exactly
  that, which is what makes per-shard spans land in the right request's
  trace.
* **span recording** is lock-guarded, because shard threads append
  concurrently into one request's trace.

Span semantics: serial stages (``link``, ``merge``) appear once per
request and sum to wall time; fan-out stages (``rank``, and ``expand``
under batching) may record one span *per shard*, so a stage total can
legitimately exceed request wall time — it is busy time, like CPU
seconds.  ``docs/observability.md`` documents the model.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar, copy_context
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Trace",
    "current_trace",
    "start_trace",
    "span",
    "annotate",
    "carry_context",
]

_current_trace: ContextVar["Trace | None"] = ContextVar(
    "repro_current_trace", default=None
)
_trace_ids = itertools.count(1)


@dataclass(slots=True)
class Span:
    """One completed stage timing inside a trace.

    ``start_ms`` is the offset from the trace's own start, so a span
    list reads as a timeline without absolute clocks leaking into
    payloads.
    """

    stage: str
    start_ms: float
    duration_ms: float
    shard: int | None = None
    labels: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        payload = {
            "stage": self.stage,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload


class Trace:
    """Span recorder for one request.

    Traces are cheap (one lock, one list) because one is created for
    *every* request — instrumentation is always-on, never sampled.
    """

    __slots__ = ("trace_id", "_origin", "_lock", "_spans", "labels")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or f"t{next(_trace_ids):08d}"
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.labels: dict = {}

    # -- recording -----------------------------------------------------

    @contextmanager
    def span(self, stage: str, *, shard: int | None = None, **labels):
        """Time a stage; yields a mutable label dict the body may extend
        (e.g. set ``cached`` once the cache answered).  A ``shard`` key
        placed in that dict overrides the ``shard`` argument."""
        started = time.perf_counter()
        mutable: dict = dict(labels)
        try:
            yield mutable
        finally:
            ended = time.perf_counter()
            self.add(
                stage,
                duration_ms=(ended - started) * 1000.0,
                start_ms=(started - self._origin) * 1000.0,
                shard=mutable.pop("shard", shard),
                **mutable,
            )

    def add(
        self,
        stage: str,
        duration_ms: float,
        *,
        start_ms: float | None = None,
        shard: int | None = None,
        **labels,
    ) -> None:
        """Record an externally timed span."""
        if start_ms is None:
            start_ms = (time.perf_counter() - self._origin) * 1000.0 - duration_ms
        entry = Span(
            stage=stage,
            start_ms=max(0.0, start_ms),
            duration_ms=duration_ms,
            shard=shard,
            labels=labels,
        )
        with self._lock:
            self._spans.append(entry)

    def annotate(self, **labels) -> None:
        """Attach request-level labels (endpoint, coalesced, ...)."""
        with self._lock:
            self.labels.update(labels)

    # -- reading -------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self._origin) * 1000.0

    def stage_totals_ms(self) -> dict[str, float]:
        """Busy milliseconds per stage (fan-out stages sum over shards)."""
        totals: dict[str, float] = {}
        for entry in self.spans:
            totals[entry.stage] = totals.get(entry.stage, 0.0) + entry.duration_ms
        return {stage: round(ms, 3) for stage, ms in totals.items()}

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "labels": dict(self.labels),
            "spans": [entry.as_dict() for entry in self.spans],
            "stage_totals_ms": self.stage_totals_ms(),
        }

    def __repr__(self) -> str:
        return f"Trace({self.trace_id}, spans={len(self.spans)})"


def current_trace() -> Trace | None:
    """The trace of the request running in this context, if any."""
    return _current_trace.get()


@contextmanager
def start_trace(trace: Trace | None = None):
    """Activate a trace for the duration of the block and yield it.

    Nested activations stack: the inner trace wins inside the block and
    the outer one is restored afterwards (contextvar token semantics).
    """
    active = trace or Trace()
    token = _current_trace.set(active)
    try:
        yield active
    finally:
        _current_trace.reset(token)


@contextmanager
def span(stage: str, *, shard: int | None = None, **labels):
    """Record a span into the current trace; a no-op without one.

    Always yields a mutable dict so call sites can set labels
    unconditionally — when no trace is active the dict is discarded.
    """
    trace = _current_trace.get()
    if trace is None:
        yield dict(labels)
        return
    with trace.span(stage, shard=shard, **labels) as mutable:
        yield mutable


def annotate(**labels) -> None:
    """Label the current trace; a no-op without one."""
    trace = _current_trace.get()
    if trace is not None:
        trace.annotate(**labels)


def carry_context(fn):
    """Bind the *current* context (active trace included) to ``fn``.

    ``ThreadPoolExecutor`` and ``loop.run_in_executor`` run callables in
    whatever context the worker thread happens to have — i.e. none.
    ``pool.submit(carry_context(fn), *args)`` runs ``fn`` inside a copy
    of the submitting request's context instead, so spans recorded on
    the worker thread reach the right trace.  The captured context is
    re-copied per invocation (``Context.run`` is not re-entrant), so one
    wrapped callable is safe to fan out across a whole ``pool.map``.
    """
    ctx = copy_context()

    def bound(*args, **kwargs):
        return ctx.copy().run(fn, *args, **kwargs)

    return bound
