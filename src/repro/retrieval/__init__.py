"""INDRI-like retrieval substrate: positional index, query language,
language-model ranking with exact phrase matching.

The paper evaluates expansion features by issuing exact-phrase queries to
the INDRI engine; :class:`SearchEngine` is the drop-in used here (see
DESIGN.md §2 for the substitution argument).
"""

from repro.retrieval.engine import (
    SearchEngine,
    SearchResult,
    background_from_counts,
    collect_leaves,
    merge_ranked_lists,
)
from repro.retrieval.compact import CompactIndex
from repro.retrieval.index import PositionalIndex, Posting
from repro.retrieval.phrase import (
    PhraseStats,
    collect_phrase_stats,
    phrase_documents,
    phrase_occurrences,
)
from repro.retrieval.qlang import (
    BandNode,
    CombineNode,
    PhraseNode,
    QueryNode,
    TermNode,
    build_phrase_query,
    parse_query,
)
from repro.retrieval.scoring import (
    DirichletSmoothing,
    JelinekMercerSmoothing,
    Smoothing,
    TwoStageSmoothing,
)
from repro.retrieval.tokenizer import DEFAULT_STOPWORDS, Tokenizer

__all__ = [
    "SearchEngine",
    "SearchResult",
    "collect_leaves",
    "background_from_counts",
    "merge_ranked_lists",
    "PositionalIndex",
    "Posting",
    "CompactIndex",
    "phrase_occurrences",
    "phrase_documents",
    "PhraseStats",
    "collect_phrase_stats",
    "parse_query",
    "build_phrase_query",
    "QueryNode",
    "TermNode",
    "PhraseNode",
    "CombineNode",
    "BandNode",
    "Smoothing",
    "DirichletSmoothing",
    "JelinekMercerSmoothing",
    "TwoStageSmoothing",
    "Tokenizer",
    "DEFAULT_STOPWORDS",
]
