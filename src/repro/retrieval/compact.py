"""Frozen, array-backed positional index (the serving-side read path).

:class:`CompactIndex` is the immutable counterpart of
:class:`~repro.retrieval.index.PositionalIndex`: terms and document ids
are interned into contiguous integer ids and the postings live in CSR
(compressed sparse row) layout over flat integer arrays —

* ``term_offsets[tid] .. term_offsets[tid+1]`` is the posting range of a
  term, ``posting_docs[slot]`` the interned doc id of one posting
  (ascending within a term, so per-term doc order matches the
  lexicographic order the dict index emits);
* ``position_offsets[slot] .. position_offsets[slot+1]`` delimits that
  posting's occurrence positions in ``positions``;
* per-document lengths, per-term collection frequencies and the
  smoothing background probabilities are one array lookup each, frozen
  at build time instead of being re-derived per query.

The class exposes the exact query surface :class:`SearchEngine`, the
phrase operator and the sharded-ranking protocol consume, and returns
bit-identical statistics (same integer counts, same float background
probabilities), so scorers run on either index unchanged and produce
identical scores.  Mutation raises: freezing is the point — the build
path stays on :class:`PositionalIndex`, the serve path runs here
(the queries-under-updates split of Berkholz et al.).

Serialisation is a single binary blob (see :mod:`repro.blobio`):
``save``/``load`` round-trip through a file that ``load`` maps with
``mmap``, turning the numeric sections into zero-copy memoryviews — a
cold start touches pages on demand instead of parsing every posting.

Where this sits in the serving stack (and the on-disk format carrying
these blobs) is mapped in ``docs/architecture.md``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.blobio import map_blob, pack_blob, unpack_blob
from repro.errors import IndexError_
from repro.retrieval.index import PositionalIndex, Posting
from repro.retrieval.tokenizer import Tokenizer

__all__ = ["CompactIndex"]

_MAGIC = b"RPCIDX1\n"


class CompactIndex:
    """Read-only positional index over interned ids and CSR arrays.

    Build one with :meth:`from_index` (freeze a dict-backed index) or
    :meth:`load` (map a saved blob).  The constructor wires
    already-validated parts together and is not a public entry point.
    """

    __slots__ = (
        "_tokenizer", "_terms", "_term_of", "_docs", "_doc_of",
        "_term_offsets", "_posting_docs", "_position_offsets", "_positions",
        "_doc_lengths", "_collection_freq", "_collection_prob",
        "_total_tokens", "_oov_prob", "_handle",
    )

    def __init__(
        self,
        tokenizer: Tokenizer,
        terms: list[str],
        docs: list[str],
        term_offsets,
        posting_docs,
        position_offsets,
        positions,
        doc_lengths,
        collection_freq,
        collection_prob,
        total_tokens: int,
        handle=None,
    ) -> None:
        self._tokenizer = tokenizer
        self._terms = terms
        self._term_of = {term: tid for tid, term in enumerate(terms)}
        self._docs = docs
        self._doc_of = {doc_id: did for did, doc_id in enumerate(docs)}
        self._term_offsets = term_offsets
        self._posting_docs = posting_docs
        self._position_offsets = position_offsets
        self._positions = positions
        self._doc_lengths = doc_lengths
        self._collection_freq = collection_freq
        self._collection_prob = collection_prob
        self._total_tokens = total_tokens
        self._oov_prob = 0.5 / total_tokens if total_tokens else 0.0
        self._handle = handle  # keeps a backing mmap alive, if any

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------

    @classmethod
    def from_index(cls, index: PositionalIndex) -> "CompactIndex":
        """Freeze a dict-backed index into the compact layout.

        Documents are interned in lexicographic id order, matching the
        per-term ordering :meth:`PositionalIndex.postings` emits; terms
        keep their first-occurrence order so ``terms()`` iterates
        identically on both index kinds.
        """
        if isinstance(index, cls):
            return index
        docs = sorted(index.doc_ids())
        doc_of = {doc_id: did for did, doc_id in enumerate(docs)}
        terms = list(index.terms())

        term_offsets = array("i", [0])
        posting_docs = array("i")
        position_offsets = array("i", [0])
        positions = array("i")
        collection_freq = array("i")
        for term in terms:
            frequency = 0
            for posting in index.postings(term):
                posting_docs.append(doc_of[posting.doc_id])
                positions.extend(posting.positions)
                position_offsets.append(len(positions))
                frequency += len(posting.positions)
            term_offsets.append(len(posting_docs))
            collection_freq.append(frequency)

        total = index.total_tokens
        collection_prob = array(
            "d",
            (
                (count / total if count else 0.5 / total) if total else 0.0
                for count in collection_freq
            ),
        )
        doc_lengths = array("i", (index.document_length(doc_id) for doc_id in docs))
        return cls(
            tokenizer=index.tokenizer,
            terms=terms,
            docs=docs,
            term_offsets=term_offsets,
            posting_docs=posting_docs,
            position_offsets=position_offsets,
            positions=positions,
            doc_lengths=doc_lengths,
            collection_freq=collection_freq,
            collection_prob=collection_prob,
            total_tokens=total,
        )

    # ------------------------------------------------------------------
    # Statistics (PositionalIndex surface)
    # ------------------------------------------------------------------

    @property
    def tokenizer(self) -> Tokenizer:
        return self._tokenizer

    @property
    def num_documents(self) -> int:
        return len(self._docs)

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @property
    def vocabulary_size(self) -> int:
        return len(self._terms)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_of

    def doc_ids(self) -> Iterator[str]:
        return iter(self._docs)

    def document_length(self, doc_id: str) -> int:
        did = self._doc_of.get(doc_id)
        if did is None:
            raise IndexError_(f"unknown document: {doc_id!r}")
        return self._doc_lengths[did]

    def document_frequency(self, term: str) -> int:
        tid = self._term_of.get(term)
        if tid is None:
            return 0
        return self._term_offsets[tid + 1] - self._term_offsets[tid]

    def collection_frequency(self, term: str) -> int:
        tid = self._term_of.get(term)
        return 0 if tid is None else self._collection_freq[tid]

    def collection_probability(self, term: str) -> float:
        """Background probability, precomputed at freeze time.

        Matches :meth:`PositionalIndex.collection_probability` exactly
        (same division of the same integers, same half-count floor for
        out-of-vocabulary terms).
        """
        tid = self._term_of.get(term)
        return self._oov_prob if tid is None else self._collection_prob[tid]

    # ------------------------------------------------------------------
    # Postings access
    # ------------------------------------------------------------------

    def _posting_slot(self, term: str, doc_id: str) -> int | None:
        tid = self._term_of.get(term)
        if tid is None:
            return None
        did = self._doc_of.get(doc_id)
        if did is None:
            return None
        lo = self._term_offsets[tid]
        hi = self._term_offsets[tid + 1]
        slot = bisect_left(self._posting_docs, did, lo, hi)
        if slot == hi or self._posting_docs[slot] != did:
            return None
        return slot

    def postings(self, term: str) -> list[Posting]:
        """All postings of ``term``, ordered by doc id for determinism."""
        tid = self._term_of.get(term)
        if tid is None:
            return []
        docs = self._docs
        posting_docs = self._posting_docs
        offsets = self._position_offsets
        positions = self._positions
        return [
            Posting(docs[posting_docs[slot]], list(positions[offsets[slot]:offsets[slot + 1]]))
            for slot in range(self._term_offsets[tid], self._term_offsets[tid + 1])
        ]

    def term_frequency(self, term: str, doc_id: str) -> int:
        slot = self._posting_slot(term, doc_id)
        if slot is None:
            return 0
        return self._position_offsets[slot + 1] - self._position_offsets[slot]

    def positions(self, term: str, doc_id: str) -> list[int]:
        slot = self._posting_slot(term, doc_id)
        if slot is None:
            return []
        return list(self._positions[self._position_offsets[slot]:self._position_offsets[slot + 1]])

    def documents_containing(self, term: str) -> set[str]:
        tid = self._term_of.get(term)
        if tid is None:
            return set()
        docs = self._docs
        posting_docs = self._posting_docs
        return {
            docs[posting_docs[slot]]
            for slot in range(self._term_offsets[tid], self._term_offsets[tid + 1])
        }

    def documents_containing_all(self, terms: Iterable[str]) -> set[str]:
        """Conjunctive lookup (empty input selects nothing, like the dict
        index).  Terms are intersected rarest-first to keep the running
        candidate set minimal."""
        ranges: list[tuple[int, int]] = []
        for term in terms:
            tid = self._term_of.get(term)
            if tid is None:
                return set()
            lo, hi = self._term_offsets[tid], self._term_offsets[tid + 1]
            if lo == hi:
                return set()
            ranges.append((lo, hi))
        if not ranges:
            return set()
        ranges.sort(key=lambda pair: pair[1] - pair[0])
        posting_docs = self._posting_docs
        lo, hi = ranges[0]
        result = {posting_docs[slot] for slot in range(lo, hi)}
        for lo, hi in ranges[1:]:
            result &= {posting_docs[slot] for slot in range(lo, hi)}
            if not result:
                return set()
        docs = self._docs
        return {docs[did] for did in result}

    def terms(self) -> Iterator[str]:
        """All indexed terms, in the original first-occurrence order."""
        return iter(self._terms)

    # ------------------------------------------------------------------
    # Mutation guard
    # ------------------------------------------------------------------

    def add_document(self, doc_id: str, text: str) -> int:
        raise IndexError_(
            "CompactIndex is frozen; build documents into a PositionalIndex "
            "and re-freeze with CompactIndex.from_index"
        )

    def add_documents(self, items: Iterable[tuple[str, str]]) -> int:
        raise IndexError_(
            "CompactIndex is frozen; build documents into a PositionalIndex "
            "and re-freeze with CompactIndex.from_index"
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready dump in the :class:`PositionalIndex` payload shape.

        Exists so a compact index can be written back into the legacy
        (v1/v2) snapshot formats; round-tripping through
        :meth:`PositionalIndex.from_payload` reproduces the original
        dict-backed index exactly.
        """
        return {
            "documents": [
                [doc_id, self._doc_lengths[did]] for did, doc_id in enumerate(self._docs)
            ],
            "postings": {
                term: {
                    posting.doc_id: posting.positions for posting in self.postings(term)
                }
                for term in self._terms
            },
        }

    def to_blob(self) -> bytes:
        """Serialise into the single-file binary layout of :meth:`load`."""
        header = {
            "total_tokens": self._total_tokens,
            "terms": self._terms,
            "documents": self._docs,
            "tokenizer": {
                "stopwords": sorted(self._tokenizer.stopwords),
                "min_length": self._tokenizer.min_length,
            },
        }
        sections = {
            "term_offsets": self._as_array("i", self._term_offsets),
            "posting_docs": self._as_array("i", self._posting_docs),
            "position_offsets": self._as_array("i", self._position_offsets),
            "positions": self._as_array("i", self._positions),
            "doc_lengths": self._as_array("i", self._doc_lengths),
            "collection_freq": self._as_array("i", self._collection_freq),
            "collection_prob": self._as_array("d", self._collection_prob),
        }
        return pack_blob(_MAGIC, header, sections)

    @staticmethod
    def _as_array(typecode: str, values) -> array:
        return values if isinstance(values, array) else array(typecode, values)

    @classmethod
    def from_blob(cls, data) -> "CompactIndex":
        """Rebuild an index over ``data`` (bytes or a mapped buffer).

        Numeric sections stay zero-copy views into ``data``; only the
        interning dictionaries are materialised.  Raises
        :class:`IndexError_` on malformed or truncated blobs.
        """
        header, sections = unpack_blob(_MAGIC, data, IndexError_)
        return cls._from_parsed(header, sections, handle=None)

    @classmethod
    def _from_parsed(cls, header: dict, sections: dict, handle) -> "CompactIndex":
        try:
            terms = [str(term) for term in header["terms"]]
            docs = [str(doc_id) for doc_id in header["documents"]]
            total_tokens = int(header["total_tokens"])
            tok_config = header["tokenizer"]
            stopwords = frozenset(str(s) for s in tok_config["stopwords"])
            tokenizer = Tokenizer(
                stopwords=stopwords or None,
                min_length=int(tok_config["min_length"]),
            )
            term_offsets = sections["term_offsets"]
            posting_docs = sections["posting_docs"]
            position_offsets = sections["position_offsets"]
            positions = sections["positions"]
            doc_lengths = sections["doc_lengths"]
            collection_freq = sections["collection_freq"]
            collection_prob = sections["collection_prob"]
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexError_(f"compact index blob is malformed: {exc}") from exc
        if len(term_offsets) != len(terms) + 1 or len(doc_lengths) != len(docs) \
                or len(collection_freq) != len(terms) \
                or len(collection_prob) != len(terms) \
                or len(position_offsets) != len(posting_docs) + 1:
            raise IndexError_("compact index blob sections disagree on counts")
        return cls(
            tokenizer=tokenizer,
            terms=terms,
            docs=docs,
            term_offsets=term_offsets,
            posting_docs=posting_docs,
            position_offsets=position_offsets,
            positions=positions,
            doc_lengths=doc_lengths,
            collection_freq=collection_freq,
            collection_prob=collection_prob,
            total_tokens=total_tokens,
            handle=handle,
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_bytes(self.to_blob())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CompactIndex":
        """Map ``path`` read-only and serve from the page cache."""
        header, sections, handle = map_blob(path, _MAGIC, IndexError_)
        return cls._from_parsed(header, sections, handle=handle)

    def __repr__(self) -> str:
        return (
            f"CompactIndex(docs={self.num_documents}, "
            f"vocab={self.vocabulary_size}, tokens={self._total_tokens}, "
            f"mapped={self._handle is not None})"
        )
