"""Search engine facade: index + query language + language-model ranking.

:class:`SearchEngine` is the INDRI stand-in used by the ground-truth
pipeline.  Ranking follows INDRI's evaluation of structured queries:

* a ``TermNode``/``PhraseNode`` scores ``log p(node | D)`` under the
  configured smoothing (phrases are smoothed with their own collection
  frequency);
* ``#combine`` averages the log beliefs of its children;
* ``#band`` restricts the candidate set to documents matching every child
  and then scores like ``#combine``.

Candidate documents are those containing at least one query term (for
``#band``: all terms); documents with no overlap cannot outrank them and
are omitted, which mirrors how IR engines actually return results.

Sharded retrieval: when documents are split across several index segments
the language model's background statistics must stay *global* for scores
to be preserved.  The module supports the classic two-phase protocol:
each segment reports its local collection counts per query leaf
(:meth:`SearchEngine.leaf_collection_counts`), the router sums them into
global background probabilities (:func:`background_from_counts`), each
segment then scores its own documents under that shared background
(:meth:`SearchEngine.search_with_background`), and the per-segment ranked
lists are combined score-preservingly by :func:`merge_ranked_lists`.
A single-segment engine run through this protocol produces bit-identical
scores to a plain :meth:`SearchEngine.search`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import EmptyIndexError, QueryLanguageError
from repro.retrieval.index import PositionalIndex
from repro.retrieval.phrase import collect_phrase_stats
from repro.retrieval.qlang import (
    BandNode,
    CombineNode,
    PhraseNode,
    QueryNode,
    TermNode,
    build_phrase_query,
    parse_query,
)
from repro.retrieval.scoring import DirichletSmoothing, Smoothing
from repro.retrieval.tokenizer import Tokenizer

__all__ = [
    "SearchEngine",
    "SearchResult",
    "collect_leaves",
    "background_from_counts",
    "merge_ranked_lists",
]


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked document."""

    doc_id: str
    score: float
    rank: int


def collect_leaves(root: QueryNode) -> tuple[QueryNode, ...]:
    """Distinct scoring leaves (terms/phrases) of a query AST, in order."""
    leaves: dict[QueryNode, None] = {}

    def visit(node: QueryNode) -> None:
        if isinstance(node, (TermNode, PhraseNode)):
            leaves.setdefault(node)
        elif isinstance(node, (CombineNode, BandNode)):
            for child in node.children:
                visit(child)
        else:
            raise QueryLanguageError(f"unknown query node type: {type(node).__name__}")

    visit(root)
    return tuple(leaves)


def background_from_counts(
    counts: Mapping[QueryNode, int], total_tokens: int
) -> dict[QueryNode, float]:
    """Background probabilities from summed collection counts.

    Mirrors :meth:`PositionalIndex.collection_probability` (half-count
    floor for unseen leaves), so probabilities derived from per-segment
    counts summed across shards equal the monolithic index's.
    """
    if total_tokens <= 0:
        return {leaf: 0.0 for leaf in counts}
    return {
        leaf: (count / total_tokens if count > 0 else 0.5 / total_tokens)
        for leaf, count in counts.items()
    }


def merge_ranked_lists(
    ranked_lists: Iterable[list[SearchResult]], top_k: int
) -> list[SearchResult]:
    """Score-preserving k-way merge of per-segment ranked lists.

    Each input must already be sorted by ``(-score, doc_id)`` (the order
    :meth:`SearchEngine.search` emits); scores carry over unchanged and
    only ranks are re-assigned.  Ties across segments break by doc id,
    exactly as a single engine over the union of documents would.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    merged = heapq.merge(
        *ranked_lists, key=lambda result: (-result.score, result.doc_id)
    )
    out: list[SearchResult] = []
    for result in merged:
        out.append(SearchResult(doc_id=result.doc_id, score=result.score,
                                rank=len(out) + 1))
        if len(out) == top_k:
            break
    return out


class SearchEngine:
    """Language-model retrieval over a positional index.

    Parameters
    ----------
    tokenizer:
        Shared tokenizer (defaults to the standard one).
    smoothing:
        Scoring model; defaults to Dirichlet with INDRI's usual ``mu``.
        Small collections (hundreds of short documents) may prefer a lower
        ``mu``; the benchmark harness uses ``mu=300``.
    index:
        An already-built :class:`PositionalIndex` to serve from (e.g. one
        loaded from a service snapshot).  When given, the engine adopts the
        index's tokenizer unless ``tokenizer`` is also passed explicitly.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        smoothing: Smoothing | None = None,
        *,
        index: PositionalIndex | None = None,
    ) -> None:
        if index is not None:
            self._tokenizer = tokenizer or index.tokenizer
            self._index = index
        else:
            self._tokenizer = tokenizer or Tokenizer()
            self._index = PositionalIndex(self._tokenizer)
        self._smoothing = smoothing or DirichletSmoothing()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    @property
    def index(self) -> PositionalIndex:
        return self._index

    @property
    def tokenizer(self) -> Tokenizer:
        return self._tokenizer

    @property
    def num_documents(self) -> int:
        return self._index.num_documents

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document."""
        self._index.add_document(doc_id, text)

    def add_documents(self, items) -> int:
        """Index many ``(doc_id, text)`` pairs; returns the count added."""
        return self._index.add_documents(items)

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------

    def search(self, query: str | QueryNode, top_k: int = 15) -> list[SearchResult]:
        """Rank documents for ``query`` and return the top ``top_k``.

        ``query`` may be a query string in the mini INDRI language or an
        already-built AST node.  Ties break by doc id so results are
        deterministic.  Raises :class:`EmptyIndexError` when nothing has
        been indexed and :class:`QueryLanguageError` on unparsable queries.
        """
        if self._index.num_documents == 0:
            raise EmptyIndexError("cannot search an empty index")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        root = parse_query(query, self._tokenizer) if isinstance(query, str) else query

        candidates = self._candidates(root)
        scored = [(self._score(root, doc_id), doc_id) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            SearchResult(doc_id=doc_id, score=score, rank=rank)
            for rank, (score, doc_id) in enumerate(scored[:top_k], start=1)
        ]

    def search_phrases(self, phrases: list[str], top_k: int = 15) -> list[SearchResult]:
        """Search with the paper's expansion-query shape.

        ``phrases`` holds the query keywords plus the expansion feature
        titles; each becomes an exact ``#1`` phrase under one ``#combine``.
        """
        return self.search(build_phrase_query(phrases, self._tokenizer), top_k=top_k)

    # ------------------------------------------------------------------
    # Sharded retrieval (two-phase statistics exchange)
    # ------------------------------------------------------------------

    def leaf_collection_counts(self, root: QueryNode) -> dict[QueryNode, int]:
        """Phase 1: this segment's collection count per scoring leaf.

        Terms report their collection frequency; phrases report their
        exact-occurrence count over this segment's documents.  A router
        sums these across segments to build the global background model.
        """
        counts: dict[QueryNode, int] = {}
        for leaf in collect_leaves(root):
            if isinstance(leaf, TermNode):
                counts[leaf] = self._index.collection_frequency(leaf.term)
            else:
                stats = collect_phrase_stats(self._index, leaf.tokens)
                counts[leaf] = stats.collection_frequency
        return counts

    def search_with_background(
        self,
        root: QueryNode,
        background: Mapping[QueryNode, float],
        top_k: int = 15,
    ) -> list[SearchResult]:
        """Phase 2: rank this segment's documents under a given background.

        ``background`` maps every scoring leaf of ``root`` to its global
        ``p(leaf | C)``; term/phrase frequencies and document lengths stay
        local.  Returns at most ``top_k`` results sorted by
        ``(-score, doc_id)`` — the global top-k is always contained in the
        union of per-segment top-k lists.  An empty segment returns [].
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self._index.num_documents == 0:
            return []
        scored = [
            (self._score_with(root, doc_id, background), doc_id)
            for doc_id in self._candidates(root)
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            SearchResult(doc_id=doc_id, score=score, rank=rank)
            for rank, (score, doc_id) in enumerate(scored[:top_k], start=1)
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _candidates(self, node: QueryNode) -> set[str]:
        if isinstance(node, TermNode):
            return self._index.documents_containing(node.term)
        if isinstance(node, PhraseNode):
            stats = collect_phrase_stats(self._index, node.tokens)
            return set(stats.per_document)
        if isinstance(node, BandNode):
            result: set[str] | None = None
            for child in node.children:
                docs = self._candidates(child)
                result = docs if result is None else result & docs
                if not result:
                    return set()
            return result or set()
        if isinstance(node, CombineNode):
            result: set[str] = set()
            for child in node.children:
                result |= self._candidates(child)
            return result
        raise QueryLanguageError(f"unknown query node type: {type(node).__name__}")

    def _score(self, node: QueryNode, doc_id: str) -> float:
        if isinstance(node, TermNode):
            return self._smoothing.log_prob(
                self._index.term_frequency(node.term, doc_id),
                self._index.document_length(doc_id),
                self._index.collection_probability(node.term),
            )
        if isinstance(node, PhraseNode):
            stats = collect_phrase_stats(self._index, node.tokens)
            return self._smoothing.log_prob(
                stats.occurrences_in(doc_id),
                self._index.document_length(doc_id),
                stats.collection_probability(self._index),
            )
        if isinstance(node, (CombineNode, BandNode)):
            children = node.children
            return sum(self._score(child, doc_id) for child in children) / len(children)
        raise QueryLanguageError(f"unknown query node type: {type(node).__name__}")

    def _score_with(
        self, node: QueryNode, doc_id: str, background: Mapping[QueryNode, float]
    ) -> float:
        if isinstance(node, TermNode):
            return self._smoothing.log_prob(
                self._index.term_frequency(node.term, doc_id),
                self._index.document_length(doc_id),
                background[node],
            )
        if isinstance(node, PhraseNode):
            stats = collect_phrase_stats(self._index, node.tokens)
            return self._smoothing.log_prob(
                stats.occurrences_in(doc_id),
                self._index.document_length(doc_id),
                background[node],
            )
        if isinstance(node, (CombineNode, BandNode)):
            children = node.children
            return sum(
                self._score_with(child, doc_id, background) for child in children
            ) / len(children)
        raise QueryLanguageError(f"unknown query node type: {type(node).__name__}")

    def __repr__(self) -> str:
        return f"SearchEngine(index={self._index!r}, smoothing={self._smoothing!r})"
