"""Search engine facade: index + query language + language-model ranking.

:class:`SearchEngine` is the INDRI stand-in used by the ground-truth
pipeline.  Ranking follows INDRI's evaluation of structured queries:

* a ``TermNode``/``PhraseNode`` scores ``log p(node | D)`` under the
  configured smoothing (phrases are smoothed with their own collection
  frequency);
* ``#combine`` averages the log beliefs of its children;
* ``#band`` restricts the candidate set to documents matching every child
  and then scores like ``#combine``.

Candidate documents are those containing at least one query term (for
``#band``: all terms); documents with no overlap cannot outrank them and
are omitted, which mirrors how IR engines actually return results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EmptyIndexError, QueryLanguageError
from repro.retrieval.index import PositionalIndex
from repro.retrieval.phrase import collect_phrase_stats
from repro.retrieval.qlang import (
    BandNode,
    CombineNode,
    PhraseNode,
    QueryNode,
    TermNode,
    build_phrase_query,
    parse_query,
)
from repro.retrieval.scoring import DirichletSmoothing, Smoothing
from repro.retrieval.tokenizer import Tokenizer

__all__ = ["SearchEngine", "SearchResult"]


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked document."""

    doc_id: str
    score: float
    rank: int


class SearchEngine:
    """Language-model retrieval over a positional index.

    Parameters
    ----------
    tokenizer:
        Shared tokenizer (defaults to the standard one).
    smoothing:
        Scoring model; defaults to Dirichlet with INDRI's usual ``mu``.
        Small collections (hundreds of short documents) may prefer a lower
        ``mu``; the benchmark harness uses ``mu=300``.
    index:
        An already-built :class:`PositionalIndex` to serve from (e.g. one
        loaded from a service snapshot).  When given, the engine adopts the
        index's tokenizer unless ``tokenizer`` is also passed explicitly.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        smoothing: Smoothing | None = None,
        *,
        index: PositionalIndex | None = None,
    ) -> None:
        if index is not None:
            self._tokenizer = tokenizer or index.tokenizer
            self._index = index
        else:
            self._tokenizer = tokenizer or Tokenizer()
            self._index = PositionalIndex(self._tokenizer)
        self._smoothing = smoothing or DirichletSmoothing()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    @property
    def index(self) -> PositionalIndex:
        return self._index

    @property
    def tokenizer(self) -> Tokenizer:
        return self._tokenizer

    @property
    def num_documents(self) -> int:
        return self._index.num_documents

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document."""
        self._index.add_document(doc_id, text)

    def add_documents(self, items) -> int:
        """Index many ``(doc_id, text)`` pairs; returns the count added."""
        return self._index.add_documents(items)

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------

    def search(self, query: str | QueryNode, top_k: int = 15) -> list[SearchResult]:
        """Rank documents for ``query`` and return the top ``top_k``.

        ``query`` may be a query string in the mini INDRI language or an
        already-built AST node.  Ties break by doc id so results are
        deterministic.  Raises :class:`EmptyIndexError` when nothing has
        been indexed and :class:`QueryLanguageError` on unparsable queries.
        """
        if self._index.num_documents == 0:
            raise EmptyIndexError("cannot search an empty index")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        root = parse_query(query, self._tokenizer) if isinstance(query, str) else query

        candidates = self._candidates(root)
        scored = [(self._score(root, doc_id), doc_id) for doc_id in candidates]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            SearchResult(doc_id=doc_id, score=score, rank=rank)
            for rank, (score, doc_id) in enumerate(scored[:top_k], start=1)
        ]

    def search_phrases(self, phrases: list[str], top_k: int = 15) -> list[SearchResult]:
        """Search with the paper's expansion-query shape.

        ``phrases`` holds the query keywords plus the expansion feature
        titles; each becomes an exact ``#1`` phrase under one ``#combine``.
        """
        return self.search(build_phrase_query(phrases, self._tokenizer), top_k=top_k)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _candidates(self, node: QueryNode) -> set[str]:
        if isinstance(node, TermNode):
            return self._index.documents_containing(node.term)
        if isinstance(node, PhraseNode):
            stats = collect_phrase_stats(self._index, node.tokens)
            return set(stats.per_document)
        if isinstance(node, BandNode):
            result: set[str] | None = None
            for child in node.children:
                docs = self._candidates(child)
                result = docs if result is None else result & docs
                if not result:
                    return set()
            return result or set()
        if isinstance(node, CombineNode):
            result: set[str] = set()
            for child in node.children:
                result |= self._candidates(child)
            return result
        raise QueryLanguageError(f"unknown query node type: {type(node).__name__}")

    def _score(self, node: QueryNode, doc_id: str) -> float:
        if isinstance(node, TermNode):
            return self._smoothing.log_prob(
                self._index.term_frequency(node.term, doc_id),
                self._index.document_length(doc_id),
                self._index.collection_probability(node.term),
            )
        if isinstance(node, PhraseNode):
            stats = collect_phrase_stats(self._index, node.tokens)
            return self._smoothing.log_prob(
                stats.occurrences_in(doc_id),
                self._index.document_length(doc_id),
                stats.collection_probability(self._index),
            )
        if isinstance(node, (CombineNode, BandNode)):
            children = node.children
            return sum(self._score(child, doc_id) for child in children) / len(children)
        raise QueryLanguageError(f"unknown query node type: {type(node).__name__}")

    def __repr__(self) -> str:
        return f"SearchEngine(index={self._index!r}, smoothing={self._smoothing!r})"
