"""Positional inverted index.

Stores, per term, the postings ``doc_id -> sorted positions``; per document
its length; and collection-wide term counts.  This is the substrate both the
bag-of-words scorers and the exact-phrase operator run on.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from itertools import islice

from repro.errors import IndexError_
from repro.retrieval.tokenizer import Tokenizer

__all__ = ["PositionalIndex", "Posting"]


class Posting:
    """Occurrences of one term in one document."""

    __slots__ = ("doc_id", "positions")

    def __init__(self, doc_id: str, positions: list[int]) -> None:
        self.doc_id = doc_id
        self.positions = positions

    @property
    def term_frequency(self) -> int:
        return len(self.positions)

    def __repr__(self) -> str:
        return f"Posting({self.doc_id!r}, tf={self.term_frequency})"


class PositionalIndex:
    """An append-only positional inverted index.

    Documents are identified by opaque string ids (the benchmark uses the
    ImageCLEF image ids).  Adding the same id twice is an error — the paper's
    collection is static, so silent replacement would only hide bugs.
    """

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        self._postings: dict[str, dict[str, list[int]]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._collection_frequency: dict[str, int] = {}
        self._total_tokens = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    @property
    def tokenizer(self) -> Tokenizer:
        return self._tokenizer

    def add_document(self, doc_id: str, text: str) -> int:
        """Index ``text`` under ``doc_id``; returns the token count.

        Raises :class:`IndexError_` when the id was already indexed.
        """
        return self._add_tokens(doc_id, self._tokenizer.tokenize(text))

    def _add_tokens(self, doc_id: str, tokens: list[str]) -> int:
        if doc_id in self._doc_lengths:
            raise IndexError_(f"document {doc_id!r} already indexed")
        # Group positions per term locally first: one postings/frequency
        # update per distinct term instead of one per token.  Insertion
        # order of new terms (first occurrence) is preserved, so the
        # resulting index contents are byte-for-byte what the per-token
        # loop produced.
        per_term: defaultdict[str, list[int]] = defaultdict(list)
        for position, token in enumerate(tokens):
            per_term[token].append(position)
        postings = self._postings
        frequency = self._collection_frequency
        for token, positions in per_term.items():
            postings.setdefault(token, {})[doc_id] = positions
            frequency[token] = frequency.get(token, 0) + len(positions)
        self._doc_lengths[doc_id] = len(tokens)
        self._total_tokens += len(tokens)
        return len(tokens)

    def add_documents(self, items: Iterable[tuple[str, str]]) -> int:
        """Index many ``(doc_id, text)`` pairs; returns documents added.

        Tokenises in bounded chunks through
        :meth:`Tokenizer.tokenize_many`, so a generator over a large
        dump is never materialised wholesale.
        """
        count = 0
        iterator = iter(items)
        while chunk := list(islice(iterator, 512)):
            token_lists = self._tokenizer.tokenize_many(text for _, text in chunk)
            for (doc_id, _), tokens in zip(chunk, token_lists):
                self._add_tokens(doc_id, tokens)
            count += len(chunk)
        return count

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def total_tokens(self) -> int:
        """Collection length in tokens (denominator of background model)."""
        return self._total_tokens

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    def doc_ids(self) -> Iterator[str]:
        return iter(self._doc_lengths)

    def document_length(self, doc_id: str) -> int:
        """Token count of a document (raises on unknown ids)."""
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise IndexError_(f"unknown document: {doc_id!r}") from None

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` in the collection."""
        return self._collection_frequency.get(term, 0)

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood background probability ``p(term | C)``.

        Unseen terms get a half-count ("+0.5") so smoothing never divides by
        zero on out-of-vocabulary query terms.
        """
        if self._total_tokens == 0:
            return 0.0
        count = self._collection_frequency.get(term, 0)
        if count == 0:
            return 0.5 / self._total_tokens
        return count / self._total_tokens

    # ------------------------------------------------------------------
    # Postings access
    # ------------------------------------------------------------------

    def postings(self, term: str) -> list[Posting]:
        """All postings of ``term``, ordered by doc id for determinism."""
        by_doc = self._postings.get(term)
        if not by_doc:
            return []
        return [Posting(doc_id, by_doc[doc_id]) for doc_id in sorted(by_doc)]

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of ``term`` in ``doc_id`` (0 when absent)."""
        return len(self._postings.get(term, {}).get(doc_id, ()))

    def positions(self, term: str, doc_id: str) -> list[int]:
        """Sorted positions of ``term`` in ``doc_id`` (empty when absent)."""
        return list(self._postings.get(term, {}).get(doc_id, ()))

    def documents_containing(self, term: str) -> set[str]:
        """Ids of documents containing ``term``."""
        return set(self._postings.get(term, ()))

    def terms(self) -> Iterator[str]:
        """All indexed terms (the vocabulary), in insertion order."""
        return iter(self._postings)

    # ------------------------------------------------------------------
    # Serialisation (service snapshots)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready dump of the index contents.

        Collection frequencies and the total token count are derivable and
        deliberately omitted; :meth:`from_payload` recomputes them, so a
        hand-edited payload can never carry inconsistent statistics.
        """
        return {
            "documents": [[doc_id, length] for doc_id, length in self._doc_lengths.items()],
            "postings": {
                term: {doc_id: positions for doc_id, positions in by_doc.items()}
                for term, by_doc in self._postings.items()
            },
        }

    @classmethod
    def from_payload(
        cls, payload: dict, tokenizer: Tokenizer | None = None
    ) -> "PositionalIndex":
        """Rebuild an index from :meth:`to_payload` output.

        Raises :class:`IndexError_` when postings reference documents that
        are not declared in ``documents``.
        """
        index = cls(tokenizer)
        try:
            documents = payload["documents"]
            postings = payload["postings"]
        except (KeyError, TypeError) as exc:
            raise IndexError_(f"index payload is missing field {exc}") from exc
        for doc_id, length in documents:
            doc_id = str(doc_id)
            if doc_id in index._doc_lengths:
                raise IndexError_(f"document {doc_id!r} declared twice in payload")
            index._doc_lengths[doc_id] = int(length)
        for term, by_doc in postings.items():
            rebuilt: dict[str, list[int]] = {}
            frequency = 0
            for doc_id, positions in by_doc.items():
                if doc_id not in index._doc_lengths:
                    raise IndexError_(
                        f"postings for {term!r} reference undeclared document {doc_id!r}"
                    )
                rebuilt[doc_id] = sorted(int(p) for p in positions)
                frequency += len(rebuilt[doc_id])
            index._postings[term] = rebuilt
            index._collection_frequency[term] = frequency
        index._total_tokens = sum(index._doc_lengths.values())
        return index

    def documents_containing_all(self, terms: Iterable[str]) -> set[str]:
        """Ids of documents containing every term (conjunctive lookup).

        Returns the empty set when ``terms`` is empty — an empty conjunction
        over a collection would otherwise select everything, which no caller
        of this index wants.
        """
        result: set[str] | None = None
        for term in terms:
            docs = self._postings.get(term)
            if not docs:
                return set()
            result = set(docs) if result is None else result & docs.keys()
            if not result:
                return set()
        return result or set()

    def __repr__(self) -> str:
        return (
            f"PositionalIndex(docs={self.num_documents}, "
            f"vocab={self.vocabulary_size}, tokens={self._total_tokens})"
        )
