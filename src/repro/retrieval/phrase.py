"""Exact phrase matching over the positional index.

Implements the ``#1(...)`` semantics of the INDRI query language: the
phrase's tokens must occur contiguously and in order.  The paper writes its
expansion queries "based on exact phrase matching" of article titles, so
this operator carries most of the retrieval workload.
"""

from __future__ import annotations

from functools import lru_cache

from repro.retrieval.index import PositionalIndex

__all__ = ["phrase_occurrences", "phrase_documents", "PhraseStats", "collect_phrase_stats"]


def phrase_occurrences(index: PositionalIndex, phrase: tuple[str, ...], doc_id: str) -> int:
    """Number of exact occurrences of ``phrase`` in ``doc_id``.

    The empty phrase occurs zero times by definition.  Single-token phrases
    reduce to term frequency.
    """
    if not phrase:
        return 0
    if len(phrase) == 1:
        return index.term_frequency(phrase[0], doc_id)
    # Start from the rarest term's positions to keep the intersection cheap.
    position_lists = [index.positions(term, doc_id) for term in phrase]
    if any(not positions for positions in position_lists):
        return 0
    first = position_lists[0]
    later = [set(positions) for positions in position_lists[1:]]
    count = 0
    for start in first:
        if all(start + offset + 1 in positions for offset, positions in enumerate(later)):
            count += 1
    return count


def phrase_documents(index: PositionalIndex, phrase: tuple[str, ...]) -> set[str]:
    """Ids of documents containing at least one exact occurrence."""
    if not phrase:
        return set()
    candidates = index.documents_containing_all(phrase)
    if len(phrase) == 1:
        return candidates
    return {
        doc_id for doc_id in candidates if phrase_occurrences(index, phrase, doc_id) > 0
    }


class PhraseStats:
    """Collection-level statistics of a phrase, for smoothing.

    INDRI smooths a phrase like a term, using the phrase's own collection
    frequency.  Computing it requires scanning candidate documents once; the
    result is cached per (index, phrase) by :func:`collect_phrase_stats`.
    """

    __slots__ = ("phrase", "collection_frequency", "document_frequency", "per_document")

    def __init__(
        self,
        phrase: tuple[str, ...],
        collection_frequency: int,
        document_frequency: int,
        per_document: dict[str, int],
    ) -> None:
        self.phrase = phrase
        self.collection_frequency = collection_frequency
        self.document_frequency = document_frequency
        self.per_document = per_document

    def occurrences_in(self, doc_id: str) -> int:
        return self.per_document.get(doc_id, 0)

    def collection_probability(self, index: PositionalIndex) -> float:
        """Background probability of the phrase, half-count floored."""
        total = index.total_tokens
        if total == 0:
            return 0.0
        if self.collection_frequency == 0:
            return 0.5 / total
        return self.collection_frequency / total


def collect_phrase_stats(index: PositionalIndex, phrase: tuple[str, ...]) -> PhraseStats:
    """Scan the collection once and return cached phrase statistics.

    The cache key includes the index's document count, so statistics
    computed before more documents were added are never served stale.
    """
    return _cached_stats(index, index.num_documents, phrase)


@lru_cache(maxsize=4096)
def _cached_stats(
    index: PositionalIndex, num_documents: int, phrase: tuple[str, ...]
) -> PhraseStats:
    # The index hashes by object identity (it defines no __eq__/__hash__),
    # which is correct here: indexes are append-only and long-lived, and
    # ``num_documents`` invalidates entries when documents are added.
    per_document: dict[str, int] = {}
    for doc_id in index.documents_containing_all(phrase):
        count = phrase_occurrences(index, phrase, doc_id)
        if count:
            per_document[doc_id] = count
    return PhraseStats(
        phrase=phrase,
        collection_frequency=sum(per_document.values()),
        document_frequency=len(per_document),
        per_document=per_document,
    )
