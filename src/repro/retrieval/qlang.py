"""A small INDRI-style structured query language.

The paper writes expansion queries "in the INDRI query language, based on
exact phrase matching".  This module implements the subset those queries
need, with INDRI's syntax:

* bare terms: ``gondola venice``
* exact phrases: ``#1(bridge of sighs)`` or, equivalently, ``"bridge of sighs"``
* belief combination: ``#combine(node node ...)`` — mean of child log beliefs
* boolean conjunction filter: ``#band(node node ...)``
* nesting: ``#combine(gondola #1(grand canal) #band(venice regatta))``

A query string with several top-level nodes is an implicit ``#combine``.

The module exposes the AST (:class:`TermNode`, :class:`PhraseNode`,
:class:`CombineNode`, :class:`BandNode`), :func:`parse_query`, and
:func:`build_phrase_query` which constructs the expansion query shape the
paper uses (one ``#1`` phrase per article title under one ``#combine``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryLanguageError
from repro.retrieval.tokenizer import Tokenizer

__all__ = [
    "QueryNode",
    "TermNode",
    "PhraseNode",
    "CombineNode",
    "BandNode",
    "parse_query",
    "build_phrase_query",
]


class QueryNode:
    """Base class of query AST nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TermNode(QueryNode):
    """A single bag-of-words term."""

    term: str

    def __str__(self) -> str:
        return self.term


@dataclass(frozen=True, slots=True)
class PhraseNode(QueryNode):
    """An exact ordered phrase (INDRI ``#1``)."""

    tokens: tuple[str, ...]

    def __str__(self) -> str:
        return f"#1({' '.join(self.tokens)})"


@dataclass(frozen=True, slots=True)
class CombineNode(QueryNode):
    """Belief combination: the mean of child log beliefs (INDRI ``#combine``)."""

    children: tuple[QueryNode, ...]

    def __str__(self) -> str:
        inner = " ".join(str(child) for child in self.children)
        return f"#combine({inner})"


@dataclass(frozen=True, slots=True)
class BandNode(QueryNode):
    """Boolean AND filter over children (INDRI ``#band``)."""

    children: tuple[QueryNode, ...]

    def __str__(self) -> str:
        inner = " ".join(str(child) for child in self.children)
        return f"#band({inner})"


_LEXER_RE = re.compile(
    r"""
    (?P<operator>\#[a-z0-9]+)\s*\(   # e.g. '#combine(' or '#1('
    | (?P<open>\()
    | (?P<close>\))
    | (?P<quoted>"[^"]*")
    | (?P<word>[^\s()"#]+)
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_OPERATORS = {"#combine", "#band", "#1"}


def _lex(query: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(query):
        match = _LEXER_RE.match(query, position)
        if match is None:
            raise QueryLanguageError(
                f"cannot lex query at position {position}: {query[position:position + 10]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "operator":
            op = match.group("operator")
            if op not in _OPERATORS:
                raise QueryLanguageError(f"unknown operator {op!r}")
            tokens.append(("operator", op))
        elif kind == "quoted":
            tokens.append(("quoted", match.group("quoted")[1:-1]))
        elif kind == "word":
            tokens.append(("word", match.group("word")))
        elif kind == "close":
            tokens.append(("close", ")"))
        elif kind == "open":
            raise QueryLanguageError("bare parentheses are not part of the language")
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], tokenizer: Tokenizer) -> None:
        self._tokens = tokens
        self._position = 0
        self._tokenizer = tokenizer

    def _peek(self) -> tuple[str, str] | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QueryLanguageError("unexpected end of query")
        self._position += 1
        return token

    def parse_sequence(self, *, stop_at_close: bool) -> list[QueryNode]:
        nodes: list[QueryNode] = []
        while True:
            token = self._peek()
            if token is None:
                if stop_at_close:
                    raise QueryLanguageError("missing closing parenthesis")
                return nodes
            kind, value = token
            if kind == "close":
                if not stop_at_close:
                    raise QueryLanguageError("unbalanced closing parenthesis")
                self._advance()
                return nodes
            nodes.append(self.parse_node())

    def parse_node(self) -> QueryNode:
        kind, value = self._advance()
        if kind == "word":
            terms = self._tokenizer.tokenize(value)
            if not terms:
                raise QueryLanguageError(f"term {value!r} normalises to nothing")
            if len(terms) == 1:
                return TermNode(terms[0])
            return PhraseNode(tuple(terms))
        if kind == "quoted":
            tokens = self._tokenizer.tokenize_phrase(value)
            if not tokens:
                raise QueryLanguageError(f"phrase {value!r} normalises to nothing")
            return PhraseNode(tokens)
        if kind == "operator":
            children = self.parse_sequence(stop_at_close=True)
            if value == "#1":
                return self._phrase_from_children(children)
            if not children:
                raise QueryLanguageError(f"{value} requires at least one child")
            if value == "#combine":
                return CombineNode(tuple(children))
            return BandNode(tuple(children))
        raise QueryLanguageError(f"unexpected token {value!r}")

    @staticmethod
    def _phrase_from_children(children: list[QueryNode]) -> PhraseNode:
        tokens: list[str] = []
        for child in children:
            if isinstance(child, TermNode):
                tokens.append(child.term)
            elif isinstance(child, PhraseNode):
                tokens.extend(child.tokens)
            else:
                raise QueryLanguageError("#1(...) may contain only plain terms")
        if not tokens:
            raise QueryLanguageError("#1() requires at least one term")
        return PhraseNode(tuple(tokens))


def parse_query(query: str, tokenizer: Tokenizer | None = None) -> QueryNode:
    """Parse ``query`` into an AST.

    Multiple top-level nodes become an implicit ``#combine``; a single node
    is returned unwrapped.  Raises :class:`QueryLanguageError` on syntax
    errors or an effectively-empty query.
    """
    tokenizer = tokenizer or Tokenizer()
    parser = _Parser(_lex(query), tokenizer)
    nodes = parser.parse_sequence(stop_at_close=False)
    if not nodes:
        raise QueryLanguageError("empty query")
    if len(nodes) == 1:
        return nodes[0]
    return CombineNode(tuple(nodes))


def build_phrase_query(
    phrases: list[str], tokenizer: Tokenizer | None = None
) -> CombineNode:
    """Build the paper's expansion-query shape directly (no string parsing).

    Given article titles/keywords, produces
    ``#combine(#1(title1) #1(title2) ...)`` with single-word titles reduced
    to plain terms.  Phrases that normalise to nothing (e.g. punctuation
    only) are dropped; an entirely empty input raises.
    """
    tokenizer = tokenizer or Tokenizer()
    children: list[QueryNode] = []
    for phrase in phrases:
        tokens = tokenizer.tokenize_phrase(phrase)
        if not tokens:
            continue
        if len(tokens) == 1:
            children.append(TermNode(tokens[0]))
        else:
            children.append(PhraseNode(tokens))
    if not children:
        raise QueryLanguageError("no usable phrases in expansion query")
    return CombineNode(tuple(children))
