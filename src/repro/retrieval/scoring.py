"""Language-model document scoring (the retrieval model behind INDRI).

INDRI ranks by query likelihood: the probability the document's smoothed
unigram language model generates the query.  Two standard smoothing methods
are provided:

* **Dirichlet** (INDRI's default, ``mu`` ≈ 2500):
  ``p(t|D) = (tf + mu * p(t|C)) / (|D| + mu)``
* **Jelinek-Mercer**:
  ``p(t|D) = (1 - lam) * tf/|D| + lam * p(t|C)``

Scorers expose a uniform ``log_prob(tf, doc_length, collection_prob)`` so
the query-language evaluator can score plain terms and exact phrases the
same way (phrases bring their own counts and background probability).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "Smoothing",
    "DirichletSmoothing",
    "JelinekMercerSmoothing",
    "TwoStageSmoothing",
]


class Smoothing(ABC):
    """Interface of a smoothed unigram model."""

    @abstractmethod
    def log_prob(self, tf: int, doc_length: int, collection_prob: float) -> float:
        """Log probability of one query node given a document.

        Parameters
        ----------
        tf:
            Occurrences of the term/phrase in the document.
        doc_length:
            Document length in tokens.
        collection_prob:
            Background probability ``p(t|C)`` (must be > 0 unless the
            collection is empty).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DirichletSmoothing(Smoothing):
    """Bayesian smoothing with a Dirichlet prior (INDRI's default)."""

    def __init__(self, mu: float = 2500.0) -> None:
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        self.mu = mu

    def log_prob(self, tf: int, doc_length: int, collection_prob: float) -> float:
        if collection_prob <= 0.0:
            # Empty collection: every model degenerates; treat as near-zero.
            return -math.inf if tf == 0 else 0.0
        numerator = tf + self.mu * collection_prob
        denominator = doc_length + self.mu
        return math.log(numerator / denominator)

    def __repr__(self) -> str:
        return f"DirichletSmoothing(mu={self.mu})"


class TwoStageSmoothing(Smoothing):
    """Two-stage smoothing (Zhai & Lafferty): Dirichlet, then JM.

    Stage one smooths the document model with a Dirichlet prior (handling
    estimation sparsity); stage two interpolates with the collection
    model (handling query noise).  Useful when queries mix exact phrases
    (favouring a small ``mu``) and loose terms (favouring interpolation).
    """

    def __init__(self, mu: float = 2500.0, lam: float = 0.1) -> None:
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        if not 0.0 <= lam < 1.0:
            raise ValueError(f"lambda must be in [0, 1), got {lam}")
        self.mu = mu
        self.lam = lam

    def log_prob(self, tf: int, doc_length: int, collection_prob: float) -> float:
        if collection_prob <= 0.0:
            return -math.inf if tf == 0 else 0.0
        dirichlet = (tf + self.mu * collection_prob) / (doc_length + self.mu)
        probability = (1.0 - self.lam) * dirichlet + self.lam * collection_prob
        return math.log(probability)

    def __repr__(self) -> str:
        return f"TwoStageSmoothing(mu={self.mu}, lam={self.lam})"


class JelinekMercerSmoothing(Smoothing):
    """Linear interpolation with the collection model."""

    def __init__(self, lam: float = 0.4) -> None:
        if not 0.0 < lam < 1.0:
            raise ValueError(f"lambda must be in (0, 1), got {lam}")
        self.lam = lam

    def log_prob(self, tf: int, doc_length: int, collection_prob: float) -> float:
        if collection_prob <= 0.0:
            return -math.inf if tf == 0 else 0.0
        document_part = tf / doc_length if doc_length else 0.0
        probability = (1.0 - self.lam) * document_part + self.lam * collection_prob
        return math.log(probability) if probability > 0 else -math.inf

    def __repr__(self) -> str:
        return f"JelinekMercerSmoothing(lam={self.lam})"
