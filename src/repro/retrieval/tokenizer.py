"""Text tokenisation for indexing and query processing.

One tokenizer class is shared by the index, the query language and the
entity linker, so that a phrase tokenised at index time matches the same
phrase tokenised at query time — the property exact-phrase retrieval
depends on.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

__all__ = ["Tokenizer", "DEFAULT_STOPWORDS"]

# A deliberately small stopword list: the paper's pipeline matches article
# titles as exact phrases, and titles like "Bridge of Sighs" contain
# function words, so stopping is disabled by default and only offered for
# bag-of-words retrieval experiments.
DEFAULT_STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with""".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z0-9]+)?")
_ACCENT_MAP = str.maketrans(
    "àáâãäåèéêëìíîïòóôõöùúûüçñ",
    "aaaaaaeeeeiiiiooooouuuucn",
)


class Tokenizer:
    """Lower-cases, strips accents, and splits on non-alphanumerics.

    Parameters
    ----------
    stopwords:
        Words to drop.  ``None`` (default) keeps everything, which is what
        exact-phrase matching over titles requires.
    min_length:
        Tokens shorter than this are dropped (default 1 keeps all).
    """

    def __init__(
        self,
        stopwords: frozenset[str] | set[str] | None = None,
        min_length: int = 1,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        self._stopwords = frozenset(stopwords) if stopwords else frozenset()
        self._min_length = min_length
        # Bind the compiled machinery once at construction: tokenisation
        # is the indexing inner loop, and per-call global lookups of the
        # pattern and translation table are measurable there.
        self._finditer = _TOKEN_RE.finditer
        self._accent_map = _ACCENT_MAP
        self._filtering = bool(self._stopwords) or min_length > 1

    @property
    def stopwords(self) -> frozenset[str]:
        return self._stopwords

    @property
    def min_length(self) -> int:
        return self._min_length

    def normalize(self, text: str) -> str:
        """Lower-case and strip the accents the token pattern can't match."""
        return text.lower().translate(self._accent_map)

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens in order of appearance (filtered)."""
        min_length = self._min_length
        stopwords = self._stopwords
        for match in self._finditer(self.normalize(text)):
            token = match.group()
            if len(token) < min_length:
                continue
            if token in stopwords:
                continue
            yield token

    def tokenize(self, text: str) -> list[str]:
        """Tokenise ``text`` into a list."""
        if not self._filtering:
            # No stopping, no length filter: one findall beats a
            # generator round-trip per token.
            return _TOKEN_RE.findall(self.normalize(text))
        return list(self.iter_tokens(text))

    def tokenize_many(self, texts: Iterable[str]) -> list[list[str]]:
        """Tokenise a batch of texts (the bulk-indexing entry point)."""
        tokenize = self.tokenize
        return [tokenize(text) for text in texts]

    def tokenize_phrase(self, phrase: str) -> tuple[str, ...]:
        """Tokenise a phrase for exact matching (stopwords are *kept* even
        when the tokenizer filters them for free text: dropping 'of' from
        'Bridge of Sighs' would change what the phrase matches)."""
        return tuple(
            match.group() for match in self._finditer(self.normalize(phrase))
        )

    def __repr__(self) -> str:
        return (
            f"Tokenizer(stopwords={len(self._stopwords)}, "
            f"min_length={self._min_length})"
        )
