"""Online serving layer: snapshots, sharding, caching, and the services.

The batch harness (:mod:`repro.harness`) proves the paper's method on a
benchmark; this package turns the same components into a system that
answers ad-hoc queries online:

* :mod:`repro.service.artifacts` — versioned on-disk snapshots of the
  graph, index and linker vocabulary (cold-start from disk); one logical
  snapshot may be stored as N physical shards (:class:`ShardedSnapshot`:
  graph partitions + index segments + checksummed manifest);
* :mod:`repro.service.cache` — bounded LRU caching with hit/miss counters;
* :mod:`repro.service.server` — the thread-safe :class:`ExpansionService`
  with single-query and deduplicating batch APIs;
* :mod:`repro.service.router` — :class:`ShardRouter`, the shard-transparent
  facade that fans expansion out to shard workers and merges per-segment
  ranked lists score-preservingly;
* :mod:`repro.service.async_router` — :class:`AsyncShardRouter`, the
  asyncio counterpart (executor-backed shard adapters, ``asyncio.gather``
  scatter-gather, async request coalescing);
* :mod:`repro.service.http` — :class:`HttpFrontEnd`, the hand-rolled
  HTTP/1.1 + JSON network surface (``docs/http_api.md``);
* :mod:`repro.service.wire` / :mod:`repro.service.shard_worker` /
  :mod:`repro.service.socket_adapter` / :mod:`repro.service.supervisor` —
  out-of-process shard serving: a length-prefixed JSON frame protocol
  (``docs/shard_protocol.md``), the worker process that serves one shard
  over it, the router-side socket adapter (deadlines, retries, hedging),
  and the supervisor that spawns, health-checks and restarts workers;
* :mod:`repro.service.faults` — env/flag-driven fault injection for the
  worker frame layer (kill / stall / garbage / short write).

CLI entry points: ``python -m repro.cli serve`` (``--http PORT`` for the
network front end) and ``python -m repro.cli snapshot`` (see
:func:`repro.cli.serve_main`, :func:`repro.cli.snapshot_main`).
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.artifacts import (
    COMPACT_SNAPSHOT_VERSION,
    MANIFEST_NAME,
    SHARDED_SNAPSHOT_VERSION,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    ShardedSnapshot,
    Snapshot,
)
from repro.service.async_router import (
    SHARD_ADAPTER_ENV,
    SHARD_PROTOCOL_VERSION,
    AsyncShardRouter,
    ExecutorShardAdapter,
)
from repro.service.cache import CacheStats, LRUCache
from repro.service.faults import FaultPlan
from repro.service.http import HttpFrontEnd
from repro.service.router import RouterStats, ShardRouter
from repro.service.server import ExpansionService, ServiceResponse, ServiceStats
from repro.service.shard_worker import ShardWorkerServer, make_shard_worker
from repro.service.socket_adapter import ShardCallPolicy, SocketShardAdapter
from repro.service.supervisor import ShardSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "Snapshot",
    "ShardedSnapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SHARDED_SNAPSHOT_VERSION",
    "COMPACT_SNAPSHOT_VERSION",
    "MANIFEST_NAME",
    "CacheStats",
    "LRUCache",
    "ExpansionService",
    "ServiceResponse",
    "ServiceStats",
    "ShardRouter",
    "RouterStats",
    "AsyncShardRouter",
    "ExecutorShardAdapter",
    "HttpFrontEnd",
    "SHARD_PROTOCOL_VERSION",
    "SHARD_ADAPTER_ENV",
    "FaultPlan",
    "ShardWorkerServer",
    "make_shard_worker",
    "ShardCallPolicy",
    "SocketShardAdapter",
    "ShardSupervisor",
]
