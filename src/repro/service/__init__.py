"""Online serving layer: snapshots, sharding, caching, and the services.

The batch harness (:mod:`repro.harness`) proves the paper's method on a
benchmark; this package turns the same components into a system that
answers ad-hoc queries online:

* :mod:`repro.service.artifacts` — versioned on-disk snapshots of the
  graph, index and linker vocabulary (cold-start from disk); one logical
  snapshot may be stored as N physical shards (:class:`ShardedSnapshot`:
  graph partitions + index segments + checksummed manifest);
* :mod:`repro.service.cache` — bounded LRU caching with hit/miss counters;
* :mod:`repro.service.server` — the thread-safe :class:`ExpansionService`
  with single-query and deduplicating batch APIs;
* :mod:`repro.service.router` — :class:`ShardRouter`, the shard-transparent
  facade that fans expansion out to shard workers and merges per-segment
  ranked lists score-preservingly;
* :mod:`repro.service.async_router` — :class:`AsyncShardRouter`, the
  asyncio counterpart (executor-backed shard adapters, ``asyncio.gather``
  scatter-gather, async request coalescing);
* :mod:`repro.service.http` — :class:`HttpFrontEnd`, the hand-rolled
  HTTP/1.1 + JSON network surface (``docs/http_api.md``).

CLI entry points: ``python -m repro.cli serve`` (``--http PORT`` for the
network front end) and ``python -m repro.cli snapshot`` (see
:func:`repro.cli.serve_main`, :func:`repro.cli.snapshot_main`).
"""

from repro.service.artifacts import (
    COMPACT_SNAPSHOT_VERSION,
    MANIFEST_NAME,
    SHARDED_SNAPSHOT_VERSION,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    ShardedSnapshot,
    Snapshot,
)
from repro.service.async_router import (
    SHARD_PROTOCOL_VERSION,
    AsyncShardRouter,
    ExecutorShardAdapter,
)
from repro.service.cache import CacheStats, LRUCache
from repro.service.http import HttpFrontEnd
from repro.service.router import RouterStats, ShardRouter
from repro.service.server import ExpansionService, ServiceResponse, ServiceStats

__all__ = [
    "Snapshot",
    "ShardedSnapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SHARDED_SNAPSHOT_VERSION",
    "COMPACT_SNAPSHOT_VERSION",
    "MANIFEST_NAME",
    "CacheStats",
    "LRUCache",
    "ExpansionService",
    "ServiceResponse",
    "ServiceStats",
    "ShardRouter",
    "RouterStats",
    "AsyncShardRouter",
    "ExecutorShardAdapter",
    "HttpFrontEnd",
    "SHARD_PROTOCOL_VERSION",
]
