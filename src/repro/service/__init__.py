"""Online serving layer: snapshots, caching, and the expansion service.

The batch harness (:mod:`repro.harness`) proves the paper's method on a
benchmark; this package turns the same components into a system that
answers ad-hoc queries online:

* :mod:`repro.service.artifacts` — versioned on-disk snapshots of the
  graph, index and linker vocabulary (cold-start from disk);
* :mod:`repro.service.cache` — bounded LRU caching with hit/miss counters;
* :mod:`repro.service.server` — the thread-safe :class:`ExpansionService`
  with single-query and deduplicating batch APIs.

CLI entry point: ``python -m repro.cli serve`` (see :func:`repro.cli.serve_main`).
"""

from repro.service.artifacts import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    Snapshot,
)
from repro.service.cache import CacheStats, LRUCache
from repro.service.server import ExpansionService, ServiceResponse, ServiceStats

__all__ = [
    "Snapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "MANIFEST_NAME",
    "CacheStats",
    "LRUCache",
    "ExpansionService",
    "ServiceResponse",
    "ServiceStats",
]
