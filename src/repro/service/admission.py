"""Load shedding and per-client admission control for the HTTP front end.

Two independent gates protect the serving stack once real overload
arrives (the loadgen harness in :mod:`repro.loadgen` is what generates
it; ``docs/loadgen.md`` shows the two proven working together):

* **bounded admission queue** — at most ``queue_limit`` sheddable
  requests (``POST /expand`` / ``/search`` / ``/batch_expand``) may be
  in flight at once.  Request ``queue_limit + 1`` is refused *before*
  any router work happens with a structured ``429 over_capacity`` and a
  ``Retry-After`` header, so an overloaded server degrades into cheap
  refusals instead of unbounded queueing;
* **per-client token buckets** — each client (the ``X-Client-Id``
  request header, falling back to the peer address) earns
  ``client_rate`` admissions per second up to a burst of
  ``client_burst``.  A flooding client exhausts *its own* bucket and is
  refused with ``429 client_rate_limited`` while polite clients keep
  being admitted — one greedy client cannot starve the rest or eat the
  whole queue.

The client gate runs first (a flood is attributed to its sender), the
queue second (the global backstop).  Both outcomes are counted in
``repro_shed_total{reason}`` and surfaced in ``/healthz``, ``/stats``
and the ``shed.`` line of ``repro top``.

Everything here is deterministic given a ``clock``: tests inject a fake
monotonic clock and assert exact admit/refuse sequences.  The default
(``AdmissionPolicy()``, both knobs ``None``) disables both gates, which
is also what :class:`~repro.service.http.HttpFrontEnd` does when no
policy is attached.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ServiceError

__all__ = ["AdmissionPolicy", "AdmissionDecision", "AdmissionController",
           "SHED_OVER_CAPACITY", "SHED_CLIENT_RATE"]

SHED_OVER_CAPACITY = "over_capacity"
SHED_CLIENT_RATE = "client_rate_limited"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tuning knobs (``docs/operations.md`` has sizing guidance).

    ``queue_limit`` bounds concurrently admitted sheddable requests;
    ``client_rate``/``client_burst`` parameterise the per-client token
    buckets.  A ``None`` limit/rate disables that gate; both ``None``
    (the default) disables admission control entirely.
    """

    queue_limit: int | None = None
    client_rate: float | None = None
    client_burst: float = 8.0
    # Retry-After for queue refusals; bucket refusals compute their own
    # (time until the client's next token accrues).
    retry_after_s: float = 1.0
    # Bound on the bucket table so arbitrary client ids cannot grow
    # memory without limit; the least-recently-seen client is evicted.
    max_tracked_clients: int = 4096

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ServiceError("queue_limit must be >= 1 (or None to disable)")
        if self.client_rate is not None and self.client_rate <= 0:
            raise ServiceError("client_rate must be > 0 (or None to disable)")
        if self.client_burst < 1:
            raise ServiceError("client_burst must be >= 1")
        if self.retry_after_s <= 0:
            raise ServiceError("retry_after_s must be > 0")
        if self.max_tracked_clients < 1:
            raise ServiceError("max_tracked_clients must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.queue_limit is not None or self.client_rate is not None


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    On refusal, ``reason`` is the machine-readable error code served in
    the 429 envelope and ``retry_after_s`` the wait the client is told.
    """

    admitted: bool
    reason: str | None = None
    retry_after_s: float = 0.0


class _TokenBucket:
    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class AdmissionController:
    """Admission state: the in-flight count plus per-client buckets.

    ``admit()`` either takes one queue slot (caller MUST pair it with
    ``release()``) or refuses with a reason; nothing else mutates the
    queue depth.  Thread-safe — the HTTP front end calls it from the
    event loop, but ``/stats`` snapshots and tests may come from other
    threads.
    """

    def __init__(
        self, policy: AdmissionPolicy, *, clock=time.monotonic
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak_inflight = 0
        self._shed: dict[str, int] = {}
        # client id -> bucket, ordered by last admission attempt so the
        # table can evict the least-recently-seen client when full.
        self._buckets: dict[str, _TokenBucket] = {}

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------

    def admit(self, client: str) -> AdmissionDecision:
        """One sheddable request asks in; refusals never take a slot."""
        policy = self.policy
        with self._lock:
            if policy.client_rate is not None:
                wait = self._take_token(client or "-", policy)
                if wait is not None:
                    self._shed[SHED_CLIENT_RATE] = \
                        self._shed.get(SHED_CLIENT_RATE, 0) + 1
                    return AdmissionDecision(
                        False, SHED_CLIENT_RATE, retry_after_s=wait
                    )
            if policy.queue_limit is not None \
                    and self._inflight >= policy.queue_limit:
                self._shed[SHED_OVER_CAPACITY] = \
                    self._shed.get(SHED_OVER_CAPACITY, 0) + 1
                return AdmissionDecision(
                    False, SHED_OVER_CAPACITY,
                    retry_after_s=policy.retry_after_s,
                )
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            return AdmissionDecision(True)

    def release(self) -> None:
        """Return the slot of one previously admitted request."""
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    def _take_token(self, client: str, policy: AdmissionPolicy) -> float | None:
        """Refill-then-spend on the client's bucket; returns the wait in
        seconds until the next token when the bucket is empty, None when
        a token was spent.  Caller holds the lock."""
        now = self._clock()
        bucket = self._buckets.pop(client, None)
        if bucket is None:
            bucket = _TokenBucket(float(policy.client_burst), now)
        else:
            bucket.tokens = min(
                float(policy.client_burst),
                bucket.tokens + (now - bucket.updated) * policy.client_rate,
            )
            bucket.updated = now
        # Re-insertion keeps the table ordered by last attempt (LRU).
        self._buckets[client] = bucket
        while len(self._buckets) > policy.max_tracked_clients:
            del self._buckets[next(iter(self._buckets))]
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            return None
        return max(
            (1.0 - bucket.tokens) / policy.client_rate, 0.001
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def shed_total(self) -> int:
        with self._lock:
            return sum(self._shed.values())

    def snapshot(self) -> dict:
        """JSON-ready state for ``/healthz``, ``/stats`` and the
        dashboard's ``shed.`` line."""
        policy = self.policy
        with self._lock:
            return {
                "queue_depth": self._inflight,
                "queue_limit": policy.queue_limit,
                "peak_queue_depth": self._peak_inflight,
                "client_rate": policy.client_rate,
                "client_burst": policy.client_burst,
                "clients_tracked": len(self._buckets),
                "shed_total": sum(self._shed.values()),
                "shed_by_reason": dict(sorted(self._shed.items())),
            }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(queue={self.queue_depth}/"
            f"{self.policy.queue_limit}, shed={self.shed_total})"
        )
