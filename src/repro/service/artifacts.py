"""Persistent service artifacts: versioned on-disk snapshots.

A :class:`Snapshot` bundles everything the online service needs to answer
queries — the knowledge graph, the positional index, the entity-linker
vocabulary, and the document display names — so a service process
cold-starts by reading files instead of regenerating the synthetic
benchmark and re-indexing the collection.  Layout::

    snapshot/
      manifest.json     # format name, version, engine mu, artefact counts
      wiki.jsonl.gz     # WikiGraph (repro.wiki.dump format)
      index.json.gz     # PositionalIndex payload
      linker.json.gz    # entity-linker vocabulary (tokenised title -> id)
      documents.json.gz # doc_id -> display name

The manifest is read first and gates everything else: a missing manifest,
an unknown format name, or a version other than :data:`SNAPSHOT_VERSION`
raises :class:`~repro.errors.SnapshotError` with a message naming the
problem, *before* any of the heavier artefacts are parsed.  Counts in the
manifest are cross-checked after loading so silently truncated files are
caught instead of serving wrong results.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import DumpFormatError, SnapshotError
from repro.linking.linker import EntityLinker
from repro.retrieval.engine import SearchEngine
from repro.retrieval.index import PositionalIndex
from repro.retrieval.scoring import DirichletSmoothing, Smoothing
from repro.wiki.dump import read_graph, write_graph
from repro.wiki.graph import WikiGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.collection.benchmark import Benchmark

__all__ = ["Snapshot", "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "MANIFEST_NAME"]

SNAPSHOT_FORMAT = "repro-expansion-snapshot"
SNAPSHOT_VERSION = 1
MANIFEST_NAME = "manifest.json"

_GRAPH_NAME = "wiki.jsonl.gz"
_INDEX_NAME = "index.json.gz"
_LINKER_NAME = "linker.json.gz"
_DOCUMENTS_NAME = "documents.json.gz"


def _write_json_gz(path: Path, payload: dict) -> None:
    with gzip.open(path, "wt", encoding="utf-8") as out:
        json.dump(payload, out, ensure_ascii=False)


def _read_json_gz(path: Path) -> dict:
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"snapshot is missing {path.name}") from None
    # EOFError: gzip stream truncated (not an OSError subclass).
    except (OSError, EOFError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot file {path.name} is corrupt: {exc}") from exc


@dataclass(slots=True)
class Snapshot:
    """All artefacts of one servable expansion system.

    ``mu`` records the Dirichlet prior the index was intended to be served
    with, so a reloaded engine ranks identically to the one used when the
    snapshot was built.
    """

    graph: WikiGraph
    index: PositionalIndex
    title_index: dict[tuple[str, ...], int]
    doc_names: dict[str, str]
    mu: float

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, benchmark: "Benchmark", *, mu: float | None = None) -> "Snapshot":
        """Derive a snapshot from a benchmark (index + linker vocabulary)."""
        from repro.collection.benchmark import DEFAULT_ENGINE_MU

        resolved_mu = DEFAULT_ENGINE_MU if mu is None else mu
        engine = benchmark.build_engine(smoothing=DirichletSmoothing(mu=resolved_mu))
        linker = EntityLinker(benchmark.graph)
        return cls(
            graph=benchmark.graph,
            index=engine.index,
            title_index=linker.vocabulary(),
            doc_names={
                doc_id: benchmark.documents[doc_id].name
                for doc_id in sorted(benchmark.documents)
            },
            mu=resolved_mu,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Write all artefacts into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Invalidate any existing snapshot before touching its artefacts:
        # combined with writing the manifest last, a crash mid-save always
        # leaves a directory load() rejects as "missing manifest" instead
        # of a torn mix of old and new artefacts that parses.
        (directory / MANIFEST_NAME).unlink(missing_ok=True)
        write_graph(self.graph, directory / _GRAPH_NAME)
        _write_json_gz(directory / _INDEX_NAME, self.index.to_payload())
        _write_json_gz(
            directory / _LINKER_NAME,
            {"entries": [[list(tokens), article_id]
                         for tokens, article_id in sorted(self.title_index.items())]},
        )
        _write_json_gz(directory / _DOCUMENTS_NAME, dict(sorted(self.doc_names.items())))
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "mu": self.mu,
            "counts": {
                "articles": self.graph.num_articles,
                "categories": self.graph.num_categories,
                "edges": self.graph.num_edges,
                "documents": self.index.num_documents,
                "titles": len(self.title_index),
            },
        }
        # The manifest is written last: a crash mid-save leaves a directory
        # that load() rejects as "missing manifest" rather than a torn
        # snapshot that parses.
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "Snapshot":
        """Load a snapshot written by :meth:`save`.

        Raises :class:`SnapshotError` on a missing/foreign/mismatched
        manifest, missing artefact files, or count mismatches.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise SnapshotError(
                f"{directory} is not a snapshot directory (missing {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot manifest is not valid JSON: {exc}") from exc
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unknown snapshot format {manifest.get('format')!r} "
                f"(expected {SNAPSHOT_FORMAT!r})"
            )
        found_version = manifest.get("version")
        if found_version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot at {directory} has version {found_version!r}; this build "
                f"reads version {SNAPSHOT_VERSION} — rebuild the snapshot with "
                f"`repro serve --build`"
            )
        mu = float(manifest.get("mu", 0.0))
        if mu <= 0:
            raise SnapshotError(f"snapshot manifest has invalid mu: {manifest.get('mu')!r}")

        graph_path = directory / _GRAPH_NAME
        if not graph_path.exists():
            raise SnapshotError(f"snapshot is missing {_GRAPH_NAME}")
        try:
            graph = read_graph(graph_path)
        except (DumpFormatError, OSError, EOFError) as exc:
            raise SnapshotError(
                f"snapshot file {_GRAPH_NAME} is corrupt: {exc}"
            ) from exc
        index = PositionalIndex.from_payload(_read_json_gz(directory / _INDEX_NAME))
        linker_payload = _read_json_gz(directory / _LINKER_NAME)
        try:
            title_index = {
                tuple(str(t) for t in tokens): int(article_id)
                for tokens, article_id in linker_payload["entries"]
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"snapshot file {_LINKER_NAME} is malformed: {exc}") from exc
        doc_names = {
            str(doc_id): str(name)
            for doc_id, name in _read_json_gz(directory / _DOCUMENTS_NAME).items()
        }

        snapshot = cls(
            graph=graph, index=index, title_index=title_index,
            doc_names=doc_names, mu=mu,
        )
        snapshot._check_counts(manifest.get("counts", {}), directory)
        return snapshot

    def _check_counts(self, counts: dict, directory: Path) -> None:
        actual = {
            "articles": self.graph.num_articles,
            "categories": self.graph.num_categories,
            "edges": self.graph.num_edges,
            "documents": self.index.num_documents,
            "titles": len(self.title_index),
        }
        for key, expected in counts.items():
            if key in actual and actual[key] != expected:
                raise SnapshotError(
                    f"snapshot at {directory} is inconsistent: manifest declares "
                    f"{expected} {key}, artefacts contain {actual[key]}"
                )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def make_engine(self, smoothing: Smoothing | None = None) -> SearchEngine:
        """A ready engine over the stored index (no re-indexing)."""
        return SearchEngine(
            smoothing=smoothing or DirichletSmoothing(mu=self.mu),
            index=self.index,
        )

    def make_linker(self, **kwargs) -> EntityLinker:
        """A ready linker from the stored vocabulary (no title rescan)."""
        return EntityLinker(self.graph, title_index=self.title_index, **kwargs)

    def __repr__(self) -> str:
        return (
            f"Snapshot(graph={self.graph!r}, docs={self.index.num_documents}, "
            f"titles={len(self.title_index)}, mu={self.mu})"
        )
