"""Persistent service artifacts: versioned on-disk snapshots.

A :class:`Snapshot` bundles everything the online service needs to answer
queries — the knowledge graph, the positional index, the entity-linker
vocabulary, and the document display names — so a service process
cold-starts by reading files instead of regenerating the synthetic
benchmark and re-indexing the collection.  Layout::

    snapshot/
      manifest.json     # format name, version, engine mu, artefact counts
      wiki.jsonl.gz     # WikiGraph (repro.wiki.dump format)
      index.json.gz     # PositionalIndex payload
      linker.json.gz    # entity-linker vocabulary (tokenised title -> id)
      documents.json.gz # doc_id -> display name

The manifest is read first and gates everything else: a missing manifest,
an unknown format name, or a version other than :data:`SNAPSHOT_VERSION`
raises :class:`~repro.errors.SnapshotError` with a message naming the
problem, *before* any of the heavier artefacts are parsed.  Counts in the
manifest are cross-checked after loading so silently truncated files are
caught instead of serving wrong results.

:class:`ShardedSnapshot` is the partitioned evolution of the format: one
logical snapshot stored as N physical shards (graph partitions + index
segments) behind one manifest.  Version 3 — the current write format —
additionally stores the *compact* read-path artefacts as binary blobs
that load through ``mmap`` instead of being parsed posting by posting.
Layout::

    snapshot/
      manifest.json       # version 3: shards, global counts, checksums
      linker.json.gz      # shared entity-linker vocabulary
      documents.json.gz   # shared doc_id -> display name
      graph.bin           # CompactGraphView blob (CSR typed adjacency)
      shard-0000/
        partition.json.gz # GraphPartition payload (core + halo + edges)
        index.bin         # CompactIndex blob (interned CSR postings)
        prefill.json.gz   # precomputed expansions (only when prefilled)
      shard-0001/ ...

The manifest records a sha256 checksum for every shard artefact and
shared file; load verifies them before parsing, so a bit-rotted shard
can never serve silently wrong results.  The manifest is still written
last.  Older directories remain loadable: version-1 snapshots read as a
single shard and version-2 snapshots parse their JSON segments, and both
are *frozen on load* into the compact read path, so every loaded
snapshot serves from the same array-backed structures.

All three on-disk versions, the blob container and the migration rules
are documented in ``docs/architecture.md`` ("On-disk snapshot formats").
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from collections.abc import Iterable
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.cycles import Cycle
from repro.core.expansion import (
    Expander,
    ExpansionResult,
    NeighborhoodCycleExpander,
    expander_fingerprint,
)
from repro.core.features import CycleFeatures
from repro.errors import DumpFormatError, ReproError, SnapshotError
from repro.linking.linker import EntityLinker
from repro.retrieval.compact import CompactIndex
from repro.retrieval.engine import SearchEngine
from repro.retrieval.index import PositionalIndex
from repro.retrieval.scoring import DirichletSmoothing, Smoothing
from repro.wiki.compact import CompactGraphView
from repro.wiki.dump import read_graph, write_graph
from repro.wiki.graph import WikiGraph
from repro.wiki.partition import (
    GraphPartition,
    PartitionedGraphView,
    partition_graph,
    shard_of_document,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.collection.benchmark import Benchmark

__all__ = [
    "Snapshot",
    "ShardedSnapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SHARDED_SNAPSHOT_VERSION",
    "COMPACT_SNAPSHOT_VERSION",
    "MANIFEST_NAME",
    "CURRENT_POINTER_NAME",
    "generation_dir_name",
    "resolve_snapshot_dir",
    "write_current_pointer",
]

SNAPSHOT_FORMAT = "repro-expansion-snapshot"
SNAPSHOT_VERSION = 1
SHARDED_SNAPSHOT_VERSION = 2
COMPACT_SNAPSHOT_VERSION = 3
MANIFEST_NAME = "manifest.json"

_GRAPH_NAME = "wiki.jsonl.gz"
_INDEX_NAME = "index.json.gz"
_LINKER_NAME = "linker.json.gz"
_DOCUMENTS_NAME = "documents.json.gz"
_PARTITION_NAME = "partition.json.gz"
_INDEX_BLOB_NAME = "index.bin"
_GRAPH_BLOB_NAME = "graph.bin"
_PREFILL_NAME = "prefill.json.gz"

# One shard's prefilled expansions: (seed set, precomputed result) pairs.
PrefillEntries = tuple[tuple[frozenset[int], ExpansionResult], ...]


def _write_json_gz(path: Path, payload: dict) -> None:
    with gzip.open(path, "wt", encoding="utf-8") as out:
        json.dump(payload, out, ensure_ascii=False)


def _read_json_gz(path: Path) -> dict:
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"snapshot is missing {path.name}") from None
    # EOFError: gzip stream truncated (not an OSError subclass).
    except (OSError, EOFError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot file {path.name} is corrupt: {exc}") from exc


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _linker_payload(title_index: dict[tuple[str, ...], int]) -> dict:
    return {"entries": [[list(tokens), article_id]
                        for tokens, article_id in sorted(title_index.items())]}


def _parse_linker_payload(payload: dict) -> dict[tuple[str, ...], int]:
    try:
        return {
            tuple(str(t) for t in tokens): int(article_id)
            for tokens, article_id in payload["entries"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"snapshot file {_LINKER_NAME} is malformed: {exc}") from exc


def _prefill_payload(entries: PrefillEntries, expander: str) -> dict:
    """JSON-ready dump of one shard's precomputed expansions."""
    return {
        "expander": expander,
        "entries": [
            {
                "seeds": sorted(seeds),
                "articles": sorted(result.article_ids),
                "titles": list(result.titles),
                "cycles": [
                    {
                        "nodes": list(features.cycle.nodes),
                        "counts": [
                            features.num_articles,
                            features.num_categories,
                            features.num_edges,
                            features.max_possible_edges,
                        ],
                    }
                    for features in result.cycles
                ],
            }
            for seeds, result in entries
        ]
    }


def _parse_prefill_payload(payload: dict) -> PrefillEntries:
    try:
        entries = []
        for record in payload["entries"]:
            seeds = frozenset(int(node) for node in record["seeds"])
            cycles = tuple(
                CycleFeatures(
                    cycle=Cycle(tuple(int(n) for n in item["nodes"])),
                    num_articles=int(item["counts"][0]),
                    num_categories=int(item["counts"][1]),
                    num_edges=int(item["counts"][2]),
                    max_possible_edges=int(item["counts"][3]),
                )
                for item in record["cycles"]
            )
            result = ExpansionResult(
                seed_articles=seeds,
                article_ids=frozenset(int(a) for a in record["articles"]),
                titles=tuple(str(t) for t in record["titles"]),
                cycles=cycles,
            )
            entries.append((seeds, result))
        return tuple(entries)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SnapshotError(f"snapshot file {_PREFILL_NAME} is malformed: {exc}") from exc


@dataclass(slots=True)
class Snapshot:
    """All artefacts of one servable expansion system.

    ``mu`` records the Dirichlet prior the index was intended to be served
    with, so a reloaded engine ranks identically to the one used when the
    snapshot was built.
    """

    graph: WikiGraph
    index: PositionalIndex
    title_index: dict[tuple[str, ...], int]
    doc_names: dict[str, str]
    mu: float

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, benchmark: "Benchmark", *, mu: float | None = None) -> "Snapshot":
        """Derive a snapshot from a benchmark (index + linker vocabulary)."""
        from repro.collection.benchmark import DEFAULT_ENGINE_MU

        resolved_mu = DEFAULT_ENGINE_MU if mu is None else mu
        engine = benchmark.build_engine(smoothing=DirichletSmoothing(mu=resolved_mu))
        linker = EntityLinker(benchmark.graph)
        return cls(
            graph=benchmark.graph,
            index=engine.index,
            title_index=linker.vocabulary(),
            doc_names={
                doc_id: benchmark.documents[doc_id].name
                for doc_id in sorted(benchmark.documents)
            },
            mu=resolved_mu,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Write all artefacts into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Invalidate any existing snapshot before touching its artefacts:
        # combined with writing the manifest last, a crash mid-save always
        # leaves a directory load() rejects as "missing manifest" instead
        # of a torn mix of old and new artefacts that parses.
        (directory / MANIFEST_NAME).unlink(missing_ok=True)
        write_graph(self.graph, directory / _GRAPH_NAME)
        _write_json_gz(directory / _INDEX_NAME, self.index.to_payload())
        _write_json_gz(directory / _LINKER_NAME, _linker_payload(self.title_index))
        _write_json_gz(directory / _DOCUMENTS_NAME, dict(sorted(self.doc_names.items())))
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "mu": self.mu,
            "counts": {
                "articles": self.graph.num_articles,
                "categories": self.graph.num_categories,
                "edges": self.graph.num_edges,
                "documents": self.index.num_documents,
                "titles": len(self.title_index),
            },
        }
        # The manifest is written last: a crash mid-save leaves a directory
        # that load() rejects as "missing manifest" rather than a torn
        # snapshot that parses.
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "Snapshot":
        """Load a snapshot written by :meth:`save`.

        Raises :class:`SnapshotError` on a missing/foreign/mismatched
        manifest, missing artefact files, or count mismatches.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise SnapshotError(
                f"{directory} is not a snapshot directory (missing {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot manifest is not valid JSON: {exc}") from exc
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unknown snapshot format {manifest.get('format')!r} "
                f"(expected {SNAPSHOT_FORMAT!r})"
            )
        found_version = manifest.get("version")
        if found_version in (SHARDED_SNAPSHOT_VERSION, COMPACT_SNAPSHOT_VERSION) \
                and "shards" in manifest:
            raise SnapshotError(
                f"snapshot at {directory} is a sharded snapshot "
                f"({manifest['shards']} shards); load it with ShardedSnapshot.load "
                f"or serve it with `repro serve`"
            )
        if found_version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot at {directory} has version {found_version!r}; this build "
                f"reads version {SNAPSHOT_VERSION} — rebuild the snapshot with "
                f"`repro serve --build`"
            )
        mu = float(manifest.get("mu", 0.0))
        if mu <= 0:
            raise SnapshotError(f"snapshot manifest has invalid mu: {manifest.get('mu')!r}")

        graph_path = directory / _GRAPH_NAME
        if not graph_path.exists():
            raise SnapshotError(f"snapshot is missing {_GRAPH_NAME}")
        try:
            graph = read_graph(graph_path)
        except (DumpFormatError, OSError, EOFError) as exc:
            raise SnapshotError(
                f"snapshot file {_GRAPH_NAME} is corrupt: {exc}"
            ) from exc
        index = PositionalIndex.from_payload(_read_json_gz(directory / _INDEX_NAME))
        title_index = _parse_linker_payload(_read_json_gz(directory / _LINKER_NAME))
        doc_names = {
            str(doc_id): str(name)
            for doc_id, name in _read_json_gz(directory / _DOCUMENTS_NAME).items()
        }

        snapshot = cls(
            graph=graph, index=index, title_index=title_index,
            doc_names=doc_names, mu=mu,
        )
        snapshot._check_counts(manifest.get("counts", {}), directory)
        return snapshot

    def _check_counts(self, counts: dict, directory: Path) -> None:
        actual = {
            "articles": self.graph.num_articles,
            "categories": self.graph.num_categories,
            "edges": self.graph.num_edges,
            "documents": self.index.num_documents,
            "titles": len(self.title_index),
        }
        for key, expected in counts.items():
            if key in actual and actual[key] != expected:
                raise SnapshotError(
                    f"snapshot at {directory} is inconsistent: manifest declares "
                    f"{expected} {key}, artefacts contain {actual[key]}"
                )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def make_engine(self, smoothing: Smoothing | None = None) -> SearchEngine:
        """A ready engine over the stored index (no re-indexing)."""
        return SearchEngine(
            smoothing=smoothing or DirichletSmoothing(mu=self.mu),
            index=self.index,
        )

    def make_linker(self, **kwargs) -> EntityLinker:
        """A ready linker from the stored vocabulary (no title rescan)."""
        return EntityLinker(self.graph, title_index=self.title_index, **kwargs)

    def __repr__(self) -> str:
        return (
            f"Snapshot(graph={self.graph!r}, docs={self.index.num_documents}, "
            f"titles={len(self.title_index)}, mu={self.mu})"
        )


def _shard_dir_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


# ----------------------------------------------------------------------
# Snapshot generations (live updates / hot swap, docs/live_updates.md)
# ----------------------------------------------------------------------
#
# Compaction folds an applied delta overlay into a *new generation* of
# the same logical snapshot: ``<dir>/gen-0002/`` written in full, then
# the one-line ``CURRENT`` pointer file swapped atomically.  A snapshot
# directory without a pointer serves its own top-level manifest (the
# layout every earlier release wrote), so generations are strictly
# opt-in and appear only after the first compaction.

CURRENT_POINTER_NAME = "CURRENT"


def generation_dir_name(generation: int) -> str:
    return f"gen-{generation:04d}"


def resolve_snapshot_dir(directory: str | Path) -> Path:
    """Follow the ``CURRENT`` generation pointer, if one exists.

    Returns the directory whose manifest should be loaded: the pointed-at
    generation subdirectory when ``CURRENT`` is present and sane, the
    directory itself otherwise.  Workers, the supervisor and the delta
    log all resolve through here so every process agrees on which
    generation "the snapshot" currently means.
    """
    directory = Path(directory)
    pointer = directory / CURRENT_POINTER_NAME
    if not pointer.is_file():
        return directory
    name = pointer.read_text(encoding="utf-8").strip()
    if not name or "/" in name or "\\" in name or name.startswith("."):
        raise SnapshotError(
            f"snapshot generation pointer {pointer} is malformed: {name!r}"
        )
    resolved = directory / name
    if not (resolved / MANIFEST_NAME).exists():
        raise SnapshotError(
            f"snapshot generation pointer names {name!r}, but "
            f"{resolved / MANIFEST_NAME} does not exist"
        )
    return resolved


def write_current_pointer(directory: str | Path, generation: int) -> Path:
    """Atomically point ``directory`` at ``gen-<generation>`` (the hot swap)."""
    directory = Path(directory)
    name = generation_dir_name(generation)
    if not (directory / name / MANIFEST_NAME).exists():
        raise SnapshotError(
            f"refusing to point {directory} at {name}: no manifest there"
        )
    pointer = directory / CURRENT_POINTER_NAME
    tmp = directory / (CURRENT_POINTER_NAME + ".tmp")
    tmp.write_text(name + "\n", encoding="utf-8")
    os.replace(tmp, pointer)
    return pointer


def _split_index(index: PositionalIndex, num_shards: int) -> list[PositionalIndex]:
    """Split one index into per-shard segments by document hash.

    Per-segment collection statistics are recomputed by ``from_payload``,
    so summing them across segments reproduces the monolithic statistics
    exactly (same integer counts, same totals).
    """
    doc_shard = {
        doc_id: shard_of_document(doc_id, num_shards) for doc_id in index.doc_ids()
    }
    payloads: list[dict] = [
        {"documents": [], "postings": {}} for _ in range(num_shards)
    ]
    for doc_id, shard in doc_shard.items():
        payloads[shard]["documents"].append([doc_id, index.document_length(doc_id)])
    for term in index.terms():
        for posting in index.postings(term):
            shard_payload = payloads[doc_shard[posting.doc_id]]
            shard_payload["postings"].setdefault(term, {})[posting.doc_id] = \
                posting.positions
    return [
        PositionalIndex.from_payload(payload, tokenizer=index.tokenizer)
        for payload in payloads
    ]


@dataclass(slots=True)
class ShardedSnapshot:
    """One logical snapshot stored and served as N physical shards.

    Each shard pairs a :class:`GraphPartition` (core nodes + halo + every
    incident edge) with the index segment of the documents hashed to it —
    a :class:`PositionalIndex` on the build path, a :class:`CompactIndex`
    once frozen (``frozen()``, or any load).  The linker vocabulary and
    document names are shared across shards.  ``view()`` reassembles the
    exact logical graph; ``compact_graph`` is its frozen CSR adjacency;
    ``prefills`` optionally carries expansions precomputed per owner
    shard (``with_prefill``).  The router in :mod:`repro.service.router`
    serves queries over the shards without ever materialising the
    monolithic index.
    """

    partitions: tuple[GraphPartition, ...]
    segments: tuple[PositionalIndex | CompactIndex, ...]
    title_index: dict[tuple[str, ...], int]
    doc_names: dict[str, str]
    mu: float
    # Warm-cache prefill: per shard, the expansions precomputed at build
    # time for that shard's owned seed sets (empty tuple = no prefill).
    prefills: tuple[PrefillEntries, ...] = field(default=())
    # Fingerprint (class + configuration) of the expander that computed
    # the prefills.  Serving layers skip warm-up when their configured
    # expander's fingerprint differs, so neither a custom expander nor a
    # re-parameterised default ever silently serves another strategy's
    # cached results ("" = no prefill recorded).
    prefill_expander: str = ""
    # Frozen CSR adjacency of the whole logical graph; populated by
    # ``frozen()`` and by the version-3 loader.
    compact_graph: CompactGraphView | None = field(default=None, compare=False)
    # On-disk format this snapshot came from (1/2/3), set by load() and
    # save(); None = built in memory and never persisted.  Serving layers
    # surface it (`serve` startup line, /healthz) so operators can tell
    # which layout a live process actually loaded.
    source_version: int | None = field(default=None, compare=False)
    # Live-update generation (docs/live_updates.md): 1 for a freshly
    # built snapshot, incremented each time a delta overlay is compacted
    # into a new on-disk generation.  Deltas are validated against it,
    # /healthz and /metrics surface it, and the hot swap advances it.
    generation: int = field(default=1, compare=False)

    def __post_init__(self) -> None:
        if len(self.partitions) != len(self.segments):
            raise SnapshotError(
                f"shard mismatch: {len(self.partitions)} graph partitions vs "
                f"{len(self.segments)} index segments"
            )
        if not self.partitions:
            raise SnapshotError("a sharded snapshot needs >= 1 shard")
        if self.prefills and len(self.prefills) != len(self.partitions):
            raise SnapshotError(
                f"shard mismatch: {len(self.prefills)} prefill entries vs "
                f"{len(self.partitions)} shards"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.partitions)

    @property
    def num_documents(self) -> int:
        return sum(segment.num_documents for segment in self.segments)

    @classmethod
    def build(
        cls, benchmark: "Benchmark", *, num_shards: int, mu: float | None = None
    ) -> "ShardedSnapshot":
        """Partition a benchmark into ``num_shards`` servable shards."""
        return cls.from_snapshot(Snapshot.build(benchmark, mu=mu), num_shards)

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot, num_shards: int) -> "ShardedSnapshot":
        """Shard a monolithic snapshot (the migration path for v1 dirs)."""
        if num_shards < 1:
            raise SnapshotError("num_shards must be >= 1")
        if num_shards == 1:
            # Single shard IS the monolithic snapshot: reuse its graph and
            # index directly instead of re-partitioning and round-tripping
            # every posting — v1 cold starts must cost what they used to.
            graph = snapshot.graph
            partition = GraphPartition(
                shard_id=0,
                num_shards=1,
                graph=graph,
                core_articles=frozenset(a.node_id for a in graph.articles()),
                core_categories=frozenset(c.node_id for c in graph.categories()),
            )
            partitions: tuple[GraphPartition, ...] = (partition,)
            segments: tuple[PositionalIndex, ...] = (snapshot.index,)
        else:
            partitions = tuple(partition_graph(snapshot.graph, num_shards))
            segments = tuple(_split_index(snapshot.index, num_shards))
        return cls(
            partitions=partitions,
            segments=segments,
            title_index=dict(snapshot.title_index),
            doc_names=dict(snapshot.doc_names),
            mu=snapshot.mu,
        )

    # ------------------------------------------------------------------
    # Compact read path
    # ------------------------------------------------------------------

    def frozen(self) -> "ShardedSnapshot":
        """This snapshot with every read-path artefact in compact form.

        Index segments are interned into :class:`CompactIndex` and the
        logical graph's adjacency into one :class:`CompactGraphView`.
        Idempotent and cheap when already frozen (version-3 loads are);
        the partitions (the write path and the linker's graph) are kept
        as they are.
        """
        segments_frozen = all(
            isinstance(segment, CompactIndex) for segment in self.segments
        )
        if segments_frozen and self.compact_graph is not None:
            return self
        return replace(
            self,
            segments=tuple(
                CompactIndex.from_index(segment) for segment in self.segments
            ),
            compact_graph=self.compact_graph or CompactGraphView.from_graph(self.view()),
        )

    def with_prefill(
        self, queries: Iterable[str], expander: Expander | None = None
    ) -> "ShardedSnapshot":
        """Precompute expansions for ``queries`` and ship them per shard.

        Each query is entity-linked with this snapshot's vocabulary; the
        resulting seed sets are grouped by *owner shard* (the shard of
        the smallest seed id — exactly the routing rule
        :class:`~repro.service.router.ShardRouter` applies), expanded
        once with ``expander`` (default: the paper-tuned
        :class:`~repro.core.expansion.NeighborhoodCycleExpander`, the
        same default the serving layer uses — pass the serving expander
        when it is customised; the expander's class name is recorded and
        serving layers skip warm-up on a mismatch), and stored inside
        the owning shard.  A
        cold-started service warms its expansion caches from these
        entries, so the prefilled queries hit at cached-tier latency
        from the first request on.

        Queries that link to no entity are skipped (the keyword fallback
        never mines cycles, so there is nothing to precompute).
        """
        frozen = self.frozen()
        view = frozen.view()
        linker = frozen.make_linker(view)
        resolved_expander = expander or NeighborhoodCycleExpander()
        seed_sets = [linker.link_keywords(text) for text in queries]
        unique = [seeds for seeds in dict.fromkeys(seed_sets) if seeds]
        by_shard: dict[int, list[frozenset[int]]] = {}
        for seeds in unique:
            by_shard.setdefault(view.owner_shard(min(seeds)), []).append(seeds)

        graph = frozen.compact_graph
        expand_batch = getattr(resolved_expander, "expand_batch", None)
        prefills: list[PrefillEntries] = []
        for shard_id in range(frozen.num_shards):
            owned = sorted(by_shard.get(shard_id, []), key=sorted)
            if not owned:
                prefills.append(())
                continue
            if expand_batch is not None:
                results = expand_batch(graph, owned)
            else:
                results = [resolved_expander.expand(graph, seeds) for seeds in owned]
            prefills.append(tuple(zip(owned, results)))
        return replace(
            frozen,
            prefills=tuple(prefills),
            prefill_expander=expander_fingerprint(resolved_expander),
        )

    @property
    def num_prefilled(self) -> int:
        """Total precomputed expansions across all shards."""
        return sum(len(entries) for entries in self.prefills)

    def prefill_for(self, shard_id: int, expander) -> PrefillEntries:
        """Entries a worker for ``shard_id`` should warm its cache with.

        Returns ``()`` when the snapshot carries no prefill or when
        ``expander``'s fingerprint differs from the one that computed
        the prefill — warming would then serve another strategy's (or
        another configuration's) results; those queries must run cold
        instead.  Serving layers size the expansion cache to
        ``len()`` of this result so warmed entries cannot evict each
        other before the first request.
        """
        if not self.prefills:
            return ()
        if self.prefill_expander != expander_fingerprint(expander):
            return ()
        return self.prefills[shard_id]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(
        self, directory: str | Path, *, version: int = COMPACT_SNAPSHOT_VERSION
    ) -> Path:
        """Write all shards; the checksummed manifest is written last.

        ``version`` selects the on-disk format: 3 (default) stores index
        segments and the graph adjacency as compact binary blobs that
        load via ``mmap``; 2 writes the legacy JSON segments for
        consumers pinned to the old format.  Prefilled expansions
        require version 3.
        """
        if version not in (SHARDED_SNAPSHOT_VERSION, COMPACT_SNAPSHOT_VERSION):
            raise SnapshotError(
                f"cannot write snapshot version {version!r}; supported write "
                f"versions are {SHARDED_SNAPSHOT_VERSION} and "
                f"{COMPACT_SNAPSHOT_VERSION}"
            )
        compact = version == COMPACT_SNAPSHOT_VERSION
        if self.prefills and not compact:
            raise SnapshotError(
                "prefilled expansions require the version-3 snapshot format"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / MANIFEST_NAME).unlink(missing_ok=True)

        source = self.frozen() if compact else self
        shard_entries = []
        for shard_id, (partition, segment) in enumerate(
            zip(source.partitions, source.segments)
        ):
            shard_dir = directory / _shard_dir_name(partition.shard_id)
            shard_dir.mkdir(exist_ok=True)
            _write_json_gz(shard_dir / _PARTITION_NAME, partition.to_payload())
            checksums = {_PARTITION_NAME: _sha256(shard_dir / _PARTITION_NAME)}
            if compact:
                (shard_dir / _INDEX_BLOB_NAME).write_bytes(segment.to_blob())
                checksums[_INDEX_BLOB_NAME] = _sha256(shard_dir / _INDEX_BLOB_NAME)
                if source.prefills:
                    _write_json_gz(
                        shard_dir / _PREFILL_NAME,
                        _prefill_payload(
                            source.prefills[shard_id], source.prefill_expander
                        ),
                    )
                    checksums[_PREFILL_NAME] = _sha256(shard_dir / _PREFILL_NAME)
            else:
                _write_json_gz(shard_dir / _INDEX_NAME, segment.to_payload())
                checksums[_INDEX_NAME] = _sha256(shard_dir / _INDEX_NAME)
            shard_entries.append({
                "dir": shard_dir.name,
                "checksums": checksums,
                "counts": {
                    "core_articles": len(partition.core_articles),
                    "core_categories": len(partition.core_categories),
                    "owned_edges": partition.num_owned_edges,
                    "documents": segment.num_documents,
                },
            })
        _write_json_gz(directory / _LINKER_NAME, _linker_payload(self.title_index))
        _write_json_gz(directory / _DOCUMENTS_NAME, dict(sorted(self.doc_names.items())))
        shared_checksums = {
            _LINKER_NAME: _sha256(directory / _LINKER_NAME),
            _DOCUMENTS_NAME: _sha256(directory / _DOCUMENTS_NAME),
        }
        if compact:
            (directory / _GRAPH_BLOB_NAME).write_bytes(source.compact_graph.to_blob())
            shared_checksums[_GRAPH_BLOB_NAME] = _sha256(directory / _GRAPH_BLOB_NAME)

        manifest = {
            "format": SNAPSHOT_FORMAT,
            "version": version,
            "mu": self.mu,
            "generation": self.generation,
            "shards": self.num_shards,
            "counts": {
                "articles": sum(len(p.core_articles) for p in self.partitions),
                "categories": sum(len(p.core_categories) for p in self.partitions),
                "edges": sum(p.num_owned_edges for p in self.partitions),
                "documents": self.num_documents,
                "titles": len(self.title_index),
                "prefill_entries": source.num_prefilled,
            },
            "shard_artifacts": shard_entries,
            "shared_checksums": shared_checksums,
        }
        # Written last, like Snapshot.save: a crash mid-save leaves a
        # directory load() rejects instead of a torn shard mix.
        (directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        self.source_version = version
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "ShardedSnapshot":
        """Load a sharded snapshot; v1 directories load as one shard.

        Every artefact's sha256 is verified against the manifest before
        parsing.  Version-3 directories map their compact blobs with
        ``mmap``; version-1/2 directories are parsed the old way and
        then frozen on load, so callers always receive the compact read
        path.  Raises :class:`SnapshotError` on checksum mismatches,
        missing shards, or count inconsistencies.
        """
        directory = resolve_snapshot_dir(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise SnapshotError(
                f"{directory} is not a snapshot directory (missing {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot manifest is not valid JSON: {exc}") from exc
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unknown snapshot format {manifest.get('format')!r} "
                f"(expected {SNAPSHOT_FORMAT!r})"
            )
        version = manifest.get("version")
        if version == SNAPSHOT_VERSION:
            # Pre-shard snapshot: serve it unchanged as a single shard
            # (frozen on load so serving runs the compact path).
            return replace(
                cls.from_snapshot(Snapshot.load(directory), num_shards=1),
                source_version=SNAPSHOT_VERSION,
            ).frozen()
        if version not in (SHARDED_SNAPSHOT_VERSION, COMPACT_SNAPSHOT_VERSION):
            raise SnapshotError(
                f"snapshot at {directory} has version {version!r}; this build reads "
                f"versions {SNAPSHOT_VERSION}, {SHARDED_SNAPSHOT_VERSION} and "
                f"{COMPACT_SNAPSHOT_VERSION} — rebuild the snapshot with "
                f"`repro snapshot`"
            )
        compact = version == COMPACT_SNAPSHOT_VERSION
        mu = float(manifest.get("mu", 0.0))
        if mu <= 0:
            raise SnapshotError(f"snapshot manifest has invalid mu: {manifest.get('mu')!r}")
        declared_shards = manifest.get("shards")
        shard_entries = manifest.get("shard_artifacts", [])
        if not isinstance(declared_shards, int) or declared_shards < 1 \
                or len(shard_entries) != declared_shards:
            raise SnapshotError(
                f"snapshot manifest declares {declared_shards!r} shards but lists "
                f"{len(shard_entries)} shard artefact entries"
            )

        def verified(path: Path, expected: str | None) -> Path:
            if not path.exists():
                raise SnapshotError(f"snapshot is missing {path.name}")
            # A v2 manifest must checksum every artefact it references —
            # a deleted checksum entry would otherwise disable integrity
            # checking exactly when tampering is most likely.
            if expected is None:
                raise SnapshotError(
                    f"snapshot manifest lists no checksum for "
                    f"{path.parent.name}/{path.name} (tampered manifest?)"
                )
            if _sha256(path) != expected:
                raise SnapshotError(
                    f"snapshot file {path.parent.name}/{path.name} fails its "
                    f"manifest checksum (corrupt or tampered)"
                )
            return path

        def load_blob(loader, path: Path):
            try:
                return loader(path)
            except ReproError as exc:
                if isinstance(exc, SnapshotError):
                    raise
                raise SnapshotError(
                    f"snapshot file {path.parent.name}/{path.name} is corrupt: {exc}"
                ) from exc

        shared = manifest.get("shared_checksums", {})
        title_index = _parse_linker_payload(_read_json_gz(
            verified(directory / _LINKER_NAME, shared.get(_LINKER_NAME))
        ))
        doc_names = {
            str(doc_id): str(name)
            for doc_id, name in _read_json_gz(
                verified(directory / _DOCUMENTS_NAME, shared.get(_DOCUMENTS_NAME))
            ).items()
        }
        compact_graph = None
        if compact:
            compact_graph = load_blob(CompactGraphView.load, verified(
                directory / _GRAPH_BLOB_NAME, shared.get(_GRAPH_BLOB_NAME)
            ))

        partitions: list[GraphPartition] = []
        segments: list[PositionalIndex | CompactIndex] = []
        prefills: list[PrefillEntries] = []
        prefill_expanders: set[str] = set()
        for entry in shard_entries:
            shard_dir = directory / str(entry.get("dir", ""))
            checksums = entry.get("checksums", {})
            partition = GraphPartition.from_payload(_read_json_gz(
                verified(shard_dir / _PARTITION_NAME, checksums.get(_PARTITION_NAME))
            ))
            if compact:
                segment = load_blob(CompactIndex.load, verified(
                    shard_dir / _INDEX_BLOB_NAME, checksums.get(_INDEX_BLOB_NAME)
                ))
                if _PREFILL_NAME in checksums:
                    prefill_payload = _read_json_gz(
                        verified(shard_dir / _PREFILL_NAME, checksums[_PREFILL_NAME])
                    )
                    prefills.append(_parse_prefill_payload(prefill_payload))
                    prefill_expanders.add(str(prefill_payload.get("expander", "")))
            else:
                segment = PositionalIndex.from_payload(_read_json_gz(
                    verified(shard_dir / _INDEX_NAME, checksums.get(_INDEX_NAME))
                ))
            counts = entry.get("counts", {})
            actual = {
                "core_articles": len(partition.core_articles),
                "core_categories": len(partition.core_categories),
                "owned_edges": partition.num_owned_edges,
                "documents": segment.num_documents,
            }
            for key, expected in counts.items():
                if key in actual and actual[key] != expected:
                    raise SnapshotError(
                        f"snapshot shard {shard_dir.name} is inconsistent: manifest "
                        f"declares {expected} {key}, artefacts contain {actual[key]}"
                    )
            partitions.append(partition)
            segments.append(segment)

        if prefills and len(prefills) != len(partitions):
            raise SnapshotError(
                f"snapshot at {directory} is inconsistent: {len(prefills)} shards "
                f"carry prefill artefacts but {len(partitions)} shards exist"
            )
        if len(prefill_expanders) > 1:
            raise SnapshotError(
                f"snapshot at {directory} is inconsistent: shards disagree on "
                f"the prefill expander ({sorted(prefill_expanders)})"
            )
        snapshot = cls(
            partitions=tuple(partitions), segments=tuple(segments),
            title_index=title_index, doc_names=doc_names, mu=mu,
            prefills=tuple(prefills), compact_graph=compact_graph,
            prefill_expander=next(iter(prefill_expanders), ""),
            source_version=version,
            generation=int(manifest.get("generation", 1)),
        )
        counts = manifest.get("counts", {})
        actual_global = {
            "articles": sum(len(p.core_articles) for p in partitions),
            "categories": sum(len(p.core_categories) for p in partitions),
            "edges": sum(p.num_owned_edges for p in partitions),
            "documents": snapshot.num_documents,
            "titles": len(title_index),
            "prefill_entries": snapshot.num_prefilled,
        }
        for key, expected in counts.items():
            if key in actual_global and actual_global[key] != expected:
                raise SnapshotError(
                    f"snapshot at {directory} is inconsistent: manifest declares "
                    f"{expected} {key}, artefacts contain {actual_global[key]}"
                )
        return snapshot if compact else snapshot.frozen()

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def layout_description(self) -> str:
        """One operator-readable line naming the resolved on-disk layout.

        Printed by ``repro serve`` at startup and echoed by ``/healthz``
        so a running process can always be matched to the snapshot
        format it loaded (see ``docs/architecture.md`` for the formats).
        """
        layouts = {
            SNAPSHOT_VERSION: "v1 single-dir (JSON graph + index)",
            SHARDED_SNAPSHOT_VERSION: "v2 sharded (JSON index segments)",
            COMPACT_SNAPSHOT_VERSION:
                "v3 sharded (compact binary blobs, mmap-loaded)",
        }
        layout = layouts.get(
            self.source_version, "in-memory build (not loaded from disk)"
        )
        return (
            f"{layout}; shards={self.num_shards}, "
            f"documents={self.num_documents}, titles={len(self.title_index)}, "
            f"prefilled={self.num_prefilled}"
        )

    def view(self) -> PartitionedGraphView:
        """The exact logical graph reassembled over the partitions."""
        return PartitionedGraphView(self.partitions)

    def make_segment_engine(
        self, shard_id: int, smoothing: Smoothing | None = None
    ) -> SearchEngine:
        """A ready engine over one shard's index segment."""
        return SearchEngine(
            smoothing=smoothing or DirichletSmoothing(mu=self.mu),
            index=self.segments[shard_id],
        )

    def make_linker(self, graph=None, **kwargs) -> EntityLinker:
        """A ready linker from the shared vocabulary (defaults to the view)."""
        return EntityLinker(
            graph if graph is not None else self.view(),
            title_index=self.title_index, **kwargs,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedSnapshot(shards={self.num_shards}, "
            f"docs={self.num_documents}, titles={len(self.title_index)}, "
            f"mu={self.mu}, prefilled={self.num_prefilled})"
        )
