"""Asyncio serving over the shard router.

:class:`AsyncShardRouter` is the non-blocking counterpart of
:class:`~repro.service.router.ShardRouter`: the same link → expand → rank
pipeline, but every shard call runs through an *executor-backed shard
adapter* and the per-shard fan-out is an ``asyncio.gather`` instead of a
blocking ``pool.map``.  While one request's cycle mining sits on a shard
thread, the event loop keeps accepting and dispatching other requests —
this is the front end the HTTP layer (:mod:`repro.service.http`) serves
from.

Results are bit-identical (doc ids AND scores) to the synchronous
router: both paths build the same query AST
(:meth:`ShardRouter.build_query`), exchange the same global statistics
(:meth:`ShardRouter.global_background`) and merge with the same
score-preserving k-way merge; the latency bench asserts the equality
over HTTP on every run.

Two dedup layers stack:

* **Async request coalescing** (this module) — concurrent
  ``expand_query`` calls for the same ``(normalized query, top_k)``
  share one in-flight computation *before* any thread is occupied;
  awaiters get the same response (re-labelled with their own raw query
  text).
* **In-flight expansion dedup** (:class:`ExpansionService`) — distinct
  queries racing on the same *entity set* still collapse to one cycle
  mining pass inside the owning shard worker.

:class:`ExecutorShardAdapter` exposes exactly the five shard-protocol
calls (``link_text``, ``expand_seeds``, ``prefill_expansions``,
``leaf_collection_counts``, ``search_with_background``) as awaitables
over an in-process worker.  ``docs/shard_protocol.md`` specifies the
same five calls as a versioned JSON wire protocol — swapping this
adapter for one that speaks that protocol to a remote process is the
multi-process-shards roadmap item.

Loop affinity: one ``AsyncShardRouter`` belongs to one event loop
(coalescing state is mutated loop-side without locks); the executor
threads only ever run the shard calls.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.core.expansion import ExpansionResult
from repro.linking.linker import LinkResult
from repro.obs import trace as tracing
from repro.retrieval.engine import SearchResult, merge_ranked_lists
from repro.service.router import ShardRouter
from repro.service.server import ServiceResponse
from repro.service.wire import SHARD_PROTOCOL_VERSION  # re-export

__all__ = [
    "AsyncShardRouter",
    "ExecutorShardAdapter",
    "SHARD_PROTOCOL_VERSION",
    "SHARD_ADAPTER_ENV",
]

# Setting this to "socket" makes every AsyncShardRouter construct its
# shard adapters over supervised out-of-process workers instead of the
# in-process executor — the switch the CI socket-adapter leg flips to
# re-run the whole service suite against the wire protocol.
SHARD_ADAPTER_ENV = "REPRO_SHARD_ADAPTER"

# Snapshot directories exported for env-driven socket mode, keyed by
# snapshot identity (a strong reference keeps id() stable).  Routers
# over the same snapshot share one on-disk copy per process.
_SNAPSHOT_EXPORTS: dict[int, tuple[object, tempfile.TemporaryDirectory]] = {}


def _export_snapshot_dir(snapshot) -> str:
    entry = _SNAPSHOT_EXPORTS.get(id(snapshot))
    if entry is not None and entry[0] is snapshot:
        return entry[1].name
    tmp = tempfile.TemporaryDirectory(prefix="repro-snapshot-")
    snapshot.save(tmp.name)
    _SNAPSHOT_EXPORTS[id(snapshot)] = (snapshot, tmp)
    return tmp.name


class ExecutorShardAdapter:
    """The five shard-protocol calls as awaitables over one worker.

    This is the seam where a shard stops being an object and becomes an
    address: the async router only ever talks to adapters, and an
    adapter that serialises these five calls over a socket (per
    ``docs/shard_protocol.md``) turns the in-process worker into a
    remote process without touching the router.
    """

    def __init__(
        self, worker, executor: ThreadPoolExecutor, shard_id: int | None = None
    ) -> None:
        self._worker = worker
        self._executor = executor
        self._shard_id = shard_id

    async def _call(self, fn, *args):
        # Executor threads run callables with an empty context; carry the
        # caller's context across so spans recorded on the shard thread
        # (expand, cycle_mine, rank) land in the active request's trace.
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, tracing.carry_context(fn), *args
        )

    async def link_text(self, normalized: str) -> tuple[LinkResult, bool]:
        worker = self._worker

        def run(normalized):
            # link_text itself records no span (unlike expand/rank), so
            # the adapter does — keeping per-shard stage seconds
            # complete across all five protocol calls.
            with tracing.span("link", shard=self._shard_id) as span:
                link, cached = worker.link_text(normalized)
                span["cached"] = cached
            return link, cached

        return await self._call(run, normalized)

    async def expand_seeds(
        self, seeds: frozenset[int]
    ) -> tuple[ExpansionResult, bool]:
        return await self._call(self._worker.expand_seeds, seeds)

    async def prefill_expansions(self, seed_sets) -> set[frozenset[int]]:
        return await self._call(self._worker.prefill_expansions, seed_sets)

    async def leaf_collection_counts(self, root) -> dict:
        engine = self._worker.engine

        def run(root):
            with tracing.span("rank", shard=self._shard_id, phase="counts"):
                return engine.leaf_collection_counts(root)

        return await self._call(run, root)

    async def search_with_background(
        self, root, background, top_k: int
    ) -> list[SearchResult]:
        engine = self._worker.engine

        def run(root, background, top_k):
            with tracing.span("rank", shard=self._shard_id, phase="score"):
                return engine.search_with_background(root, background, top_k)

        return await self._call(run, root, background, top_k)


class AsyncShardRouter:
    """Non-blocking facade over a :class:`ShardRouter`.

    Wraps an existing router (caches, workers and counters are shared
    with the synchronous surface — a query served here hits the same
    per-shard expansion caches and shows up in the same
    :class:`~repro.service.router.RouterStats`).
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        executor: ThreadPoolExecutor | None = None,
        adapters=None,
        supervisor=None,
        policy=None,
    ) -> None:
        self._router = router
        self._own_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=max(2, router.num_shards),
            thread_name_prefix="async-shard",
        )
        self._supervisor = supervisor
        self._own_supervisor = False
        if (
            adapters is None
            and supervisor is None
            and os.environ.get(SHARD_ADAPTER_ENV, "").strip().lower() == "socket"
        ):
            self._supervisor = self._spawn_supervisor()
            self._own_supervisor = True
        if adapters is None and self._supervisor is not None:
            adapters = self._socket_adapters(self._supervisor, policy)
        self._adapters = list(adapters) if adapters is not None else [
            ExecutorShardAdapter(worker, self._executor, shard_id)
            for shard_id, worker in enumerate(router.workers)
        ]
        # Coalescing table: (normalized, top_k) -> in-flight task.  Only
        # touched from the owning event loop, so no lock is needed.
        self._inflight: dict[tuple[str, int], asyncio.Future] = {}
        self._coalesced = 0

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def num_shards(self) -> int:
        return self._router.num_shards

    @property
    def doc_names(self) -> dict[str, str]:
        return self._router.doc_names

    @property
    def coalesced_requests(self) -> int:
        """Requests answered by piggybacking on an identical in-flight one."""
        return self._coalesced

    @property
    def metrics(self):
        """The wrapped router's :class:`~repro.obs.serving.ServingMetrics`
        (one registry per serving stack, sync and async paths included)."""
        return self._router.metrics

    @property
    def supervisor(self):
        """The worker supervisor when shards run out of process, else None."""
        return self._supervisor

    @property
    def adapters(self) -> tuple:
        return tuple(self._adapters)

    def stats(self):
        """Router counters plus the adapter-level resilience counters."""
        stats = self._router.stats()
        retries = sum(getattr(a, "retries_total", 0) for a in self._adapters)
        hedges = sum(getattr(a, "hedges_total", 0) for a in self._adapters)
        wins = sum(getattr(a, "hedge_wins_total", 0) for a in self._adapters)
        restarts = (
            self._supervisor.restarts_total
            if self._supervisor is not None else 0
        )
        if retries or hedges or wins or restarts:
            stats = replace(
                stats,
                retries_total=retries,
                hedges_total=hedges,
                hedge_wins_total=wins,
                worker_restarts=restarts,
            )
        return stats

    async def expand_query(self, text: str, top_k: int = 10) -> ServiceResponse:
        """Answer one query; identical concurrent queries share one pass."""
        self._router._account(requests=1)
        try:
            normalized = self._router.normalize(text)
            key = (normalized, top_k)
            future = self._inflight.get(key)
            if future is None:
                future = asyncio.ensure_future(self._compute(normalized, top_k))
                self._inflight[key] = future
                future.add_done_callback(lambda _: self._inflight.pop(key, None))
            else:
                self._coalesced += 1
            # shield: one awaiter being cancelled must not kill the
            # computation the other coalesced awaiters are waiting on.
            response = await asyncio.shield(future)
        except Exception:
            self._router._account(errors=1)
            raise
        self._router._account(
            queries=1, unlinked=0 if response.linked else 1
        )
        if response.query != text:
            response = replace(response, query=text)
        return response

    async def batch_expand(
        self, texts: list[str], top_k: int = 10
    ) -> list[ServiceResponse]:
        """Answer a batch: per-shard pre-fill and per-query ranking both
        fan out with ``asyncio.gather``; semantics (dedup, the
        computed-by-this-batch ⇒ not-cached rule, offered-load
        accounting) match :meth:`ShardRouter.batch_expand`."""
        if not texts:
            return []
        router = self._router
        batch_started = time.perf_counter()
        router._account(requests=len(texts))
        # Batch-level trace: covers linking and the shard pre-fill; the
        # per-query passes trace (and are observed) individually through
        # _compute, so member responses drop the batch trace.
        trace = tracing.Trace()
        trace.annotate(batch=len(texts))
        error = False
        try:
            with tracing.start_trace(trace):
                norm_by_text = {
                    text: router.normalize(text) for text in dict.fromkeys(texts)
                }
                normalized = [norm_by_text[text] for text in texts]
                unique_norms = list(dict.fromkeys(normalized))
                first_text = {}
                for text in texts:
                    first_text.setdefault(norm_by_text[text], text)

                loop = asyncio.get_running_loop()
                # Link the distinct queries concurrently (the router link
                # cache is lock-guarded, so parallel passes are safe).
                with tracing.span("link", queries=len(unique_norms)):
                    link_results = await asyncio.gather(*(
                        loop.run_in_executor(
                            self._executor, router.link_text, norm
                        )
                        for norm in unique_norms
                    ))
                links: dict[str, tuple[LinkResult, bool]] = dict(
                    zip(unique_norms, link_results)
                )

                by_shard: dict[int, set[frozenset[int]]] = {}
                for norm in unique_norms:
                    seeds = links[norm][0].article_ids
                    by_shard.setdefault(
                        router.owner_shard(seeds), set()
                    ).add(seeds)
                prefills = await asyncio.gather(*(
                    self._adapters[shard_id].prefill_expansions(seed_sets)
                    for shard_id, seed_sets in by_shard.items()
                ))
                computed_here: set[frozenset[int]] = \
                    set().union(*prefills) if prefills else set()

                responses = await asyncio.gather(*(
                    self._compute(norm, top_k) for norm in unique_norms
                ))
                by_norm: dict[str, ServiceResponse] = {}
                for norm, response in zip(unique_norms, responses):
                    link, link_cached = links[norm]
                    expansion_cached = response.expansion_cached
                    # The batch itself paid for pre-filled expansions — and
                    # for the link pass — so report those as cold, exactly
                    # like the synchronous batch path does.
                    if link.article_ids in computed_here:
                        expansion_cached = False
                    by_norm[norm] = replace(
                        response,
                        query=first_text[norm],
                        link_cached=link_cached,
                        expansion_cached=expansion_cached,
                        trace=None,
                    )
        except Exception:
            error = True
            router._account(errors=len(texts))
            raise
        finally:
            router.metrics.observe_request(
                "batch_expand",
                trace,
                time.perf_counter() - batch_started,
                error=error,
            )
        router._account(
            batches=1,
            queries=len(normalized),
            unlinked=sum(
                1 for norm in normalized if not by_norm[norm].link.article_ids
            ),
        )
        return [by_norm[norm] for norm in normalized]

    def close(self) -> None:
        """Shut the adapter executor down (the wrapped router survives).

        In socket mode this also closes pooled worker connections and,
        when this router spawned its own supervisor (env-driven mode),
        stops the worker processes.
        """
        for adapter in self._adapters:
            closer = getattr(adapter, "close", None)
            if closer is not None:
                closer()
        if self._own_supervisor and self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        if self._own_executor:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Socket-mode construction
    # ------------------------------------------------------------------

    def _spawn_supervisor(self):
        """Start supervised workers for env-driven socket mode.

        The router's snapshot is exported to a per-process temporary
        directory (shared across routers over the same snapshot object)
        and one worker process is spawned per shard.
        """
        from repro.service.supervisor import ShardSupervisor

        supervisor = ShardSupervisor(
            _export_snapshot_dir(self._router.snapshot),
            self._router.num_shards,
            metrics=self._router.metrics,
        )
        supervisor.start()
        return supervisor

    def _socket_adapters(self, supervisor, policy):
        """One socket adapter per shard, endpoint-resolved per attempt.

        Each adapter keeps the router-local worker engine as its rank
        fallback: with a shard's worker down, queries owned by healthy
        shards still rank over all segments bit-identically.
        """
        from repro.service.socket_adapter import SocketShardAdapter

        return [
            SocketShardAdapter(
                (lambda sid=shard_id: supervisor.endpoint(sid)),
                shard_id,
                policy=policy,
                fallback_engine=self._router.workers[shard_id].engine,
            )
            for shard_id in range(self._router.num_shards)
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    async def _compute(self, normalized: str, top_k: int) -> ServiceResponse:
        """One full pass: link → owner-shard expand → scatter-gather rank.

        ``query`` is set to the normalised text; awaiters re-label the
        response with their own raw text.  Counters are bumped by the
        awaiters (one per coalesced request), not here.
        """
        started = time.perf_counter()
        router = self._router
        # One trace per computation (coalesced awaiters share it), folded
        # into the shared registry once, here — awaiters never re-count.
        trace = tracing.Trace()
        error = False
        try:
            with tracing.start_trace(trace):
                with tracing.span("link") as span:
                    link, link_cached = await asyncio.get_running_loop(
                    ).run_in_executor(
                        self._executor, router.link_text, normalized
                    )
                    span["cached"] = link_cached
                owner = router.owner_shard(link.article_ids)
                expansion, expansion_cached = await self._adapters[
                    owner
                ].expand_seeds(link.article_ids)
                results = await self._rank(normalized, expansion, top_k)
        except Exception:
            error = True
            raise
        finally:
            router.metrics.observe_request(
                "expand_query",
                trace,
                time.perf_counter() - started,
                error=error,
            )
        return ServiceResponse(
            query=normalized,
            normalized_query=normalized,
            link=link,
            expansion=expansion,
            results=results,
            link_cached=link_cached,
            expansion_cached=expansion_cached,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            trace=trace,
        )

    async def _rank(
        self, normalized: str, expansion: ExpansionResult, top_k: int
    ) -> tuple[SearchResult, ...]:
        """The two-phase scatter-gather, with ``asyncio.gather`` fan-out."""
        root = self._router.build_query(normalized, expansion)
        if root is None:
            return ()
        per_segment = await asyncio.gather(*(
            adapter.leaf_collection_counts(root) for adapter in self._adapters
        ))
        with tracing.span("merge", phase="background"):
            background = self._router.global_background(root, per_segment)
        ranked_lists = await asyncio.gather(*(
            adapter.search_with_background(root, background, top_k)
            for adapter in self._adapters
        ))
        with tracing.span("merge", phase="topk"):
            return tuple(merge_ranked_lists(list(ranked_lists), top_k))

    def __repr__(self) -> str:
        return (
            f"AsyncShardRouter(shards={self.num_shards}, "
            f"coalesced={self._coalesced})"
        )
