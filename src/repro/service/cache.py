"""Size-bounded LRU caching for the online expansion service.

Two cache instances back :class:`repro.service.server.ExpansionService`:
one keyed on normalised query text holding ``LinkResult``s, one keyed on
the linked-entity frozenset holding ``ExpansionResult``s.  Both layers are
instances of the same :class:`LRUCache`; hit/miss/eviction counters are
kept per cache so the service can report them (and the latency benchmark
can derive a hit rate).

The cache is thread-safe on its own: the service serves concurrent
requests and must not corrupt the recency list or under-count stats.
Values are expected to be immutable (the pipeline's result types are
frozen dataclasses), so a hit can hand back the stored object directly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from repro.errors import ServiceError

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when nothing was looked up)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    @classmethod
    def aggregate(cls, stats: "list[CacheStats] | tuple[CacheStats, ...]") -> "CacheStats":
        """Sum several caches into one logical view (the router reports
        its N per-shard expansion caches this way)."""
        return cls(
            hits=sum(s.hits for s in stats),
            misses=sum(s.misses for s in stats),
            evictions=sum(s.evictions for s in stats),
            size=sum(s.size for s in stats),
            max_size=sum(s.max_size for s in stats),
        )

    def as_dict(self) -> dict:
        """JSON-ready counters, including the bound and current occupancy
        (``serve --stats`` consumers size caches from these).

        ``capacity`` and ``max_size`` carry the same value: ``max_size``
        is the key PR 1 shipped and existing consumers parse; ``capacity``
        is the clearer name going forward.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_size": self.max_size,
            "capacity": self.max_size,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    ``get`` counts a hit or a miss and refreshes recency; ``peek`` does
    neither (the service uses it for double-checks under its own lock, so
    one logical lookup is never counted twice).  ``put`` inserts or
    refreshes; when the bound is exceeded the oldest entry is dropped and
    the eviction counter incremented.
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 1:
            raise ServiceError("cache max_size must be >= 1")
        self._max_size = max_size
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_size(self) -> int:
        return self._max_size

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> Iterator[Hashable]:
        """Keys from least- to most-recently used (a snapshot)."""
        with self._lock:
            return iter(list(self._data))

    def get(self, key: Hashable, default: object | None = None) -> object | None:
        """Recorded lookup: refreshes recency and counts hit or miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return default

    def peek(self, key: Hashable, default: object | None = None) -> object | None:
        """Unrecorded lookup: no recency refresh, no counter change."""
        with self._lock:
            return self._data.get(key, default)

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key``, evicting the oldest entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self._max_size:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries; counters are preserved (lifetime statistics)."""
        with self._lock:
            self._data.clear()

    def evict_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count.

        The targeted-invalidation primitive of the live-update path: a
        delta evicts only the entries whose neighbourhood it touched,
        leaving the rest of the cache warm.  Evicted entries count into
        the eviction counter (they are evictions, just not capacity
        ones).  The predicate runs under the cache lock and must not
        touch the cache reentrantly.
        """
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            self._evictions += len(doomed)
            return len(doomed)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                max_size=self._max_size,
            )

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"LRUCache(size={stats.size}/{stats.max_size}, "
            f"hits={stats.hits}, misses={stats.misses}, evictions={stats.evictions})"
        )
