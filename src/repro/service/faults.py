"""Deterministic fault injection for shard workers.

A :class:`FaultPlan` arms a shard-worker process with failures that fire
on the *n*-th matching protocol call — the deterministic counterpart of
"the worker crashed in production at 3am".  Faults act at the
frame-handling layer of :class:`~repro.service.shard_worker.ShardWorkerServer`
(after the request frame is decoded, before it is dispatched), so a
stalled or killed call never interacts with the worker's in-flight
expansion dedup: a hedged second attempt on a fresh connection proceeds
normally.

Spec grammar (``repro shard-worker --fault`` or ``REPRO_SHARD_FAULTS``)::

    SPEC    := FAULT ("," FAULT)*
    FAULT   := ACTION ["=" ARG] "@" NTH [":" CALL]
    ACTION  := "kill" | "stall" | "garbage" | "short"

* ``kill@2`` — ``os._exit`` while handling the 2nd call (a hard crash:
  no response frame, no cleanup — what a OOM-kill looks like);
* ``stall=1.5@1`` — sleep 1.5 s before dispatching the 1st call (a slow
  shard; the router's deadline/hedging machinery is the test subject);
* ``garbage@1:expand_seeds`` — answer the 1st ``expand_seeds`` with a
  well-framed body that is not JSON, then drop the connection;
* ``short@1`` — write only half of the response frame, then drop the
  connection (a torn write / crashed-mid-send peer).

Counters are per-fault and count only matching *protocol* calls
(``hello`` handshakes are exempt, so supervisor health pings never
consume a fault).  A restarted worker parses the spec afresh — its
counters start at zero — which is how ``kill@1`` plus a restart budget
of zero models a permanently dead shard.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.errors import ServiceError

__all__ = ["Fault", "FaultPlan", "FAULTS_ENV"]

FAULTS_ENV = "REPRO_SHARD_FAULTS"

_ACTIONS = ("kill", "stall", "garbage", "short")


@dataclass(slots=True)
class Fault:
    """One armed failure: fires on the ``nth`` call matching ``call``."""

    action: str
    nth: int
    arg: float = 0.0
    call: str | None = None
    _seen: int = field(default=0, repr=False)

    def matches(self, call: str) -> bool:
        return self.call is None or self.call == call

    def fire(self) -> bool:
        """Count one matching call; True when this is the armed one."""
        self._seen += 1
        return self._seen == self.nth


class FaultPlan:
    """A parsed fault spec; thread-safe, consulted once per call frame."""

    def __init__(self, faults: list[Fault]) -> None:
        self._faults = faults
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return bool(self._faults)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        faults: list[Fault] = []
        for part in (p.strip() for p in spec.split(",")):
            if not part:
                continue
            head, at, tail = part.partition("@")
            if not at:
                raise ServiceError(f"fault {part!r} is missing '@NTH'")
            action, eq, arg_text = head.partition("=")
            if action not in _ACTIONS:
                raise ServiceError(
                    f"unknown fault action {action!r} (expected one of {_ACTIONS})"
                )
            nth_text, colon, call = tail.partition(":")
            try:
                nth = int(nth_text)
                arg = float(arg_text) if eq else 0.0
            except ValueError as exc:
                raise ServiceError(f"malformed fault {part!r}: {exc}") from exc
            if nth < 1:
                raise ServiceError(f"fault {part!r}: NTH must be >= 1")
            if action == "stall" and arg <= 0:
                raise ServiceError(f"fault {part!r}: stall needs '=SECONDS'")
            faults.append(
                Fault(action=action, nth=nth, arg=arg, call=call or None)
            )
        return cls(faults)

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultPlan":
        return cls.from_spec(environ.get(FAULTS_ENV, ""))

    def check(self, call: str) -> Fault | None:
        """Count one protocol call; return the fault that fires, if any.

        Every armed fault matching ``call`` advances its counter; the
        first one whose counter reaches its ``nth`` fires (at most one
        per call).
        """
        with self._lock:
            fired = None
            for fault in self._faults:
                if fault.matches(call) and fault.fire() and fired is None:
                    fired = fault
            return fired
