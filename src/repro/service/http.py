"""Hand-rolled asyncio HTTP/1.1 front end over the async router.

No web framework, no new dependencies: :class:`HttpFrontEnd` speaks a
deliberately small slice of HTTP/1.1 (request line, headers,
``Content-Length`` bodies, keep-alive) over ``asyncio`` streams and
serves six endpoints::

    POST /expand        one query, full ServiceResponse payload
    POST /search        one query, ranked results only
    POST /batch_expand  many queries in one request
    GET  /stats         RouterStats dict + front-end counters + slow log
    GET  /healthz       liveness: status, shards, per-shard health,
                        hit-rate breakdown, error breakdown by status,
                        serving snapshot generation + delta sequence
    GET  /metrics       Prometheus text exposition (text/plain, not JSON)

plus, when an :class:`~repro.updates.UpdateCoordinator` is attached
(``repro serve --http`` always attaches one)::

    POST /admin/apply_delta  apply one typed graph-delta batch live
    POST /admin/compact      fold the overlay into generation N+1 + swap

Every endpoint, every request/response schema, the error envelope and
the status codes are specified in ``docs/http_api.md`` (the metric
families in ``docs/observability.md``) — change the two together.
Errors are always JSON::

    {"error": {"code": "<machine-readable>", "message": "<human-readable>"}}

with 400 (malformed JSON / invalid fields / invalid delta), 404
(unknown path), 405 (known path, wrong method), 409 (delta batch
against a stale snapshot generation), 413 (body over
``max_body_bytes``), 429 (load shedding — see below) and 500 (handler
raised; also bumps the router error counter via the failed request).

Load shedding: with an :class:`~repro.service.admission.AdmissionPolicy`
attached (``repro serve --http --queue-limit/--client-rate``), the query
endpoints (``/expand``, ``/search``, ``/batch_expand``) pass an
admission gate before any router work happens.  A full admission queue
answers ``429 over_capacity``; a client that exhausted its token bucket
(keyed by the ``X-Client-Id`` header, falling back to the peer address)
answers ``429 client_rate_limited``.  Both carry ``retry_after_s`` in
the envelope plus a ``Retry-After`` header, count into
``repro_shed_total{reason}`` and ``errors_by_status``, and cost no
router work — that is the point.  Monitoring and admin endpoints are
never shed, so operators can watch an overloaded server.

Concurrency model: the event loop parses requests and dispatches to an
:class:`~repro.service.async_router.AsyncShardRouter`; shard work runs
on its executor threads while the loop keeps serving other connections.
Identical concurrent queries coalesce into one computation (see the
async router), so a thundering herd on one cold query pays one cycle
mining pass.

Start one with ``repro serve --http PORT`` (port 0 picks an ephemeral
port and prints it), or programmatically::

    front = HttpFrontEnd(AsyncShardRouter(router))
    server = await front.start("127.0.0.1", 8080)
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.errors import DeltaError, ShardUnavailableError, StaleGenerationError
from repro.obs.logs import RequestLog
from repro.service.admission import (
    SHED_CLIENT_RATE,
    SHED_OVER_CAPACITY,
    AdmissionController,
    AdmissionPolicy,
)
from repro.service.async_router import AsyncShardRouter

__all__ = ["HttpFrontEnd", "DEFAULT_MAX_BODY_BYTES", "SHEDDABLE_PATHS"]

# Prometheus text exposition content type (the version is part of it).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

DEFAULT_MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is already a huge batch
DEFAULT_READ_TIMEOUT = 120.0  # seconds to finish sending one request
_MAX_TOP_K = 1000
_MAX_BATCH_QUERIES = 1024
_MAX_HEADERS = 128
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}
_MAX_DELTA_BATCH = 4096

# The endpoints admission control may refuse: the ones that cost router
# work.  Monitoring (/stats /healthz /metrics) and the admin plane stay
# reachable under overload by design.
SHEDDABLE_PATHS = frozenset({"/expand", "/search", "/batch_expand"})

_SHED_MESSAGES = {
    SHED_OVER_CAPACITY:
        "server at capacity: the admission queue is full; retry later",
    SHED_CLIENT_RATE:
        "client over its admission rate: token bucket empty; retry later",
}


class _RequestError(Exception):
    """A client error mapped straight onto the JSON error envelope."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def _error_body(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


class HttpFrontEnd:
    """Serve an :class:`AsyncShardRouter` over HTTP/1.1 + JSON.

    Parameters
    ----------
    service:
        The async router to serve (its stats/doc-name surfaces feed
        ``/stats``, ``/healthz`` and result rendering).
    snapshot_info:
        Optional human-readable snapshot layout line, echoed in
        ``/healthz`` so operators can tell which format a live server
        loaded.
    snapshot_format:
        Optional on-disk format tag of the loaded snapshot (``"v3"``),
        echoed in ``/healthz``.  The *serving generation* is not a
        parameter: ``/healthz`` reports the router's live
        ``snapshot_generation`` (an integer that advances on
        compaction), so a fleet rollout can assert every replica serves
        the same generation.
    coordinator:
        Optional :class:`~repro.updates.UpdateCoordinator`.  When
        attached, the admin endpoints ``POST /admin/apply_delta`` and
        ``POST /admin/compact`` are served (``docs/live_updates.md``);
        without one they 404.
    request_log:
        The :class:`~repro.obs.logs.RequestLog` receiving one record per
        HTTP request (slow ones are sampled into its reservoir and
        surfaced under ``/stats``).  A silent default is created when
        omitted; ``repro serve`` passes one that writes slow-query JSON
        lines to stderr.
    admission:
        Optional load-shedding configuration: an
        :class:`~repro.service.admission.AdmissionPolicy` (a controller
        is built from it) or a prebuilt
        :class:`~repro.service.admission.AdmissionController` (tests
        inject one with a fake clock).  ``None`` — the default — turns
        admission control off entirely; no request is ever shed.
    max_body_bytes:
        Requests with a larger declared body are rejected with 413
        before the body is read.
    read_timeout:
        Seconds a client gets to finish sending one request (headers and
        body) once its request line arrived; a stalled sender is
        disconnected instead of pinning the connection forever.  Idle
        keep-alive connections (waiting *between* requests) are not
        subject to it.
    """

    def __init__(
        self,
        service: AsyncShardRouter,
        *,
        snapshot_info: str = "",
        snapshot_format: str = "",
        coordinator=None,
        request_log: RequestLog | None = None,
        admission: AdmissionPolicy | AdmissionController | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ) -> None:
        self._service = service
        self._snapshot_info = snapshot_info
        self._snapshot_format = snapshot_format
        self._coordinator = coordinator
        self._request_log = request_log or RequestLog()
        if isinstance(admission, AdmissionPolicy):
            admission = AdmissionController(admission) if admission.enabled \
                else None
        self._admission = admission
        self._max_body_bytes = max_body_bytes
        self._read_timeout = read_timeout
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._http_requests = 0
        self._http_errors = 0
        self._by_endpoint: dict[str, int] = {}
        self._errors_by_status: dict[int, int] = {}
        # HTTP-plane families live in the router's registry, so one
        # /metrics scrape renders the whole serving stack.
        registry = service.metrics.registry
        self._http_requests_metric = registry.counter(
            "repro_http_requests_total",
            "HTTP requests received, by endpoint.",
            ("endpoint",),
        )
        self._http_errors_metric = registry.counter(
            "repro_http_errors_total",
            "HTTP error responses, by status code.",
            ("status",),
        )
        # Registered unconditionally so the families exist (at zero) on
        # servers with admission control off — dashboards can rely on
        # them being scrapeable either way.
        self._shed_metric = registry.counter(
            "repro_shed_total",
            "Requests refused by admission control, by reason.",
            ("reason",),
        )
        self._queue_depth_gauge = registry.gauge(
            "repro_admission_queue_depth",
            "Admitted sheddable requests currently in flight.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8080):
        """Bind and start serving; returns the ``asyncio`` server.

        ``port=0`` binds an ephemeral port; read it back from
        ``server.sockets[0].getsockname()[1]``.
        """
        self._server = await asyncio.start_server(
            self._serve_connection, host, port
        )
        return self._server

    async def stop(self) -> None:
        """Stop accepting connections and drain the open ones.

        Idle keep-alive connections are closed (their handlers see EOF
        and exit); connections mid-request finish and send their
        response first (the handler sees ``_closing`` afterwards and
        ends the connection instead of waiting for another request).
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            if writer not in self._busy:
                writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    @property
    def service(self) -> AsyncShardRouter:
        return self._service

    @property
    def request_log(self) -> RequestLog:
        return self._request_log

    @property
    def admission(self) -> AdmissionController | None:
        return self._admission

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections.add(writer)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) and peername \
            else "unknown"
        async def timed(read_coro):
            """One read step of an in-flight request; a sender that
            stalls past the timeout is disconnected, not waited on."""
            return await asyncio.wait_for(read_coro, self._read_timeout)

        try:
            while True:
                # Waiting for the *next* request on a keep-alive
                # connection is legitimate idleness: no timeout here.
                try:
                    request_line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    break  # request line over the stream limit: not ours
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                # A request is now in flight: the connection is busy
                # (stop() lets it finish) and reads are on the clock.
                self._busy.add(writer)
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                    await self._send(
                        writer, 400,
                        _error_body("bad_request", "malformed request line"),
                        keep_alive=False,
                    )
                    break
                method, path = parts[0].upper(), parts[1]

                headers: dict[str, str] = {}
                while True:
                    line = await timed(reader.readline())
                    if line in (b"\r\n", b"\n", b""):
                        break
                    if len(headers) >= _MAX_HEADERS:
                        raise _RequestError(
                            400, "bad_request",
                            f"more than {_MAX_HEADERS} request headers",
                        )
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                keep_alive = headers.get("connection", "").lower() != "close"

                try:
                    length = int(headers.get("content-length", "0") or "0")
                    if length < 0:
                        raise ValueError(length)
                except ValueError:
                    await self._send(
                        writer, 400,
                        _error_body("bad_request", "invalid Content-Length"),
                        keep_alive=False,
                    )
                    break
                if length > self._max_body_bytes:
                    # Reject without processing — but drain a bounded
                    # amount first so a client mid-send can still read
                    # the 413 instead of hitting a connection reset.
                    try:
                        await timed(reader.readexactly(min(length, 4 << 20)))
                    except asyncio.IncompleteReadError:
                        pass
                    await self._send(
                        writer, 413,
                        _error_body(
                            "payload_too_large",
                            f"request body of {length} bytes exceeds the "
                            f"{self._max_body_bytes}-byte limit",
                        ),
                        keep_alive=False,
                    )
                    break
                body = await timed(reader.readexactly(length)) if length else b""

                # Admission keys on the declared client id; the peer
                # address is the fallback so an anonymous flood is still
                # attributed to its sender, not pooled with everyone.
                client = headers.get("x-client-id", "").strip() or peer
                status, payload = await self._dispatch(
                    method, path, body, client=client
                )
                await self._send(writer, status, payload, keep_alive=keep_alive)
                self._busy.discard(writer)
                if not keep_alive or self._closing:
                    break
        except _RequestError as exc:
            try:
                await self._send(
                    writer, exc.status, _error_body(exc.code, exc.message),
                    keep_alive=False,
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        except (
            asyncio.IncompleteReadError, ConnectionResetError,
            BrokenPipeError, TimeoutError, asyncio.TimeoutError,
        ):
            pass  # client went away or stalled mid-request; drop it
        finally:
            self._busy.discard(writer)
            self._connections.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, status: int, payload,
        *, keep_alive: bool,
    ) -> None:
        # Handlers return dicts (JSON endpoints) or a ready string (the
        # Prometheus exposition, which must not be JSON-quoted).
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = METRICS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        retry_after = ""
        if status in (429, 503) and isinstance(payload, dict):
            seconds = payload.get("error", {}).get("retry_after_s")
            if seconds is not None:
                # HTTP Retry-After is integral seconds; round up so a
                # compliant client never retries before the window.
                retry_after = f"Retry-After: {max(1, int(-(-seconds // 1)))}\r\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes, client: str = ""
    ):
        path = path.split("?", 1)[0]
        routes = {
            "/expand": ("POST", self._handle_expand),
            "/search": ("POST", self._handle_search),
            "/batch_expand": ("POST", self._handle_batch_expand),
            "/stats": ("GET", self._handle_stats),
            "/healthz": ("GET", self._handle_healthz),
            "/metrics": ("GET", self._handle_metrics),
        }
        if self._coordinator is not None:
            routes["/admin/apply_delta"] = ("POST", self._handle_apply_delta)
            routes["/admin/compact"] = ("POST", self._handle_compact)
        started = time.perf_counter()
        self._http_requests += 1
        route = routes.get(path)
        # Unknown paths share one metric label so arbitrary request
        # paths cannot grow the label set without bound.
        self._http_requests_metric.inc(
            endpoint=path if route is not None else "unknown"
        )
        # Load shedding: query endpoints pass the admission gate before
        # the handler runs, so a refusal costs parsing only — never
        # router work.  The slot is held for the handler's full life.
        admitted = False
        shed = None
        if (
            self._admission is not None
            and route is not None
            and method == route[0]
            and path in SHEDDABLE_PATHS
        ):
            decision = self._admission.admit(client)
            if decision.admitted:
                admitted = True
            else:
                shed = decision
        try:
            if shed is not None:
                self._by_endpoint[path] = self._by_endpoint.get(path, 0) + 1
                self._shed_metric.inc(reason=shed.reason)
                payload = _error_body(shed.reason, _SHED_MESSAGES[shed.reason])
                payload["error"]["retry_after_s"] = round(
                    shed.retry_after_s, 3
                )
                status = 429
            else:
                status, payload = await self._route(route, method, path, body)
        finally:
            if admitted:
                self._admission.release()
        if status >= 400:
            self._http_errors += 1
            self._errors_by_status[status] = \
                self._errors_by_status.get(status, 0) + 1
            self._http_errors_metric.inc(status=str(status))
        self._log_request(
            path, status, payload, (time.perf_counter() - started) * 1000.0
        )
        return status, payload

    async def _route(self, route, method: str, path: str, body: bytes):
        """Resolve one request to ``(status, payload)`` — errors included."""
        if route is None:
            return 404, _error_body("not_found", f"unknown endpoint {path!r}")
        expected_method, handler = route
        self._by_endpoint[path] = self._by_endpoint.get(path, 0) + 1
        if method != expected_method:
            return 405, _error_body(
                "method_not_allowed", f"{path} expects {expected_method}"
            )
        try:
            if expected_method == "POST":
                payload = self._parse_json(body)
                return 200, await handler(payload)
            return 200, await handler()
        except _RequestError as exc:
            return exc.status, _error_body(exc.code, exc.message)
        except StaleGenerationError as exc:
            # The client validated its batch against a generation that
            # compaction has since retired: a retryable conflict, not a
            # bad request — refetch /healthz and resubmit.
            body = _error_body("stale_generation", str(exc))
            body["error"].update(expected=exc.expected, got=exc.got)
            return 409, body
        except DeltaError as exc:
            return 400, _error_body("invalid_delta", str(exc))
        except ShardUnavailableError as exc:
            # Graceful degradation, not an internal error: the query's
            # owning shard worker is down.  Healthy-shard queries keep
            # serving; this one gets a structured, retryable 503.
            body = _error_body("shard_unavailable", str(exc))
            body["error"].update(
                shard=exc.shard_id,
                state=exc.state,
                retry_after_s=exc.retry_after_s,
            )
            return 503, body
        except Exception as exc:  # noqa: BLE001 — the envelope must hold
            return 500, _error_body(
                "internal_error", f"{type(exc).__name__}: {exc}"
            )

    def _log_request(
        self, path: str, status: int, payload, latency_ms: float
    ) -> None:
        """Feed the request log; slow requests pull trace context out of
        the response payload (already serialised, so no trace objects)."""
        query = trace_id = None
        stages = None
        if isinstance(payload, dict):
            value = payload.get("query")
            query = value if isinstance(value, str) else None
            trace_id = payload.get("trace_id")
            stages = payload.get("stages")
        self._request_log.record(
            endpoint=path,
            latency_ms=latency_ms,
            status=status,
            query=query,
            trace_id=trace_id,
            stages=stages if isinstance(stages, dict) else None,
        )

    def _parse_json(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _RequestError(
                400, "bad_request", f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise _RequestError(
                400, "bad_request", "request body must be a JSON object"
            )
        return payload

    @staticmethod
    def _query_field(payload: dict) -> str:
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _RequestError(
                400, "invalid_request", "'query' must be a non-empty string"
            )
        return query

    @staticmethod
    def _top_k_field(payload: dict) -> int:
        top_k = payload.get("top_k", 10)
        if not isinstance(top_k, int) or isinstance(top_k, bool) \
                or not 1 <= top_k <= _MAX_TOP_K:
            raise _RequestError(
                400, "invalid_request",
                f"'top_k' must be an integer in [1, {_MAX_TOP_K}]",
            )
        return top_k

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def _handle_expand(self, payload: dict) -> dict:
        query = self._query_field(payload)
        top_k = self._top_k_field(payload)
        response = await self._service.expand_query(query, top_k=top_k)
        return response.as_dict(self._service.doc_names)

    async def _handle_search(self, payload: dict) -> dict:
        """Ranked results only — same pipeline, slimmer payload."""
        query = self._query_field(payload)
        top_k = self._top_k_field(payload)
        response = await self._service.expand_query(query, top_k=top_k)
        return {
            "query": response.query,
            "normalized_query": response.normalized_query,
            "linked": response.linked,
            "results": response.results_as_dicts(self._service.doc_names),
        }

    async def _handle_batch_expand(self, payload: dict) -> dict:
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries \
                or not all(isinstance(q, str) and q.strip() for q in queries):
            raise _RequestError(
                400, "invalid_request",
                "'queries' must be a non-empty list of non-empty strings",
            )
        if len(queries) > _MAX_BATCH_QUERIES:
            raise _RequestError(
                400, "invalid_request",
                f"a batch may hold at most {_MAX_BATCH_QUERIES} queries",
            )
        top_k = self._top_k_field(payload)
        responses = await self._service.batch_expand(queries, top_k=top_k)
        names = self._service.doc_names
        return {"responses": [r.as_dict(names) for r in responses]}

    async def _handle_stats(self) -> dict:
        stats = self._service.stats().as_dict()
        stats["http"] = {
            "requests_total": self._http_requests,
            "errors": self._http_errors,
            "errors_by_status": {
                str(code): count
                for code, count in sorted(self._errors_by_status.items())
            },
            "coalesced_requests": self._service.coalesced_requests,
            "by_endpoint": dict(sorted(self._by_endpoint.items())),
        }
        if self._admission is not None:
            stats["http"]["admission"] = self._admission.snapshot()
        stats["slow_queries"] = self._request_log.snapshot()
        return stats

    async def _handle_healthz(self) -> dict:
        """Liveness plus enough layout to triage a sick replica.

        ``http_requests_total`` counts requests this front end parsed;
        ``router_requests_total`` counts queries offered to the shared
        router (batch members each count, and the in-process surface
        feeds the same counter) — the old ambiguous ``requests_total``
        key is gone.
        """
        stats = self._service.stats()
        supervisor = getattr(self._service, "supervisor", None)
        status = "ok"
        if supervisor is not None and supervisor.degraded:
            status = "degraded"
        payload = {
            "status": status,
            "shards": stats.shards,
            "uptime_s": round(stats.uptime_s, 3),
            "http_requests_total": self._http_requests,
            "http_errors": self._http_errors,
            "router_requests_total": stats.requests_total,
            "router_errors": stats.errors,
            "errors_by_status": {
                str(code): count
                for code, count in sorted(self._errors_by_status.items())
            },
            "hit_rates": {
                "link": round(stats.link_cache.hit_rate, 4),
                "expansion": round(stats.expansion_cache.hit_rate, 4),
            },
            "per_shard": [
                {
                    "shard": shard_id,
                    "queries": shard.queries,
                    "inflight": shard.inflight,
                    "expansion_hit_rate": round(
                        shard.expansion_cache.hit_rate, 4
                    ),
                }
                for shard_id, shard in enumerate(stats.shard_stats)
            ],
        }
        if supervisor is not None:
            # Out-of-process deployment: per-shard worker process state
            # (pid/port/state/restarts) plus the resilience counters.
            payload["workers"] = supervisor.describe()
            payload["worker_restarts"] = stats.worker_restarts
            payload["retries_total"] = stats.retries_total
            payload["hedges_total"] = stats.hedges_total
        if self._snapshot_info:
            payload["snapshot"] = self._snapshot_info
        if self._snapshot_format:
            payload["snapshot_format"] = self._snapshot_format
        if self._admission is not None:
            # Overload triage: current queue depth against the limit,
            # plus what has been shed and why (docs/operations.md).
            payload["admission"] = self._admission.snapshot()
        # Load-bearing for live updates: clients read the generation
        # here and echo it in /admin/apply_delta; a mismatch is a 409.
        payload["snapshot_generation"] = stats.generation
        payload["delta_seq"] = stats.delta_seq
        return payload

    async def _handle_metrics(self) -> str:
        """The whole stack's families as Prometheus text exposition.

        Counters and histograms are live (folded per request); the
        uptime/inflight gauges are refreshed from router stats here, at
        scrape time.
        """
        metrics = self._service.metrics
        metrics.update_from_stats(self._service.stats())
        self._queue_depth_gauge.set(
            self._admission.queue_depth if self._admission is not None else 0
        )
        return metrics.render()

    async def _handle_apply_delta(self, payload: dict) -> dict:
        """Apply one delta batch to the live stack (docs/live_updates.md).

        The body carries ``deltas`` (a list of delta objects in wire
        form) and ``generation`` (the generation the client validated
        against — read it from ``/healthz``).  Validation errors are
        400s; a stale generation is a 409; success returns the apply
        summary (applied count, last sequence, eviction counts).
        """
        deltas = payload.get("deltas")
        if not isinstance(deltas, list) or not deltas:
            raise _RequestError(
                400, "invalid_request",
                "'deltas' must be a non-empty list of delta objects",
            )
        if len(deltas) > _MAX_DELTA_BATCH:
            raise _RequestError(
                400, "invalid_request",
                f"a delta batch may hold at most {_MAX_DELTA_BATCH} deltas",
            )
        generation = payload.get("generation")
        if generation is not None and (
            not isinstance(generation, int) or isinstance(generation, bool)
        ):
            raise _RequestError(
                400, "invalid_request", "'generation' must be an integer"
            )
        coordinator = self._coordinator
        return await asyncio.get_running_loop().run_in_executor(
            None, lambda: coordinator.apply(deltas, generation=generation)
        )

    async def _handle_compact(self, payload: dict) -> dict:
        """Fold the overlay into a new on-disk generation and hot-swap.

        The body is an empty JSON object (reserved for future options).
        Compaction is serialised against concurrent applies inside the
        coordinator; the response reports the new generation.
        """
        del payload  # no options yet; the empty object is the contract
        coordinator = self._coordinator
        return await asyncio.get_running_loop().run_in_executor(
            None, coordinator.compact
        )
