"""Multi-worker shard router: one service facade over N shard workers.

:class:`ShardRouter` serves the same ``expand_query`` / ``batch_expand`` /
``stats`` API as :class:`~repro.service.server.ExpansionService`, but over
a :class:`~repro.service.artifacts.ShardedSnapshot`:

* **Linking** happens once at the router (shared vocabulary, its own LRU),
  because the owning shard of a query is only known after linking.
* **Expansion** is fanned out to the shard *owning* the linked seed set
  (the shard of the smallest seed id — deterministic, so a seed set always
  lands on the same worker and its expansion cache).  Workers are full
  :class:`ExpansionService` instances: per-shard LRU caches, in-flight
  dedup, and the amortised ``expand_batch`` pre-fill all apply per shard.
  Cycle mining runs on the snapshot's frozen
  :class:`~repro.wiki.compact.CompactGraphView` (built from the
  :class:`PartitionedGraphView`, whose per-node halo answers are exact),
  so the mined cycles are identical to the monolithic graph's while the
  neighbourhood/subgraph work stays on CSR arrays.  Snapshots built with
  ``--prefill`` warm each worker's expansion cache at construction.
* **Ranking** is a scatter-gather over every shard's index segment with a
  global statistics exchange (each segment reports local collection counts
  per query leaf, the router sums them into the global background model,
  each segment scores its own documents under it) followed by a
  score-preserving k-way merge.  Scores and top-k order are bit-identical
  to a single engine over the whole collection.

Thread pool: shard fan-out (batch expansion pre-fill, both ranking phases)
runs on one pool sized to the shard count.

The asyncio front end (:mod:`repro.service.async_router` /
:mod:`repro.service.http`) serves the same results over HTTP by driving
the building blocks exposed here (``link_text`` / ``owner_shard`` /
``build_query`` / ``global_background``) through per-shard adapters.
See ``docs/architecture.md`` for the layer map and
``docs/shard_protocol.md`` for the five shard calls as a wire protocol.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.core.expansion import Expander, ExpansionResult, NeighborhoodCycleExpander
from repro.errors import ServiceError
from repro.linking.linker import LinkResult
from repro.obs import trace as tracing
from repro.obs.serving import ServingMetrics
from repro.retrieval.engine import (
    SearchResult,
    background_from_counts,
    collect_leaves,
    merge_ranked_lists,
)
from repro.retrieval.qlang import CombineNode, QueryNode, TermNode, build_phrase_query
from repro.service.artifacts import ShardedSnapshot
from repro.service.cache import CacheStats, LRUCache
from repro.service.server import ExpansionService, ServiceResponse, ServiceStats

__all__ = ["ShardRouter", "RouterStats"]


@dataclass(frozen=True, slots=True)
class RouterStats:
    """Point-in-time counters of the router and each shard worker.

    ``requests_total`` counts every request *offered* to the router
    (single queries and each member of a batch), incremented before any
    work happens, so it is monotonic even across failures; ``queries``
    counts requests served to completion and ``errors`` those that
    raised.  ``requests_total == queries + errors + in-flight`` at any
    instant.  ``/stats`` and ``/healthz`` report these directly instead
    of making callers sum per-shard numbers.

    ``uptime_s`` is seconds since the router was constructed;
    ``per_shard_inflight`` gauges the expansions currently executing on
    each worker (0 for an idle or never-hit shard — zero-lookup-safe,
    like ``per_shard_hit_rates``).

    The resilience counters (``retries_total``, ``hedges_total``,
    ``hedge_wins_total``, ``worker_restarts``) stay 0 for the in-process
    deployment; :meth:`AsyncShardRouter.stats` fills them in when the
    shard adapters are socket-backed and a supervisor is attached.
    """

    shards: int
    requests_total: int
    queries: int
    batches: int
    unlinked_queries: int
    errors: int
    uptime_s: float
    link_cache: CacheStats
    shard_stats: tuple[ServiceStats, ...]
    retries_total: int = 0
    hedges_total: int = 0
    hedge_wins_total: int = 0
    worker_restarts: int = 0
    # Live-update state: the serving snapshot generation, the sequence
    # number of the last applied delta (0 = pristine), and how many
    # cache entries delta application has evicted so far.
    generation: int = 1
    delta_seq: int = 0
    delta_invalidations: int = 0

    @property
    def expansion_cache(self) -> CacheStats:
        """All shard expansion caches summed into one aggregate view."""
        return CacheStats.aggregate(
            [stats.expansion_cache for stats in self.shard_stats]
        )

    @property
    def per_shard_hit_rates(self) -> tuple[float, ...]:
        """Expansion-cache hit rate of each shard worker, in shard order.

        A shard that never saw a lookup reports 0.0 (not a division
        error) — common right after cold start or behind a skewed
        routing distribution.
        """
        return tuple(
            stats.expansion_cache.hit_rate for stats in self.shard_stats
        )

    @property
    def per_shard_inflight(self) -> tuple[int, ...]:
        """Expansions currently inside each shard worker, in shard order."""
        return tuple(stats.inflight for stats in self.shard_stats)

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "requests_total": self.requests_total,
            "errors": self.errors,
            "queries": self.queries,
            "batches": self.batches,
            "unlinked_queries": self.unlinked_queries,
            "uptime_s": round(self.uptime_s, 3),
            "retries_total": self.retries_total,
            "hedges_total": self.hedges_total,
            "hedge_wins_total": self.hedge_wins_total,
            "worker_restarts": self.worker_restarts,
            "generation": self.generation,
            "delta_seq": self.delta_seq,
            "delta_invalidations": self.delta_invalidations,
            "link_cache": self.link_cache.as_dict(),
            "expansion_cache": self.expansion_cache.as_dict(),
            "per_shard_hit_rates": [
                round(rate, 4) for rate in self.per_shard_hit_rates
            ],
            "per_shard_inflight": list(self.per_shard_inflight),
            "per_shard": [stats.as_dict() for stats in self.shard_stats],
        }


class ShardRouter:
    """Shard-transparent serving over a :class:`ShardedSnapshot`.

    Parameters
    ----------
    snapshot:
        The sharded snapshot to serve (or a snapshot directory path, v1
        single-shard directories included).
    expander:
        Expansion strategy shared by all workers; defaults to the
        paper-tuned :class:`NeighborhoodCycleExpander` (stateless, so one
        instance is safe to share).
    link_cache_size / expansion_cache_size:
        Router link-LRU bound and per-worker expansion-LRU bound.
    """

    def __init__(
        self,
        snapshot: ShardedSnapshot,
        expander: Expander | None = None,
        *,
        link_cache_size: int = 4096,
        expansion_cache_size: int = 1024,
    ) -> None:
        # Serve from the compact read path: CSR adjacency for expansion,
        # interned CSR postings for ranking.  frozen() is a no-op for
        # snapshots loaded from the version-3 format.
        from repro.service.shard_worker import make_shard_worker

        snapshot = snapshot.frozen()
        self.snapshot = snapshot
        self._view = snapshot.view()
        self.doc_names = dict(snapshot.doc_names)
        self._linker = snapshot.make_linker(self._view)
        shared_expander = expander or NeighborhoodCycleExpander()
        # Worker construction (cache sizing, warm-cache prefill) is
        # shared with the out-of-process worker entry point
        # (`repro shard-worker`) so both deployments serve from
        # identically configured shards.
        self._workers = [
            make_shard_worker(
                snapshot,
                shard_id,
                linker=self._linker,
                expander=shared_expander,
                expansion_cache_size=expansion_cache_size,
            )
            for shard_id in range(snapshot.num_shards)
        ]
        self._tokenizer = self._workers[0].engine.tokenizer
        self._link_cache = LRUCache(link_cache_size)
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._workers), thread_name_prefix="shard-router"
        )
        self._lock = threading.Lock()
        self._requests = 0
        self._queries = 0
        self._batches = 0
        self._unlinked = 0
        self._errors = 0
        self._started = time.monotonic()
        self._delta_seq = 0
        self._delta_invalidations = 0
        # Process-wide aggregates folded from per-request traces; the
        # async front end shares this instance and /metrics renders it.
        self.metrics = ServingMetrics()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls, snapshot: ShardedSnapshot | str | Path,
        expander: Expander | None = None, **kwargs,
    ) -> "ShardRouter":
        """Cold-start a router from a (sharded or v1) snapshot directory."""
        if not isinstance(snapshot, ShardedSnapshot):
            snapshot = ShardedSnapshot.load(snapshot)
        return cls(snapshot, expander, **kwargs)

    # ------------------------------------------------------------------
    # Serving (ExpansionService-compatible surface)
    # ------------------------------------------------------------------

    @property
    def graph(self):
        """The exact logical graph (a :class:`PartitionedGraphView`)."""
        return self._view

    @property
    def num_shards(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> tuple[ExpansionService, ...]:
        return tuple(self._workers)

    def normalize(self, text: str) -> str:
        """Canonical form of a query: the tokenised text re-joined."""
        return " ".join(self._tokenizer.tokenize_phrase(text))

    def owner_shard(self, seeds: frozenset[int]) -> int:
        """Shard whose worker owns this seed set's expansion.

        The shard of the smallest seed id: deterministic, so repeats of a
        query always hit the same worker's expansion cache.  Empty seed
        sets (keyword fallback) go to shard 0; they never mine cycles.
        """
        if not seeds:
            return 0
        return self._view.owner_shard(min(seeds))

    def expand_query(self, text: str, top_k: int = 10) -> ServiceResponse:
        """Answer one query: link at the router, expand on the owning
        shard, rank across all segments."""
        started = time.perf_counter()
        self._account(requests=1)
        trace = tracing.current_trace() or tracing.Trace()
        error = False
        try:
            with tracing.start_trace(trace):
                normalized = self.normalize(text)
                with tracing.span("link") as span:
                    link, link_cached = self._link(normalized)
                    span["cached"] = link_cached
                worker = self._workers[self.owner_shard(link.article_ids)]
                expansion, expansion_cached = worker.expand_seeds(link.article_ids)
                results = self._rank(normalized, expansion, top_k)
        except Exception:
            error = True
            self._account(errors=1)
            raise
        finally:
            self.metrics.observe_request(
                "expand_query",
                trace,
                time.perf_counter() - started,
                error=error,
            )
        self._account(queries=1, unlinked=0 if link.article_ids else 1)
        return ServiceResponse(
            query=text,
            normalized_query=normalized,
            link=link,
            expansion=expansion,
            results=results,
            link_cached=link_cached,
            expansion_cached=expansion_cached,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            trace=trace,
        )

    def batch_expand(self, texts: list[str], top_k: int = 10) -> list[ServiceResponse]:
        """Answer a batch, fanning expansion work out across shards.

        Raw duplicates are answered once.  Distinct seed sets are grouped
        by owning shard and pre-filled in parallel — each shard pays its
        amortised edge scan once, concurrently with the other shards.
        """
        if not texts:
            return []
        batch_started = time.perf_counter()
        self._account(requests=len(texts))
        trace = tracing.current_trace() or tracing.Trace()
        trace.annotate(batch=len(texts))
        error = False
        try:
            with tracing.start_trace(trace):
                norm_by_text = {
                    text: self.normalize(text) for text in dict.fromkeys(texts)
                }
                normalized = [norm_by_text[text] for text in texts]
                unique_norms = list(dict.fromkeys(normalized))

                with tracing.span("link", queries=len(unique_norms)):
                    links: dict[str, tuple[LinkResult, bool]] = {
                        norm: self._link(norm) for norm in unique_norms
                    }

                by_shard: dict[int, set[frozenset[int]]] = {}
                for norm in unique_norms:
                    seeds = links[norm][0].article_ids
                    by_shard.setdefault(self.owner_shard(seeds), set()).add(seeds)
                prefills = list(self._pool.map(
                    tracing.carry_context(
                        lambda item: self._workers[item[0]].prefill_expansions(item[1])
                    ),
                    by_shard.items(),
                ))
                computed_here: set[frozenset[int]] = \
                    set().union(*prefills) if prefills else set()

                by_norm: dict[str, ServiceResponse] = {}
                for text, norm in zip(texts, normalized):
                    if norm in by_norm:
                        continue
                    started = time.perf_counter()
                    link, link_cached = links[norm]
                    worker = self._workers[self.owner_shard(link.article_ids)]
                    expansion, expansion_cached = worker.expand_seeds(
                        link.article_ids
                    )
                    # The batch itself paid for pre-filled expansions: report cold.
                    if link.article_ids in computed_here:
                        expansion_cached = False
                    results = self._rank(norm, expansion, top_k)
                    by_norm[norm] = ServiceResponse(
                        query=text,
                        normalized_query=norm,
                        link=link,
                        expansion=expansion,
                        results=results,
                        link_cached=link_cached,
                        expansion_cached=expansion_cached,
                        latency_ms=(time.perf_counter() - started) * 1000.0,
                    )
        except Exception:
            error = True
            self._account(errors=len(texts))
            raise
        finally:
            self.metrics.observe_request(
                "batch_expand",
                trace,
                time.perf_counter() - batch_started,
                error=error,
            )
        self._account(
            batches=1,
            queries=len(normalized),
            unlinked=sum(
                1 for norm in normalized if not by_norm[norm].link.article_ids
            ),
        )
        return [by_norm[norm] for norm in normalized]

    def stats(self) -> RouterStats:
        with self._lock:
            return RouterStats(
                shards=self.num_shards,
                requests_total=self._requests,
                queries=self._queries,
                batches=self._batches,
                unlinked_queries=self._unlinked,
                errors=self._errors,
                uptime_s=time.monotonic() - self._started,
                link_cache=self._link_cache.stats,
                shard_stats=tuple(worker.stats() for worker in self._workers),
                generation=self.generation,
                delta_seq=self._delta_seq,
                delta_invalidations=self._delta_invalidations,
            )

    def clear_caches(self) -> None:
        """Drop the router link cache and every worker's caches."""
        self._link_cache.clear()
        for worker in self._workers:
            worker.clear_caches()

    # ------------------------------------------------------------------
    # Live updates (driven by repro.updates.UpdateCoordinator)
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The serving snapshot generation (advanced by compaction)."""
        return self.snapshot.generation

    @property
    def linker(self):
        return self._linker

    @property
    def linker_tokenizer(self):
        """The tokenizer linker rebuilds must use (vocabulary alignment)."""
        return self._tokenizer

    def apply_overlay(
        self, router_view, worker_graph, *, linker=None, delta_seq: int = 0
    ) -> None:
        """Publish new effective graph views after an applied delta batch.

        ``router_view`` replaces the router's logical view (linking,
        ``build_query`` titles, owner routing); ``worker_graph`` is
        pushed into every in-process worker's expansion path.  Both are
        reference swaps — requests in flight finish on the view they
        started with.  The caller evicts invalidated cache entries
        separately (:meth:`evict_expansions` / :meth:`evict_links`).
        """
        self._view = router_view
        if linker is not None:
            self._linker = linker
        for worker in self._workers:
            worker.set_graph(worker_graph, linker=linker)
        if delta_seq:
            with self._lock:
                self._delta_seq = max(self._delta_seq, delta_seq)

    def swap_snapshot(self, snapshot: ShardedSnapshot) -> None:
        """Hot-swap to a compacted generation of the same logical data.

        Compaction only folds *graph* deltas in — index segments and
        document names are unchanged by construction — so the swap
        replaces the graph artefacts (snapshot, view, linker, worker
        graphs) and deliberately keeps engines and caches: the overlay
        the workers were serving is bit-identical to the new base, so
        every cached expansion stays valid across the swap.
        """
        snapshot = snapshot.frozen()
        if snapshot.num_shards != self.num_shards:
            raise ServiceError(
                f"cannot hot-swap to a {snapshot.num_shards}-shard snapshot: "
                f"this router serves {self.num_shards} shard(s)"
            )
        self.snapshot = snapshot
        self._view = snapshot.view()
        self._linker = snapshot.make_linker(self._view)
        for worker in self._workers:
            worker.set_graph(snapshot.compact_graph, linker=self._linker)
        with self._lock:
            self._delta_seq = 0

    def evict_expansions(self, predicate) -> int:
        """Evict matching expansion entries from every worker; returns
        the total count (also folded into the stats counter)."""
        evicted = sum(
            worker.evict_expansions(predicate) for worker in self._workers
        )
        with self._lock:
            self._delta_invalidations += evicted
        return evicted

    def evict_links(self) -> int:
        """Drop all cached link results, router and workers (title
        surface changed); returns the total count."""
        evicted = self._link_cache.evict_where(lambda _key: True)
        for worker in self._workers:
            evicted += worker.evict_links()
        with self._lock:
            self._delta_invalidations += evicted
        return evicted

    def close(self) -> None:
        """Shut the fan-out pool down (the router stops serving)."""
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Building blocks (shared with the asyncio front end)
    # ------------------------------------------------------------------

    def link_text(self, normalized: str) -> tuple[LinkResult, bool]:
        """Entity-link one normalised query through the router link cache."""
        return self._link(normalized)

    def build_query(
        self, normalized: str, expansion: ExpansionResult
    ) -> QueryNode | None:
        """The query AST one expanded query ranks under (None = no terms).

        Expanded queries rank the seed titles plus the expansion titles
        as exact phrases; unlinked queries fall back to the raw keyword
        bag.  Shared by the blocking and the asyncio ranking paths so
        both score the exact same AST.
        """
        if expansion.seed_articles:
            phrases = expansion.all_titles(self._view)
            return build_phrase_query(phrases, self._tokenizer)
        terms = normalized.split()
        if not terms:
            return None
        return CombineNode(tuple(TermNode(term) for term in terms))

    def global_background(self, root: QueryNode, per_segment_counts) -> dict:
        """Global background model from every segment's local counts.

        ``per_segment_counts`` holds one ``leaf -> count`` mapping per
        shard (phase 1 of the scatter-gather); the sums plus the global
        token total reproduce the monolithic collection statistics
        exactly, which is what keeps sharded scores bit-identical.
        """
        totals = {leaf: 0 for leaf in collect_leaves(root)}
        for counts in per_segment_counts:
            for leaf, count in counts.items():
                totals[leaf] += count
        total_tokens = sum(
            worker.engine.index.total_tokens for worker in self._workers
        )
        return background_from_counts(totals, total_tokens)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _account(
        self, *, requests: int = 0, queries: int = 0, batches: int = 0,
        unlinked: int = 0, errors: int = 0,
    ) -> None:
        """Bump serving counters under the lock (async front end included)."""
        with self._lock:
            self._requests += requests
            self._queries += queries
            self._batches += batches
            self._unlinked += unlinked
            self._errors += errors

    def _link(self, normalized: str) -> tuple[LinkResult, bool]:
        cached = self._link_cache.get(normalized)
        if cached is not None:
            return cached, True
        result = self._linker.link(normalized)
        self._link_cache.put(normalized, result)
        return result, False

    def _rank(
        self, normalized: str, expansion: ExpansionResult, top_k: int
    ) -> tuple[SearchResult, ...]:
        root = self.build_query(normalized, expansion)
        if root is None:
            return ()
        return tuple(self._scatter_search(root, top_k))

    def _scatter_search(self, root: QueryNode, top_k: int) -> list[SearchResult]:
        """Two-phase distributed ranking with exact global statistics.

        Each fan-out call records a shard-labelled ``rank`` span
        (``phase`` distinguishes the counts and score phases); the two
        reduce steps record ``merge`` spans.  Trace context is carried
        onto the pool threads explicitly.
        """

        def _counts(item):
            shard_id, engine = item
            with tracing.span("rank", shard=shard_id, phase="counts"):
                return engine.leaf_collection_counts(root)

        def _score(item):
            shard_id, engine = item
            with tracing.span("rank", shard=shard_id, phase="score"):
                return engine.search_with_background(root, background, top_k)

        engines = [worker.engine for worker in self._workers]
        # Phase 1: local collection counts per scoring leaf, in parallel.
        per_segment = list(self._pool.map(
            tracing.carry_context(_counts), enumerate(engines)
        ))
        with tracing.span("merge", phase="background"):
            background = self.global_background(root, per_segment)
        # Phase 2: every segment ranks its own documents under the shared
        # background; the merge preserves scores and global tie-breaks.
        ranked_lists = list(self._pool.map(
            tracing.carry_context(_score), enumerate(engines)
        ))
        with tracing.span("merge", phase="topk"):
            return merge_ranked_lists(ranked_lists, top_k)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ShardRouter(shards={stats.shards}, queries={stats.queries}, "
            f"link_cache={self._link_cache!r})"
        )
