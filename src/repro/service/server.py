"""The online expansion service.

:class:`ExpansionService` answers a single text query end-to-end — entity
linking, cycle-based expansion over the knowledge graph, and language-model
ranking of the expanded ``#combine`` query — without re-running the batch
pipeline.  It is the serving-layer counterpart of the offline harness: the
harness proves the method on a benchmark; the service applies the method to
ad-hoc traffic.

Two LRU layers absorb repeated work (see :mod:`repro.service.cache`):

* ``LinkResult`` by normalised query text — queries that differ only in
  case/punctuation share one linking pass;
* ``ExpansionResult`` by linked-entity frozenset — distinct phrasings that
  link to the same entities share one (expensive) cycle-mining pass.

Concurrency: the service is thread-safe.  An in-flight table deduplicates
identical expansions across threads — when two requests race on the same
entity set, one mines cycles and the other waits for the result instead of
mining twice.  :meth:`ExpansionService.batch_expand` additionally
deduplicates identical queries *within* a batch and amortises the
full-graph edge scan across the batch's distinct entity sets (see
:meth:`repro.core.expansion.NeighborhoodCycleExpander.expand_batch`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.expansion import (
    Expander,
    ExpansionResult,
    NeighborhoodCycleExpander,
)
from repro.errors import ServiceError
from repro.linking.linker import EntityLinker, LinkResult
from repro.obs import trace as tracing
from repro.retrieval.compact import CompactIndex
from repro.retrieval.engine import SearchEngine, SearchResult
from repro.retrieval.qlang import CombineNode, TermNode
from repro.retrieval.scoring import DirichletSmoothing
from repro.service.artifacts import Snapshot
from repro.service.cache import CacheStats, LRUCache
from repro.wiki.compact import CompactGraphView

__all__ = ["ExpansionService", "ServiceResponse", "ServiceStats"]


@dataclass(frozen=True, slots=True)
class ServiceResponse:
    """Everything the service knows about one answered query.

    ``trace`` is the request-scoped :class:`repro.obs.trace.Trace` that
    recorded this query's per-stage spans (None for batch members,
    whose spans aggregate into one batch-level trace instead).
    Coalesced responses share the computing request's trace.
    """

    query: str
    normalized_query: str
    link: LinkResult
    expansion: ExpansionResult
    results: tuple[SearchResult, ...]
    link_cached: bool
    expansion_cached: bool
    latency_ms: float
    trace: tracing.Trace | None = None

    def stage_totals_ms(self) -> dict[str, float]:
        """Busy milliseconds per pipeline stage ({} without a trace)."""
        return self.trace.stage_totals_ms() if self.trace is not None else {}

    @property
    def linked(self) -> bool:
        """Whether any entity was linked (False => keyword fallback ranking)."""
        return bool(self.link.article_ids)

    def results_as_dicts(self, doc_names: dict[str, str] | None = None) -> list[dict]:
        """The ranked-result rows of the wire form (shared by
        ``/expand`` and ``/search`` so the two can never drift apart)."""
        names = doc_names or {}
        return [
            {
                "rank": result.rank,
                "doc_id": result.doc_id,
                "score": result.score,
                "name": names.get(result.doc_id, ""),
            }
            for result in self.results
        ]

    def as_dict(self, doc_names: dict[str, str] | None = None) -> dict:
        """The JSON wire form served by ``POST /expand``.

        Documented field by field in ``docs/http_api.md`` — change the
        two together.  Scores are emitted as plain floats: Python's JSON
        writer round-trips them exactly, so a client parsing the payload
        recovers bit-identical scores (the HTTP regime of the latency
        bench asserts this).
        """
        names = doc_names or {}
        return {
            "query": self.query,
            "normalized_query": self.normalized_query,
            "linked": self.linked,
            "link": {
                "article_ids": sorted(self.link.article_ids),
                "matches": [
                    {
                        "article_id": match.article_id,
                        "title_tokens": list(match.title_tokens),
                        "start": match.start,
                        "end": match.end,
                        "via_synonym": match.via_synonym,
                    }
                    for match in self.link.matches
                ],
            },
            "expansion": {
                "seed_articles": sorted(self.expansion.seed_articles),
                "article_ids": sorted(self.expansion.article_ids),
                "titles": list(self.expansion.titles),
                "num_features": self.expansion.num_features,
                "num_cycles": len(self.expansion.cycles),
            },
            "results": self.results_as_dicts(names),
            "link_cached": self.link_cached,
            "expansion_cached": self.expansion_cached,
            "latency_ms": round(self.latency_ms, 3),
            # Always present (stable schema); {} when no per-request
            # trace exists (batch members aggregate into a batch trace).
            "stages": self.stage_totals_ms(),
            **(
                {"trace_id": self.trace.trace_id}
                if self.trace is not None else {}
            ),
        }


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Point-in-time service counters.

    ``inflight`` is a gauge, not a counter: the number of expansions
    executing (or waited on) inside this service at snapshot time.  It
    is 0 on an idle service — zero-lookup-safe like the hit rates.
    """

    queries: int
    batches: int
    unlinked_queries: int
    inflight_waits: int
    link_cache: CacheStats
    expansion_cache: CacheStats
    inflight: int = 0

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "batches": self.batches,
            "unlinked_queries": self.unlinked_queries,
            "inflight_waits": self.inflight_waits,
            "inflight": self.inflight,
            "link_cache": self.link_cache.as_dict(),
            "expansion_cache": self.expansion_cache.as_dict(),
        }


class ExpansionService:
    """Thread-safe online query expansion over prebuilt artefacts.

    Parameters
    ----------
    graph / engine / linker:
        The knowledge graph, a ready search engine, and a ready entity
        linker — typically materialised from a :class:`Snapshot`.
    expander:
        Expansion strategy; defaults to the paper-tuned
        :class:`NeighborhoodCycleExpander`.
    doc_names:
        Optional ``doc_id -> display name`` map used by callers that render
        results (the CLI); the service itself only passes it through.
    link_cache_size / expansion_cache_size:
        LRU bounds of the two cache layers.
    allow_empty_index:
        Permit an engine with no indexed documents.  Standalone services
        reject that (serving nothing is a misconfiguration), but a shard
        worker behind :class:`repro.service.router.ShardRouter` may own an
        empty index segment and still perform linking/expansion work.
    shard_id:
        The shard this worker serves under a router, used only to label
        trace spans (``None`` for a standalone service).
    """

    def __init__(
        self,
        graph,
        engine: SearchEngine,
        linker: EntityLinker,
        expander: Expander | None = None,
        *,
        doc_names: dict[str, str] | None = None,
        link_cache_size: int = 4096,
        expansion_cache_size: int = 1024,
        allow_empty_index: bool = False,
        shard_id: int | None = None,
    ) -> None:
        if engine.num_documents == 0 and not allow_empty_index:
            raise ServiceError("cannot serve from an engine with no indexed documents")
        self._graph = graph
        self._engine = engine
        self._linker = linker
        self._expander = expander or NeighborhoodCycleExpander()
        # Cycle-mining engine, for the cycle_mine span label (None for
        # duck-typed expanders that don't expose one).
        self._cycle_engine = getattr(self._expander, "engine", None)
        self.doc_names = dict(doc_names or {})
        self._link_cache = LRUCache(link_cache_size)
        self._expansion_cache = LRUCache(expansion_cache_size)
        self._lock = threading.Lock()
        self._inflight: dict[frozenset[int], threading.Event] = {}
        self._shard_id = shard_id
        self._queries = 0
        self._batches = 0
        self._unlinked = 0
        self._inflight_waits = 0
        self._active = 0  # expansions currently inside _expand_seeds

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Snapshot | str | Path,
        expander: Expander | None = None,
        *,
        compact: bool = True,
        **kwargs,
    ) -> "ExpansionService":
        """Cold-start a service from a snapshot (or a snapshot directory).

        With ``compact`` (the default) the hot read path is frozen into
        the array-backed structures — :class:`CompactGraphView` for
        expansion, :class:`CompactIndex` for ranking — which answer
        bit-identically to the dict-backed originals but markedly
        faster.  ``compact=False`` keeps the dict path; the latency
        benchmark uses it to measure the speedup in one process.
        """
        if not isinstance(snapshot, Snapshot):
            snapshot = Snapshot.load(snapshot)
        if compact:
            graph = CompactGraphView.from_graph(snapshot.graph)
            engine = SearchEngine(
                smoothing=DirichletSmoothing(mu=snapshot.mu),
                index=CompactIndex.from_index(snapshot.index),
            )
        else:
            graph = snapshot.graph
            engine = snapshot.make_engine()
        return cls(
            graph,
            engine,
            snapshot.make_linker(),
            expander,
            doc_names=snapshot.doc_names,
            **kwargs,
        )

    @classmethod
    def from_benchmark(
        cls, benchmark, expander: Expander | None = None, **kwargs
    ) -> "ExpansionService":
        """Build a service directly from a benchmark (tests, ad-hoc use)."""
        return cls.from_snapshot(Snapshot.build(benchmark), expander, **kwargs)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def graph(self):
        return self._graph

    @property
    def engine(self) -> SearchEngine:
        return self._engine

    def normalize(self, text: str) -> str:
        """Canonical form of a query: the tokenised text re-joined."""
        return " ".join(self._engine.tokenizer.tokenize_phrase(text))

    def expand_query(self, text: str, top_k: int = 10) -> ServiceResponse:
        """Answer one query: link, expand, rank.

        Always traced: a standalone service starts a request-scoped
        trace of its own; under a router the router's trace is already
        active and the spans recorded here land in it.
        """
        active = tracing.current_trace()
        if active is not None:
            return self._serve_one(text, top_k, active)
        with tracing.start_trace() as trace:
            return self._serve_one(text, top_k, trace)

    def _serve_one(
        self, text: str, top_k: int, trace: tracing.Trace
    ) -> ServiceResponse:
        started = time.perf_counter()
        normalized = self.normalize(text)
        with tracing.span("link", shard=self._shard_id) as span:
            link, link_cached = self._link(normalized)
            span["cached"] = link_cached
        expansion, expansion_cached = self._expand_seeds(link.article_ids)
        with tracing.span("rank", shard=self._shard_id):
            results = self._rank(normalized, expansion, top_k)
        with self._lock:
            self._queries += 1
            if not link.article_ids:
                self._unlinked += 1
        return ServiceResponse(
            query=text,
            normalized_query=normalized,
            link=link,
            expansion=expansion,
            results=results,
            link_cached=link_cached,
            expansion_cached=expansion_cached,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            trace=trace,
        )

    def batch_expand(self, texts: list[str], top_k: int = 10) -> list[ServiceResponse]:
        """Answer a batch of queries, sharing work across its members.

        Identical raw strings are deduplicated before any work happens (a
        batch of N copies of one query costs one tokenisation, one link and
        one expansion, not N cache probes racing the in-flight table), and
        identical queries after normalisation are answered once with the
        response object reused.  All uncached expansions of the batch run
        through :meth:`NeighborhoodCycleExpander.expand_batch` when the
        configured expander provides it, so the full-graph edge scan is
        paid once per batch instead of once per query.
        """
        if not texts:
            return []
        if tracing.current_trace() is None:
            # One trace aggregates the whole batch (members share the
            # amortised pre-fill, so per-member stage attribution would
            # be arbitrary); responses carry trace=None.
            with tracing.start_trace() as trace:
                trace.annotate(batch=len(texts))
                return self._serve_batch(texts, top_k)
        return self._serve_batch(texts, top_k)

    def _serve_batch(self, texts: list[str], top_k: int) -> list[ServiceResponse]:
        # Dedupe raw strings first: repeated identical queries are common
        # in real batches and should not even pay repeated normalisation.
        norm_by_text = {text: self.normalize(text) for text in dict.fromkeys(texts)}
        normalized = [norm_by_text[text] for text in texts]
        unique_norms = list(dict.fromkeys(normalized))

        with tracing.span("link", shard=self._shard_id, queries=len(unique_norms)):
            links: dict[str, tuple[LinkResult, bool]] = {
                norm: self._link(norm) for norm in unique_norms
            }

        # Pre-fill the expansion cache for all distinct, uncached, non-empty
        # entity sets in one amortised pass.
        computed_here = self.prefill_expansions(
            links[norm][0].article_ids for norm in unique_norms
        )

        by_norm: dict[str, ServiceResponse] = {}
        for text, norm in zip(texts, normalized):
            if norm not in by_norm:
                started = time.perf_counter()
                link, link_cached = links[norm]
                expansion, expansion_cached = self._expand_seeds(link.article_ids)
                # An expansion computed by this batch's pre-fill pass is not
                # "cached" from the caller's perspective: the batch paid for it.
                if link.article_ids in computed_here:
                    expansion_cached = False
                with tracing.span("rank", shard=self._shard_id):
                    results = self._rank(norm, expansion, top_k)
                by_norm[norm] = ServiceResponse(
                    query=text,
                    normalized_query=norm,
                    link=link,
                    expansion=expansion,
                    results=results,
                    link_cached=link_cached,
                    expansion_cached=expansion_cached,
                    latency_ms=(time.perf_counter() - started) * 1000.0,
                )
        # Duplicates share a response object but still count as served
        # queries — throughput accounting should reflect offered load.
        with self._lock:
            self._batches += 1
            self._queries += len(normalized)
            self._unlinked += sum(
                1 for norm in normalized if not by_norm[norm].link.article_ids
            )
        return [by_norm[norm] for norm in normalized]

    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                queries=self._queries,
                batches=self._batches,
                unlinked_queries=self._unlinked,
                inflight_waits=self._inflight_waits,
                link_cache=self._link_cache.stats,
                expansion_cache=self._expansion_cache.stats,
                inflight=self._active,
            )

    def clear_caches(self) -> None:
        """Drop cached links and expansions (counters are preserved)."""
        self._link_cache.clear()
        self._expansion_cache.clear()

    # ------------------------------------------------------------------
    # Live updates (driven by repro.updates — see docs/live_updates.md)
    # ------------------------------------------------------------------

    def set_graph(self, graph, linker: EntityLinker | None = None) -> None:
        """Swap the serving graph (and optionally the linker) in place.

        The live-update path publishes a fresh
        :class:`~repro.updates.overlay.OverlayGraphView` here after each
        applied delta batch, and the compacted base graph after a hot
        swap.  Swapping is a reference assignment — requests already
        executing finish against the view they started with; the caller
        is responsible for evicting the cache entries the change
        invalidates (:meth:`evict_expansions`).
        """
        self._graph = graph
        if linker is not None:
            self._linker = linker

    def evict_expansions(self, predicate) -> int:
        """Targeted invalidation: drop expansion-cache entries whose
        seed-set key satisfies ``predicate``; returns the count."""
        return self._expansion_cache.evict_where(predicate)

    def evict_links(self) -> int:
        """Drop every cached link result (title surface changed);
        returns the count."""
        return self._link_cache.evict_where(lambda _key: True)

    def warm_expansions(self, entries) -> int:
        """Seed the expansion cache with precomputed results.

        ``entries`` yields ``(seed_set, ExpansionResult)`` pairs — the
        shape :attr:`ShardedSnapshot.prefills` stores per shard.  Warming
        counts neither hits nor misses; the first real lookup of a warmed
        entry reports as a cache hit, so prefilled queries serve at
        cached-tier latency from the very first request.  Returns the
        number of entries installed.  The expansion cache must be sized
        to hold every entry (:class:`~repro.service.router.ShardRouter`
        and the CLI guarantee this) — a smaller bound would evict warmed
        entries before the first request ever reads them.
        """
        count = 0
        for seeds, result in entries:
            self._expansion_cache.put(frozenset(seeds), result)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Shard-worker API (used by the router; also the batch building block)
    # ------------------------------------------------------------------

    def link_text(self, normalized: str) -> tuple[LinkResult, bool]:
        """Entity-link one normalised query through the link cache."""
        return self._link(normalized)

    def expand_seeds(self, seeds: frozenset[int]) -> tuple[ExpansionResult, bool]:
        """Expansion for one entity set (cached, in-flight deduplicated).

        Returns ``(result, was_cached)``.  This is the unit of work a
        router fans out to the shard owning ``seeds``.
        """
        return self._expand_seeds(frozenset(seeds))

    def prefill_expansions(self, seed_sets) -> set[frozenset[int]]:
        """Amortised pre-fill of the expansion cache for a batch.

        Claims every distinct, uncached, non-empty entity set, computes
        them in one :meth:`NeighborhoodCycleExpander.expand_batch` pass
        (when the expander provides it) and publishes the results.
        Returns the seed sets computed by this call; sets already cached
        or being computed by another thread are left to
        :meth:`expand_seeds` to pick up.
        """
        batch_expand = getattr(self._expander, "expand_batch", None)
        computed_here: set[frozenset[int]] = set()
        if batch_expand is None:
            return computed_here
        pending = self._claim_pending({frozenset(seeds) for seeds in seed_sets})
        if pending:
            try:
                with tracing.span(
                    "cycle_mine", shard=self._shard_id, batch=len(pending)
                ) as span:
                    if self._cycle_engine is not None:
                        span["engine"] = self._cycle_engine
                    expansions = list(batch_expand(self._graph, pending))
                for seeds, result in zip(pending, expansions):
                    self._expansion_cache.put(seeds, result)
                    computed_here.add(seeds)
            finally:
                self._release_pending(pending)
        return computed_here

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _link(self, normalized: str) -> tuple[LinkResult, bool]:
        cached = self._link_cache.get(normalized)
        if cached is not None:
            return cached, True
        result = self._linker.link(normalized)
        self._link_cache.put(normalized, result)
        return result, False

    def _expand_seeds(self, seeds: frozenset[int]) -> tuple[ExpansionResult, bool]:
        """Expansion for one entity set, deduplicating in-flight work.

        Records the ``expand`` span (cache tier in its ``cached`` label)
        and counts toward the ``inflight`` gauge while executing.
        """
        if not seeds:
            return ExpansionResult(
                seed_articles=frozenset(), article_ids=frozenset(), titles=()
            ), False
        with self._lock:
            self._active += 1
        try:
            with tracing.span("expand", shard=self._shard_id) as span:
                result, cached = self._expand_seeds_locked(seeds)
                span["cached"] = cached
                return result, cached
        finally:
            with self._lock:
                self._active -= 1

    def _expand_seeds_locked(
        self, seeds: frozenset[int]
    ) -> tuple[ExpansionResult, bool]:
        """The winner of the in-flight race computes and publishes to the
        cache; losers wait on its event and re-read.  If the winner
        fails, its event is still set and a waiter takes over."""
        while True:
            cached = self._expansion_cache.get(seeds)
            if cached is not None:
                return cached, True
            with self._lock:
                again = self._expansion_cache.peek(seeds)
                if again is not None:
                    return again, True
                event = self._inflight.get(seeds)
                if event is None:
                    event = threading.Event()
                    self._inflight[seeds] = event
                    break
                self._inflight_waits += 1
            event.wait()
        try:
            with tracing.span("cycle_mine", shard=self._shard_id) as span:
                if self._cycle_engine is not None:
                    span["engine"] = self._cycle_engine
                result = self._expander.expand(self._graph, seeds)
            self._expansion_cache.put(seeds, result)
            return result, False
        finally:
            with self._lock:
                self._inflight.pop(seeds, None)
            event.set()

    def _claim_pending(self, seed_sets: set[frozenset[int]]) -> list[frozenset[int]]:
        """Mark uncached entity sets as in-flight for a batch pre-fill."""
        claimed: list[frozenset[int]] = []
        with self._lock:
            for seeds in sorted(seed_sets, key=sorted):
                if not seeds or self._expansion_cache.peek(seeds) is not None:
                    continue
                if seeds in self._inflight:
                    continue  # another thread is on it; _expand_seeds will wait
                self._inflight[seeds] = threading.Event()
                claimed.append(seeds)
        return claimed

    def _release_pending(self, claimed: list[frozenset[int]]) -> None:
        with self._lock:
            events = [self._inflight.pop(seeds, None) for seeds in claimed]
        for event in events:
            if event is not None:
                event.set()

    def _rank(
        self, normalized: str, expansion: ExpansionResult, top_k: int
    ) -> tuple[SearchResult, ...]:
        if expansion.seed_articles:
            phrases = expansion.all_titles(self._graph)
            return tuple(self._engine.search_phrases(phrases, top_k=top_k))
        # Keyword fallback: no entity linked, rank the bag of words.
        terms = normalized.split()
        if not terms:
            return ()
        query = CombineNode(tuple(TermNode(term) for term in terms))
        return tuple(self._engine.search(query, top_k=top_k))

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ExpansionService(queries={stats.queries}, "
            f"link_cache={self._link_cache!r}, expansion_cache={self._expansion_cache!r})"
        )
