"""Out-of-process shard worker: one shard served over the wire protocol.

A shard worker is a process that loads *one* shard of a
:class:`~repro.service.artifacts.ShardedSnapshot` and serves the five
shard-protocol calls (``docs/shard_protocol.md``) over length-prefixed
JSON frames (:mod:`repro.service.wire`) on the same asyncio-streams
machinery the HTTP front end uses.  Start one with::

    python -m repro.cli shard-worker --snapshot DIR --shard 2 --port 0

``--port 0`` binds an ephemeral port; the worker prints a single ready
line (``shard-worker: shard 2 serving on 127.0.0.1:PORT pid=PID``) that
:class:`~repro.service.supervisor.ShardSupervisor` parses.

Connection lifecycle: the first frame on every connection must be a
``hello`` handshake carrying the peer's protocol version.  A mismatch
is answered with a clean error frame and the connection is closed —
version negotiation fails loudly instead of mis-decoding call frames.
The hello response carries static shard metadata (pid, document count,
segment token total) so a supervisor's liveness ping doubles as a
readiness check without touching the five calls.

Trace propagation (the PR-6 follow-up): a call frame may carry the
router's ``trace_id``; the worker executes the call inside a trace with
that id and returns its recorded spans in the response, which the
socket adapter replays into the router-side request trace — one
``/metrics`` scrape still sees the whole pipeline, processes included.

Execution model mirrors the in-process stack: the event loop frames and
dispatches; the calls themselves (cycle mining is CPU-heavy and cache-
stateful) run on a small thread pool, so a slow expansion does not stop
the worker from answering rank calls on other connections.

Fault injection (:mod:`repro.service.faults`) hooks in *here*, at the
frame layer — after a request is decoded, before it is dispatched — so
``tests/service/test_shard_faults.py`` can kill, stall, or corrupt a
specific call deterministically.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor

from repro.core.expansion import Expander, NeighborhoodCycleExpander
from repro.errors import ServiceError
from repro.obs import trace as tracing
from repro.service import wire
from repro.service.artifacts import ShardedSnapshot
from repro.service.faults import FaultPlan
from repro.service.server import ExpansionService

from repro.service.wire import SHARD_PROTOCOL_VERSION

__all__ = ["make_shard_worker", "ShardWorkerServer", "run_worker"]

READY_LINE = "shard-worker: shard {shard} serving on {host}:{port} pid={pid}"

_CALLS = (
    "link_text",
    "expand_seeds",
    "prefill_expansions",
    "leaf_collection_counts",
    "search_with_background",
    "apply_delta",
)


def make_shard_worker(
    snapshot: ShardedSnapshot,
    shard_id: int,
    *,
    linker=None,
    expander: Expander | None = None,
    expansion_cache_size: int = 1024,
) -> ExpansionService:
    """One shard's :class:`ExpansionService`, configured the router way.

    Shared by :class:`~repro.service.router.ShardRouter` (in-process
    workers) and :class:`ShardWorkerServer` (worker processes), so both
    deployments serve from identically configured workers: minimum link
    cache (linking happens at the router), expansion cache sized to hold
    the shard's whole prefill, empty index segments allowed, and the
    prefilled expansions warmed before the first request.
    """
    snapshot = snapshot.frozen()
    expander = expander or NeighborhoodCycleExpander()
    prefill = snapshot.prefill_for(shard_id, expander)
    worker = ExpansionService(
        snapshot.compact_graph,
        snapshot.make_segment_engine(shard_id),
        linker if linker is not None else snapshot.make_linker(snapshot.view()),
        expander,
        doc_names=snapshot.doc_names,
        # Linking happens once at the router (owner routing needs the
        # seeds before a worker is chosen), so worker link caches would
        # only ever hold dead entries — keep them at the minimum size.
        link_cache_size=1,
        expansion_cache_size=max(expansion_cache_size, len(prefill)),
        allow_empty_index=True,
        shard_id=shard_id,
    )
    if prefill:
        worker.warm_expansions(prefill)
    return worker


class ShardWorkerServer:
    """Serve one shard worker's five protocol calls over asyncio streams."""

    def __init__(
        self,
        worker: ExpansionService,
        shard_id: int,
        *,
        faults: FaultPlan | None = None,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
        executor: ThreadPoolExecutor | None = None,
        updater=None,
    ) -> None:
        self._worker = worker
        self._shard_id = shard_id
        self._faults = faults
        # Live-update receiver (repro.updates.ShardWorkerUpdater); a
        # server without one rejects apply_delta with an error frame.
        self._updater = updater
        self._max_frame_bytes = max_frame_bytes
        self._own_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=4, thread_name_prefix=f"shard-{shard_id}"
        )
        self._server: asyncio.AbstractServer | None = None
        self.calls_served = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        self._server = await asyncio.start_server(self._serve_connection, host, port)
        return self._server

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._own_executor:
            self._executor.shutdown(wait=False)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _hello_response(self) -> dict:
        engine = self._worker.engine
        payload = {
            "ok": True,
            "protocol": SHARD_PROTOCOL_VERSION,
            "shard": self._shard_id,
            "pid": os.getpid(),
            "documents": engine.num_documents,
            "total_tokens": engine.index.total_tokens,
        }
        if self._updater is not None:
            payload["generation"] = self._updater.generation
            payload["delta_seq"] = self._updater.last_seq
        return payload

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await wire.read_frame(
                reader, max_frame_bytes=self._max_frame_bytes
            )
            if hello is None:
                return
            if hello.get("call") != "hello":
                await wire.write_frame(writer, _error_frame(
                    "protocol_error",
                    f"expected a hello handshake, got {hello.get('call')!r}",
                ))
                return
            if hello.get("protocol") != SHARD_PROTOCOL_VERSION:
                await wire.write_frame(writer, _error_frame(
                    "protocol_mismatch",
                    f"peer speaks shard protocol {hello.get('protocol')!r}, "
                    f"this worker speaks {SHARD_PROTOCOL_VERSION}",
                ))
                return
            await wire.write_frame(writer, self._hello_response())
            while True:
                request = await wire.read_frame(
                    reader, max_frame_bytes=self._max_frame_bytes
                )
                if request is None:
                    return
                if not await self._serve_call(request, writer):
                    return
        except (
            wire.WireProtocolError, ConnectionResetError, BrokenPipeError,
        ):
            pass  # peer vanished or sent garbage; drop the connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_call(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one call frame; False closes the connection."""
        call = request.get("call")
        if call not in _CALLS:
            await wire.write_frame(
                writer, _error_frame("unknown_call", f"unknown call {call!r}")
            )
            return True
        fault = self._faults.check(call) if self._faults else None
        if fault is not None and fault.action == "kill":
            os._exit(17)  # a hard crash: no response, no cleanup
        if fault is not None and fault.action == "stall":
            await asyncio.sleep(fault.arg)
        if fault is not None and fault.action == "garbage":
            # A well-framed body that is not JSON: exercises the
            # receiver's decode error path, not its length check.
            body = b"\xffgarbage\xfe"
            writer.write(len(body).to_bytes(4, "big") + body)
            await writer.drain()
            return False

        trace = tracing.Trace(trace_id=request.get("trace_id") or None)

        def run():
            with tracing.start_trace(trace):
                return self._dispatch(call, request)

        try:
            response = await asyncio.get_running_loop().run_in_executor(
                self._executor, run
            )
        except Exception as exc:  # noqa: BLE001 — becomes an error frame
            response = _error_frame(type(exc).__name__, str(exc))
        else:
            response["spans"] = [span.as_dict() for span in trace.spans]
        self.calls_served += 1

        if fault is not None and fault.action == "short":
            frame = wire.encode_frame(response)
            writer.write(frame[: max(1, len(frame) // 2)])
            await writer.drain()
            return False
        await wire.write_frame(writer, response)
        return True

    # ------------------------------------------------------------------
    # Call dispatch (runs on an executor thread, inside the call's trace)
    # ------------------------------------------------------------------

    def _dispatch(self, call: str, request: dict) -> dict:
        worker = self._worker
        if call == "link_text":
            with tracing.span("link", shard=self._shard_id) as span:
                link, cached = worker.link_text(str(request["normalized"]))
                span["cached"] = cached
            return {"link": wire.encode_link_result(link), "cached": cached}
        if call == "expand_seeds":
            seeds = frozenset(int(s) for s in request["seeds"])
            expansion, cached = worker.expand_seeds(seeds)
            return {"expansion": wire.encode_expansion(expansion), "cached": cached}
        if call == "prefill_expansions":
            seed_sets = [
                frozenset(int(s) for s in seeds)
                for seeds in request["seed_sets"]
            ]
            computed = worker.prefill_expansions(seed_sets)
            return {"computed": [sorted(seeds) for seeds in computed]}
        if call == "leaf_collection_counts":
            root = wire.decode_query(request["root"])
            with tracing.span("rank", shard=self._shard_id, phase="counts"):
                counts = worker.engine.leaf_collection_counts(root)
            return {"counts": wire.encode_counts(counts)}
        if call == "search_with_background":
            root = wire.decode_query(request["root"])
            background = wire.decode_background(request["background"])
            top_k = int(request["top_k"])
            with tracing.span("rank", shard=self._shard_id, phase="score"):
                results = worker.engine.search_with_background(
                    root, background, top_k
                )
            return {"results": wire.encode_results(results)}
        if call == "apply_delta":
            if self._updater is None:
                raise ServiceError(
                    "this shard worker was started without live-update "
                    "support (no delta updater attached)"
                )
            generation = request.get("generation")
            result = self._updater.apply_payloads(
                request["deltas"],
                generation=None if generation is None else int(generation),
            )
            return {"result": result}
        raise AssertionError(f"unreachable call {call!r}")


def _error_frame(error_type: str, message: str) -> dict:
    return {"error": {"type": error_type, "message": message}}


def run_worker(
    snapshot_dir: str,
    shard_id: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    fault_spec: str = "",
) -> int:
    """Load one shard and serve it until interrupted (the CLI entry).

    ``snapshot_dir`` is the snapshot *root*: the loader follows its
    ``CURRENT`` generation pointer, and any delta-log segments of the
    loaded generation are replayed before the socket opens — a
    restarted worker catches up to the batches its peers applied live
    (``docs/live_updates.md``).
    """
    from repro.updates import DeltaLog, ShardWorkerUpdater

    snapshot = ShardedSnapshot.load(snapshot_dir)
    if not 0 <= shard_id < snapshot.num_shards:
        raise ServiceError(
            f"shard {shard_id} out of range: snapshot has "
            f"{snapshot.num_shards} shard(s)"
        )
    faults = FaultPlan.from_spec(fault_spec) if fault_spec \
        else FaultPlan.from_env()
    worker = make_shard_worker(snapshot, shard_id)
    updater = ShardWorkerUpdater(
        worker, snapshot.compact_graph, generation=snapshot.generation
    )
    pending = DeltaLog(snapshot_dir).replay(snapshot.generation)
    if pending:
        updater.apply(pending)
    server = ShardWorkerServer(
        worker, shard_id, faults=faults or None, updater=updater
    )

    async def serve() -> None:
        bound = await server.start(host, port)
        print(
            READY_LINE.format(
                shard=shard_id, host=host, port=server.port, pid=os.getpid()
            ),
            flush=True,
        )
        async with bound:
            await bound.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0
