"""Socket-backed shard adapter: deadlines, retries, hedging, fallback.

:class:`SocketShardAdapter` is the drop-in replacement for
:class:`~repro.service.async_router.ExecutorShardAdapter` that speaks
the versioned wire protocol (``docs/shard_protocol.md``) to a
:mod:`repro.service.shard_worker` process instead of calling an
in-process worker.  The five protocol methods have identical signatures
and return identical values — bit-identical doc ids and scores is the
acceptance bar, asserted per query in the latency bench — so
:class:`~repro.service.async_router.AsyncShardRouter` cannot tell the
two apart.

What is genuinely new here is the robustness layer a remote shard
needs:

* **Deadlines** — every attempt is bounded by ``call_timeout_s``
  (``connect_timeout_s`` for dialing); a stalled worker costs one
  deadline, not a wedged router.
* **Retries** — transport failures (connect refused, torn frames,
  deadlines) are retried on a *fresh* connection with bounded
  exponential backoff.  Safe unconditionally: every protocol call is a
  pure function of snapshot + arguments.  An *error frame* from a live
  worker (:class:`~repro.errors.WorkerCallError`) is never retried —
  the worker would deterministically fail again.
* **Hedging** — with ``hedge_after_s`` set, an attempt that has not
  answered within that delay gets a second, concurrent attempt on its
  own connection; the first answer wins and the loser is cancelled.
  This trades a bounded amount of duplicate work for the tail latency
  of a slow-but-alive shard.
* **Graceful degradation** — when every attempt fails the call raises
  :class:`~repro.errors.ShardUnavailableError`.  For the two *rank*
  calls the adapter can instead fall back to a router-local
  ``fallback_engine`` (the router keeps the snapshot loaded, so
  queries owned by healthy shards stay bit-identical while one shard
  is down); ``expand_seeds`` has no fallback by design — the owner
  shard's expansion cache is the whole point — so dead-shard-owned
  queries surface as a structured 503 at the HTTP layer.

Worker spans ride home in each response (``spans``) and are replayed
into the active request trace, so one ``/metrics`` scrape still sees
``link``/``expand``/``cycle_mine``/``rank`` per shard with workers out
of process.

Loop affinity matches the async router: one adapter belongs to one
event loop; counters (``retries_total``, ``hedges_total``,
``hedge_wins_total``) are mutated loop-side only, no locks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    ShardUnavailableError,
    WireProtocolError,
    WorkerCallError,
)
from repro.obs import trace as tracing
from repro.service import wire
from repro.service.wire import SHARD_PROTOCOL_VERSION

__all__ = ["ShardCallPolicy", "SocketShardAdapter"]

# Endpoint resolver: returns the worker's current (host, port) — a
# callable, not a constant, because a supervised worker changes ports
# across restarts.  Raises ShardUnavailableError while the worker has
# no serving address (restarting, or past its restart budget).
Endpoint = Callable[[], tuple[str, int]]


@dataclass(frozen=True, slots=True)
class ShardCallPolicy:
    """Tuning knobs for one shard's calls (see ``docs/operations.md``).

    The defaults favour correctness over aggression: generous call
    deadline (cold cycle mining is legitimately slow), three attempts
    with sub-second backoff, hedging off.
    """

    connect_timeout_s: float = 2.0
    call_timeout_s: float = 30.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_max_s: float = 1.0
    hedge_after_s: float | None = None

    def backoff_s(self, retry_index: int) -> float:
        """Delay before retry ``retry_index`` (1-based), capped."""
        return min(
            self.backoff_base_s * (2 ** (retry_index - 1)), self.backoff_max_s
        )


class SocketShardAdapter:
    """The five shard-protocol calls over a supervised worker socket."""

    def __init__(
        self,
        endpoint: Endpoint,
        shard_id: int,
        *,
        policy: ShardCallPolicy | None = None,
        fallback_engine=None,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
    ) -> None:
        self._endpoint = endpoint
        self._shard_id = shard_id
        self._policy = policy or ShardCallPolicy()
        self._fallback_engine = fallback_engine
        self._max_frame_bytes = max_frame_bytes
        # A couple of idle connections; a restarted worker invalidates
        # them, which surfaces as a transport error → retry on fresh.
        # Each entry remembers its owning loop: callers like asyncio.run
        # give every call a fresh loop, and a stream must never be
        # reused outside the loop that created it.
        self._pool: list[
            tuple[
                asyncio.AbstractEventLoop,
                asyncio.StreamReader,
                asyncio.StreamWriter,
            ]
        ] = []
        self._pool_limit = 2
        self.retries_total = 0
        self.hedges_total = 0
        self.hedge_wins_total = 0
        self.fallback_calls_total = 0

    @property
    def shard_id(self) -> int:
        return self._shard_id

    @property
    def policy(self) -> ShardCallPolicy:
        return self._policy

    # ------------------------------------------------------------------
    # The five protocol calls
    # ------------------------------------------------------------------

    async def link_text(self, normalized: str):
        response = await self._call("link_text", {"normalized": normalized})
        return (
            wire.decode_link_result(response["link"]),
            bool(response["cached"]),
        )

    async def expand_seeds(self, seeds: frozenset[int]):
        # No fallback: expansion belongs to the owner shard (its cache,
        # its prefill).  A dead owner means a structured 503 upstream.
        response = await self._call("expand_seeds", {"seeds": sorted(seeds)})
        return (
            wire.decode_expansion(response["expansion"]),
            bool(response["cached"]),
        )

    async def prefill_expansions(self, seed_sets) -> set[frozenset[int]]:
        try:
            response = await self._call(
                "prefill_expansions",
                {"seed_sets": [sorted(seeds) for seeds in seed_sets]},
            )
        except ShardUnavailableError:
            # Pre-filling is an optimisation; the per-query expand on
            # the same dead shard is where unavailability is reported.
            return set()
        return {frozenset(seeds) for seeds in response["computed"]}

    async def leaf_collection_counts(self, root) -> dict:
        try:
            response = await self._call(
                "leaf_collection_counts", {"root": wire.encode_query(root)}
            )
        except ShardUnavailableError:
            return await self._fallback(
                "counts", lambda engine: engine.leaf_collection_counts(root)
            )
        return wire.decode_counts(response["counts"])

    async def search_with_background(self, root, background, top_k: int):
        try:
            response = await self._call(
                "search_with_background",
                {
                    "root": wire.encode_query(root),
                    "background": wire.encode_background(background),
                    "top_k": int(top_k),
                },
            )
        except ShardUnavailableError:
            return await self._fallback(
                "score",
                lambda engine: engine.search_with_background(
                    root, background, top_k
                ),
            )
        return wire.decode_results(response["results"])

    def close(self) -> None:
        """Drop pooled connections (call from the owning loop's thread)."""
        while self._pool:
            _, _, writer = self._pool.pop()
            self._safe_close(writer)

    async def aclose(self) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Call machinery: retries around hedged, deadline-bounded attempts
    # ------------------------------------------------------------------

    async def _call(self, call: str, payload: dict) -> dict:
        request = {"call": call, "protocol": SHARD_PROTOCOL_VERSION, **payload}
        trace = tracing.current_trace()
        if trace is not None:
            request["trace_id"] = trace.trace_id
        policy = self._policy
        last_exc: Exception | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self.retries_total += 1
                await asyncio.sleep(policy.backoff_s(attempt))
            try:
                response = await self._attempt_hedged(request)
            except WorkerCallError:
                raise  # the worker answered: deterministic, not transient
            except (
                WireProtocolError,
                ShardUnavailableError,
                ConnectionError,
                TimeoutError,
                OSError,
            ) as exc:
                last_exc = exc
                continue
            self._replay_spans(trace, response)
            return response
        if isinstance(last_exc, ShardUnavailableError):
            raise last_exc
        raise ShardUnavailableError(
            self._shard_id,
            f"shard {self._shard_id} unreachable after "
            f"{policy.max_attempts} attempt(s): {last_exc}",
        ) from last_exc

    async def _attempt_hedged(self, request: dict) -> dict:
        policy = self._policy
        primary = asyncio.ensure_future(self._attempt(request))
        if policy.hedge_after_s is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=policy.hedge_after_s)
        if done:
            return primary.result()
        self.hedges_total += 1
        hedge = asyncio.ensure_future(self._attempt(request))
        pending: set[asyncio.Future] = {primary, hedge}
        last_exc: Exception | None = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    exc = task.exception()
                    if exc is None:
                        if task is hedge:
                            self.hedge_wins_total += 1
                        return task.result()
                    if isinstance(exc, WorkerCallError):
                        raise exc
                    last_exc = exc
            assert last_exc is not None
            raise last_exc
        finally:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def _attempt(self, request: dict) -> dict:
        return await asyncio.wait_for(
            self._attempt_once(request), self._policy.call_timeout_s
        )

    async def _attempt_once(self, request: dict) -> dict:
        conn = self._pool_get() or await self._connect()
        reader, writer = conn
        try:
            await wire.write_frame(writer, request)
            response = await wire.read_frame(
                reader, max_frame_bytes=self._max_frame_bytes
            )
        except BaseException:  # includes hedge-loser cancellation
            writer.close()
            raise
        if response is None:
            writer.close()
            raise WireProtocolError(
                f"shard {self._shard_id}: connection closed before the "
                "response frame"
            )
        error = response.get("error")
        if error is not None:
            self._pool_put(conn)
            raise WorkerCallError(
                self._shard_id,
                str(error.get("type")),
                str(error.get("message")),
            )
        self._pool_put(conn)
        return response

    async def _connect(self):
        host, port = self._endpoint()
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), self._policy.connect_timeout_s
        )
        try:
            await wire.write_frame(
                writer, {"call": "hello", "protocol": SHARD_PROTOCOL_VERSION}
            )
            hello = await wire.read_frame(
                reader, max_frame_bytes=self._max_frame_bytes
            )
        except BaseException:
            writer.close()
            raise
        if hello is None:
            writer.close()
            raise WireProtocolError(
                f"shard {self._shard_id}: connection closed during handshake"
            )
        error = hello.get("error")
        if error is not None:
            writer.close()
            raise WorkerCallError(
                self._shard_id, str(error.get("type")), str(error.get("message"))
            )
        if hello.get("protocol") != SHARD_PROTOCOL_VERSION:
            writer.close()
            raise WorkerCallError(
                self._shard_id,
                "protocol_mismatch",
                f"worker speaks shard protocol {hello.get('protocol')!r}, "
                f"this adapter speaks {SHARD_PROTOCOL_VERSION}",
            )
        return reader, writer

    def _pool_get(self):
        loop = asyncio.get_running_loop()
        while self._pool:
            conn_loop, reader, writer = self._pool.pop()
            if conn_loop is loop:
                return reader, writer
            self._safe_close(writer)  # stream from an earlier, dead loop
        return None

    def _pool_put(self, conn) -> None:
        if len(self._pool) < self._pool_limit:
            self._pool.append((asyncio.get_running_loop(), *conn))
        else:
            conn[1].close()

    @staticmethod
    def _safe_close(writer) -> None:
        try:
            writer.close()
        except RuntimeError:
            pass  # the owning loop is gone; the socket dies with it

    def _replay_spans(self, trace, response: dict) -> None:
        """Fold worker-side spans into the router's request trace.

        Only durations and labels replay (offsets are meaningless across
        clocks), which is all :meth:`ServingMetrics.observe_request`
        folds into histograms.
        """
        spans = response.pop("spans", None)
        if trace is None or not spans:
            return
        for item in spans:
            try:
                labels = dict(item.get("labels", {}))
                trace.add(
                    str(item["stage"]),
                    float(item["duration_ms"]),
                    shard=item.get("shard"),
                    **labels,
                )
            except (KeyError, TypeError, ValueError):
                continue  # a garbled span is not worth failing a call

    async def _fallback(self, phase: str, run):
        """Serve a rank call from the router-local engine, traced."""
        if self._fallback_engine is None:
            raise ShardUnavailableError(
                self._shard_id,
                f"shard {self._shard_id} is unavailable and no local "
                "fallback engine is configured",
            )
        self.fallback_calls_total += 1
        engine = self._fallback_engine

        def call():
            with tracing.span(
                "rank", shard=self._shard_id, phase=phase, fallback=True
            ):
                return run(engine)

        return await asyncio.get_running_loop().run_in_executor(
            None, tracing.carry_context(call)
        )

    def __repr__(self) -> str:
        return (
            f"SocketShardAdapter(shard={self._shard_id}, "
            f"retries={self.retries_total}, hedges={self.hedges_total})"
        )
