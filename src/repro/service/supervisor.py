"""Local shard-worker supervision: spawn, health-check, restart.

:class:`ShardSupervisor` turns ``repro serve --workers N`` into a small
process tree: one worker process per shard (``repro shard-worker``,
:mod:`repro.service.shard_worker`), each announcing its ephemeral port
on stdout, plus a monitor thread that

* detects worker death (``proc.poll()``) and *liveness-check failure*
  (a periodic synchronous ``hello`` ping over the wire protocol — a
  wedged worker that still holds its socket is killed and treated like
  a crash),
* restarts dead workers with exponential backoff, up to
  ``max_restarts`` per shard — beyond that the shard is marked
  ``failed`` and stays down (a crash-looping worker should page a
  human, not burn CPU),
* exposes per-shard state for ``/healthz`` (:meth:`describe`) and the
  ``repro_shard_worker_restarts_total{shard}`` counter for
  ``/metrics``.

The supervisor is deliberately thread-based (plain ``subprocess.Popen``
+ reader threads), not asyncio: it must keep supervising while the
serving event loop is saturated, and it is also used from synchronous
tests and tools.  :meth:`endpoint` is the bridge to the async side —
:class:`~repro.service.socket_adapter.SocketShardAdapter` resolves it
per connection attempt, so a worker that moved ports across a restart
is picked up by the very next retry.

Fault injection: per-shard specs (``fault_specs={1: "kill@2"}``) are
passed to workers via ``--fault``; a restarted worker re-parses its
spec fresh, so ``kill@1`` with ``max_restarts=0`` models a permanently
dead shard while ``kill@1`` with budget left models a crash the stack
heals around.
"""

from __future__ import annotations

import os
import re
import socket
import subprocess
import sys
import threading
import time

from repro.errors import ServiceError, ShardUnavailableError, WireProtocolError
from repro.service import wire
from repro.service.wire import SHARD_PROTOCOL_VERSION

__all__ = ["ShardSupervisor", "WorkerInfo"]

_READY_RE = re.compile(
    r"shard-worker: shard (?P<shard>\d+) serving on "
    r"(?P<host>[\d.]+):(?P<port>\d+) pid=(?P<pid>\d+)"
)


class WorkerInfo:
    """Mutable per-shard worker state; guarded by the supervisor lock."""

    __slots__ = (
        "shard_id", "proc", "host", "port", "pid", "state",
        "restarts", "next_restart_at", "last_exit_code", "ready",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.proc: subprocess.Popen | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.pid: int | None = None
        self.state = "starting"  # starting | up | restarting | failed
        self.restarts = 0
        self.next_restart_at = 0.0
        self.last_exit_code: int | None = None
        self.ready = threading.Event()

    def as_dict(self) -> dict:
        payload = {
            "shard": self.shard_id,
            "state": self.state,
            "restarts": self.restarts,
        }
        if self.pid is not None:
            payload["pid"] = self.pid
        if self.port is not None:
            payload["port"] = self.port
        if self.last_exit_code is not None:
            payload["last_exit_code"] = self.last_exit_code
        return payload


class ShardSupervisor:
    """Spawn and babysit one ``repro shard-worker`` process per shard."""

    def __init__(
        self,
        snapshot_dir: str,
        num_shards: int,
        *,
        host: str = "127.0.0.1",
        max_restarts: int = 5,
        restart_backoff_base_s: float = 0.1,
        restart_backoff_max_s: float = 2.0,
        health_interval_s: float = 0.5,
        poll_interval_s: float = 0.05,
        fault_specs: dict[int, str] | None = None,
        metrics=None,
        python: str = sys.executable,
    ) -> None:
        if num_shards < 1:
            raise ServiceError("a supervisor needs at least one shard")
        self._snapshot_dir = snapshot_dir
        self._host = host
        self._max_restarts = max_restarts
        self._backoff_base_s = restart_backoff_base_s
        self._backoff_max_s = restart_backoff_max_s
        self._health_interval_s = health_interval_s
        self._poll_interval_s = poll_interval_s
        self._fault_specs = dict(fault_specs or {})
        self._python = python
        self._lock = threading.Lock()
        self._workers = [WorkerInfo(shard) for shard in range(num_shards)]
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._restart_counter = None
        if metrics is not None:
            self._restart_counter = metrics.registry.counter(
                "repro_shard_worker_restarts_total",
                "Shard worker processes restarted by the supervisor.",
                ("shard",),
            )
            for shard in range(num_shards):
                self._restart_counter.inc(0, shard=shard)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, *, timeout_s: float = 60.0) -> None:
        """Spawn every worker, wait until all are serving, start the
        monitor.  Raises (and cleans up) if any worker misses the
        readiness deadline."""
        with self._lock:
            for info in self._workers:
                self._spawn_locked(info)
        deadline = time.monotonic() + timeout_s
        for info in self._workers:
            if not info.ready.wait(max(0.0, deadline - time.monotonic())):
                self.stop()
                raise ServiceError(
                    f"shard {info.shard_id} worker did not become ready "
                    f"within {timeout_s:.0f}s"
                )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, *, timeout_s: float = 5.0) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout_s)
            self._monitor = None
        with self._lock:
            procs = [info.proc for info in self._workers if info.proc]
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout_s
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()

    def reload(self, *, timeout_s: float = 60.0) -> None:
        """Rolling restart: every shard gets a fresh worker process.

        Used by compaction (``docs/live_updates.md``): a freshly exec'd
        worker re-resolves the snapshot root's ``CURRENT`` pointer and
        replays the delta log, so after ``reload()`` every process
        serves the new generation.  Each replacement is spawned and
        waited ready *before* the old process is terminated — at most a
        connection-retry blip per shard, never an unavailable window —
        and the restart budget is not consumed (this is an orchestrated
        swap, not a crash)."""
        for shard_id in range(len(self._workers)):
            self._reload_one(shard_id, timeout_s)

    def _reload_one(self, shard_id: int, timeout_s: float) -> None:
        fresh = WorkerInfo(shard_id)
        with self._lock:
            self._spawn_locked(fresh)
        if not fresh.ready.wait(timeout_s):
            if fresh.proc is not None and fresh.proc.poll() is None:
                fresh.proc.kill()
                fresh.proc.wait()
            raise ServiceError(
                f"shard {shard_id} replacement worker did not become ready "
                f"within {timeout_s:.0f}s; the old worker keeps serving"
            )
        with self._lock:
            info = self._workers[shard_id]
            old_proc = info.proc
            info.proc = fresh.proc
            info.host, info.port, info.pid = fresh.host, fresh.port, fresh.pid
            info.state = "up"
            info.ready = fresh.ready
        if old_proc is not None and old_proc.poll() is None:
            old_proc.terminate()
            try:
                old_proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                old_proc.kill()
                old_proc.wait()

    # ------------------------------------------------------------------
    # The async side's view
    # ------------------------------------------------------------------

    def endpoint(self, shard_id: int) -> tuple[str, int]:
        """The worker's current (host, port); raises while it has none."""
        with self._lock:
            info = self._workers[shard_id]
            if info.state == "up" and info.host and info.port:
                return info.host, info.port
            if info.state == "failed":
                retry_after = 30.0  # out of restart budget: page a human
            else:
                retry_after = max(
                    0.1, info.next_restart_at - time.monotonic()
                ) + self._backoff_base_s
            raise ShardUnavailableError(
                shard_id,
                f"shard {shard_id} worker is {info.state} "
                f"(restarts={info.restarts})",
                state=info.state,
                retry_after_s=round(retry_after, 3),
            )

    def describe(self) -> list[dict]:
        """Per-shard worker state for ``/healthz``."""
        with self._lock:
            return [info.as_dict() for info in self._workers]

    @property
    def num_shards(self) -> int:
        return len(self._workers)

    @property
    def restarts_total(self) -> int:
        with self._lock:
            return sum(info.restarts for info in self._workers)

    @property
    def degraded(self) -> bool:
        """True while any shard worker is not serving."""
        with self._lock:
            return any(info.state != "up" for info in self._workers)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _spawn_locked(self, info: WorkerInfo) -> None:
        cmd = [
            self._python, "-m", "repro.cli", "shard-worker",
            "--snapshot", self._snapshot_dir,
            "--shard", str(info.shard_id),
            "--bind", self._host,
            "--port", "0",
        ]
        fault = self._fault_specs.get(info.shard_id)
        if fault:
            cmd += ["--fault", fault]
        env = dict(os.environ)
        # The worker must import `repro` exactly as this process does,
        # even when running from a source tree that is not installed.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        info.proc = proc
        info.state = "starting"
        info.host = info.port = info.pid = None
        info.ready = threading.Event()
        reader = threading.Thread(
            target=self._read_stdout,
            args=(info, proc),
            name=f"shard-worker-{info.shard_id}-stdout",
            daemon=True,
        )
        reader.start()

    def _read_stdout(self, info: WorkerInfo, proc: subprocess.Popen) -> None:
        assert proc.stdout is not None
        for line in proc.stdout:
            match = _READY_RE.search(line)
            if match is None:
                continue
            with self._lock:
                if info.proc is proc:  # not superseded by a restart
                    info.host = match.group("host")
                    info.port = int(match.group("port"))
                    info.pid = int(match.group("pid"))
                    info.state = "up"
            info.ready.set()
        # EOF: the process is gone; the monitor handles scheduling.

    def _backoff_s(self, restarts: int) -> float:
        return min(
            self._backoff_base_s * (2 ** restarts), self._backoff_max_s
        )

    def _monitor_loop(self) -> None:
        last_health = time.monotonic()
        while not self._stop.wait(self._poll_interval_s):
            now = time.monotonic()
            with self._lock:
                for info in self._workers:
                    if info.state == "failed":
                        continue
                    exited = (
                        info.proc is not None and info.proc.poll() is not None
                    )
                    if exited and info.state in ("starting", "up"):
                        info.last_exit_code = info.proc.returncode
                        if info.restarts >= self._max_restarts:
                            info.state = "failed"
                        else:
                            info.state = "restarting"
                            info.next_restart_at = now + self._backoff_s(
                                info.restarts
                            )
                    elif info.state == "restarting" and (
                        now >= info.next_restart_at
                    ):
                        info.restarts += 1
                        if self._restart_counter is not None:
                            self._restart_counter.inc(shard=info.shard_id)
                        self._spawn_locked(info)
            if now - last_health >= self._health_interval_s:
                last_health = now
                self._health_check()

    def _health_check(self) -> None:
        with self._lock:
            candidates = [
                (info, info.proc, info.host, info.port)
                for info in self._workers
                if info.state == "up" and info.host and info.port
            ]
        for info, proc, host, port in candidates:
            if self._ping(host, port):
                continue
            # Alive-but-unresponsive: kill it so the exit path (and its
            # restart budget) applies uniformly.
            if proc is not None and proc.poll() is None:
                proc.kill()

    def _ping(self, host: str, port: int) -> bool:
        try:
            with socket.create_connection((host, port), timeout=1.0) as sock:
                sock.settimeout(2.0)
                wire.send_frame(
                    sock, {"call": "hello", "protocol": SHARD_PROTOCOL_VERSION}
                )
                hello = wire.recv_frame(sock)
        except (OSError, WireProtocolError):
            return False
        return bool(
            hello
            and hello.get("ok")
            and hello.get("protocol") == SHARD_PROTOCOL_VERSION
        )

    def __repr__(self) -> str:
        states = ",".join(info.state for info in self._workers)
        return f"ShardSupervisor(shards={len(self._workers)}, states=[{states}])"
