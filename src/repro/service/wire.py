"""Shard wire protocol: length-prefixed JSON frames and value codecs.

This module is the concrete realisation of ``docs/shard_protocol.md``:
the frame format the router and a :mod:`repro.service.shard_worker`
process exchange, plus the JSON codecs for every protocol value (query
ASTs, background models, expansion results, ranked lists).  Both sides
import the same functions, so an encoding change cannot drift between
them.

Frame format (version 1)::

    +----------------------+----------------------------------+
    | length: u32 big-end. | body: UTF-8 JSON, `length` bytes |
    +----------------------+----------------------------------+

A frame longer than the receiver's ``max_frame_bytes`` is rejected with
:class:`~repro.errors.WireProtocolError` *before* the body is read, so
a corrupt length prefix cannot make a peer buffer gigabytes.  Truncated
frames (EOF mid-body) and bodies that are not a JSON object raise the
same error — the socket adapter treats it as a transport failure and
retries on a fresh connection.

Float fidelity: background-model probabilities cross the wire as
``float.hex`` strings and are decoded with ``float.fromhex``, so every
IEEE double round-trips bit-exactly.  Scores inside ranked lists ride
plain JSON numbers — Python's JSON writer emits ``repr``-exact decimal
forms, which also round-trip exactly (the HTTP layer has relied on this
since the latency bench started asserting bit-identity over the wire).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from repro.core.cycles import Cycle
from repro.core.expansion import ExpansionResult
from repro.core.features import CycleFeatures
from repro.errors import WireProtocolError
from repro.linking.linker import EntityMatch, LinkResult
from repro.retrieval.engine import SearchResult
from repro.retrieval.qlang import (
    BandNode,
    CombineNode,
    PhraseNode,
    QueryNode,
    TermNode,
)

__all__ = [
    "SHARD_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
    "encode_link_result",
    "decode_link_result",
    "encode_expansion",
    "decode_expansion",
    "encode_query",
    "decode_query",
    "encode_counts",
    "decode_counts",
    "encode_background",
    "decode_background",
    "encode_results",
    "decode_results",
]

# Version of the shard protocol; carried in every request frame and
# negotiated in the connection handshake.  Bumped together with
# docs/shard_protocol.md.  (Also re-exported by async_router, the
# module that historically defined it.)  Version 2 added the
# ``apply_delta`` admin call (live updates, docs/live_updates.md).
SHARD_PROTOCOL_VERSION = 2

# Default bound on one frame.  The largest legitimate frames are ranked
# lists and expansion results over the benchmark-scale graph — well
# under a megabyte; 8 MiB leaves room for bigger snapshots while still
# rejecting a garbled length prefix immediately.
MAX_FRAME_BYTES = 8 << 20

_LENGTH = struct.Struct("!I")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(payload: dict) -> bytes:
    """One wire frame: u32 big-endian length + UTF-8 JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > 0xFFFFFFFF:
        raise WireProtocolError(f"frame body of {len(body)} bytes overflows u32")
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int, max_frame_bytes: int) -> None:
    if length > max_frame_bytes:
        raise WireProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame (mid-prefix or mid-body) raises
    :class:`WireProtocolError` — the peer died or short-wrote.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError(
            f"connection closed mid-length-prefix ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length, max_frame_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return _decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


def recv_frame(
    sock: socket.socket, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """Blocking counterpart of :func:`read_frame` (supervisor health pings)."""

    def read_exactly(n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise WireProtocolError(
                    f"connection closed mid-frame ({n - remaining}/{n} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    first = sock.recv(_LENGTH.size)
    if not first:
        return None
    prefix = first + (read_exactly(_LENGTH.size - len(first)) if len(first) < _LENGTH.size else b"")
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length, max_frame_bytes)
    return _decode_body(read_exactly(length))


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


# ----------------------------------------------------------------------
# Value codecs (docs/shard_protocol.md "Value encodings")
# ----------------------------------------------------------------------

def encode_link_result(link: LinkResult) -> dict:
    return {
        "article_ids": sorted(link.article_ids),
        "matches": [
            {
                "article_id": match.article_id,
                "title_tokens": list(match.title_tokens),
                "start": match.start,
                "end": match.end,
                "via_synonym": match.via_synonym,
            }
            for match in link.matches
        ],
    }


def decode_link_result(payload: dict) -> LinkResult:
    try:
        return LinkResult(
            matches=tuple(
                EntityMatch(
                    article_id=int(match["article_id"]),
                    title_tokens=tuple(str(t) for t in match["title_tokens"]),
                    start=int(match["start"]),
                    end=int(match["end"]),
                    via_synonym=bool(match["via_synonym"]),
                )
                for match in payload["matches"]
            ),
            article_ids=frozenset(int(a) for a in payload["article_ids"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed LinkResult payload: {exc}") from exc


def encode_expansion(expansion: ExpansionResult) -> dict:
    """The same shape ``prefill.json.gz`` stores (see ``artifacts.py``)."""
    return {
        "seeds": sorted(expansion.seed_articles),
        "articles": sorted(expansion.article_ids),
        "titles": list(expansion.titles),
        "cycles": [
            {
                "nodes": list(features.cycle.nodes),
                "counts": [
                    features.num_articles,
                    features.num_categories,
                    features.num_edges,
                    features.max_possible_edges,
                ],
            }
            for features in expansion.cycles
        ],
    }


def decode_expansion(payload: dict) -> ExpansionResult:
    try:
        return ExpansionResult(
            seed_articles=frozenset(int(a) for a in payload["seeds"]),
            article_ids=frozenset(int(a) for a in payload["articles"]),
            titles=tuple(str(t) for t in payload["titles"]),
            cycles=tuple(
                CycleFeatures(
                    cycle=Cycle(tuple(int(n) for n in item["nodes"])),
                    num_articles=int(item["counts"][0]),
                    num_categories=int(item["counts"][1]),
                    num_edges=int(item["counts"][2]),
                    max_possible_edges=int(item["counts"][3]),
                )
                for item in payload["cycles"]
            ),
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise WireProtocolError(f"malformed ExpansionResult payload: {exc}") from exc


def encode_query(node: QueryNode) -> dict:
    if isinstance(node, TermNode):
        return {"term": node.term}
    if isinstance(node, PhraseNode):
        return {"phrase": list(node.tokens)}
    if isinstance(node, CombineNode):
        return {"combine": [encode_query(child) for child in node.children]}
    if isinstance(node, BandNode):
        return {"band": [encode_query(child) for child in node.children]}
    raise WireProtocolError(f"unencodable query node: {type(node).__name__}")


def decode_query(payload: dict) -> QueryNode:
    if not isinstance(payload, dict) or len(payload) != 1:
        raise WireProtocolError(f"malformed query node: {payload!r}")
    kind, value = next(iter(payload.items()))
    try:
        if kind == "term":
            return TermNode(str(value))
        if kind == "phrase":
            return PhraseNode(tuple(str(t) for t in value))
        if kind == "combine":
            return CombineNode(tuple(decode_query(child) for child in value))
        if kind == "band":
            return BandNode(tuple(decode_query(child) for child in value))
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed query node: {exc}") from exc
    raise WireProtocolError(f"unknown query node kind: {kind!r}")


def encode_counts(counts: dict[QueryNode, int]) -> list:
    """Leaf-keyed integer counts as ``[[leaf, count], ...]`` pairs."""
    return [[encode_query(leaf), int(count)] for leaf, count in counts.items()]


def decode_counts(payload: list) -> dict[QueryNode, int]:
    try:
        return {decode_query(leaf): int(count) for leaf, count in payload}
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed counts payload: {exc}") from exc


def encode_background(background: dict[QueryNode, float]) -> list:
    """Leaf-keyed probabilities as ``[[leaf, float.hex], ...]`` pairs.

    ``float.hex`` is the lossless encoding the protocol page mandates:
    the router's global background model must reach every shard
    bit-exactly or cross-shard scores (and tie-breaks) silently drift.
    """
    return [
        [encode_query(leaf), float(probability).hex()]
        for leaf, probability in background.items()
    ]


def decode_background(payload: list) -> dict[QueryNode, float]:
    try:
        return {
            decode_query(leaf): float.fromhex(probability)
            for leaf, probability in payload
        }
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed background payload: {exc}") from exc


def encode_results(results) -> list:
    return [
        {"doc_id": item.doc_id, "score": item.score, "rank": item.rank}
        for item in results
    ]


def decode_results(payload: list) -> list[SearchResult]:
    try:
        return [
            SearchResult(
                doc_id=str(item["doc_id"]),
                score=float(item["score"]),
                rank=int(item["rank"]),
            )
            for item in payload
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed ranked-list payload: {exc}") from exc
