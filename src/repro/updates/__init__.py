"""Live updates: typed graph deltas over frozen serving snapshots.

The subsystem splits along the serving stack's trust boundaries:

* :mod:`repro.updates.deltas` — the typed, versioned operations and
  their validation against the currently effective graph;
* :mod:`repro.updates.overlay` — copy-on-write overlay state plus the
  :class:`OverlayGraphView` read facade the frozen bases serve through,
  and the independent dict-path oracle the equivalence tests use;
* :mod:`repro.updates.log` — the durable append-only delta log that
  makes worker restarts converge;
* :mod:`repro.updates.invalidation` — delta-ball computation and the
  targeted cache-eviction predicates;
* :mod:`repro.updates.coordinator` — the orchestration layer gluing the
  above to routers, workers, supervisors and compaction.

See ``docs/live_updates.md`` for the operator-facing story.
"""

from repro.updates.coordinator import ShardWorkerUpdater, UpdateCoordinator
from repro.updates.deltas import DELTA_OPS, Delta, decode_deltas, validate_delta
from repro.updates.invalidation import (
    INVALIDATION_RADIUS,
    changed_nodes,
    delta_ball,
    deltas_touch_titles,
    expansion_eviction_predicate,
)
from repro.updates.log import DeltaLog
from repro.updates.overlay import (
    OverlayGraphView,
    OverlayState,
    apply_deltas,
    apply_deltas_to_graph,
    materialize_graph,
)

__all__ = [
    "DELTA_OPS",
    "Delta",
    "decode_deltas",
    "validate_delta",
    "OverlayGraphView",
    "OverlayState",
    "apply_deltas",
    "apply_deltas_to_graph",
    "materialize_graph",
    "DeltaLog",
    "INVALIDATION_RADIUS",
    "changed_nodes",
    "delta_ball",
    "deltas_touch_titles",
    "expansion_eviction_predicate",
    "UpdateCoordinator",
    "ShardWorkerUpdater",
]
