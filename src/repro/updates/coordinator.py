"""Live-update orchestration: apply deltas, invalidate, compact, swap.

:class:`UpdateCoordinator` owns the mutable half of a serving stack
built from frozen artefacts.  It keeps one :class:`OverlayState` and
publishes it through two :class:`OverlayGraphView` facades over the two
immutable bases the stack actually reads:

* the router's :class:`~repro.wiki.partition.PartitionedGraphView`
  (linking, ``build_query`` titles, owner-shard routing), and
* the workers' :class:`~repro.wiki.compact.CompactGraphView` (cycle
  mining and expansion titles).

Both views consult the *same* state object, so a batch becomes visible
to every layer in one reference swap
(:meth:`~repro.service.router.ShardRouter.apply_overlay`).

``apply`` is the write path: validate the batch against the serving
generation (:class:`~repro.errors.StaleGenerationError` on mismatch),
fold it into a copy-on-write successor state, durably append it to the
:class:`~repro.updates.log.DeltaLog` *before* publishing, rebuild the
entity linker only when the title surface changed, evict exactly the
expansion-cache entries whose seeds fall inside the delta ball
(:mod:`repro.updates.invalidation`), publish, and fan the batch out to
supervised socket workers (which apply it idempotently by sequence
number; a worker that misses it replays the log on its next restart).

``compact`` is the fold: materialise base+overlay into a plain
:class:`~repro.wiki.graph.WikiGraph`, re-partition it, rebuild the
linker vocabulary, and save the result as generation N+1 under
``gen-NNNN/`` with the ``CURRENT`` pointer flipped atomically
(:func:`~repro.service.artifacts.write_current_pointer`).  The router
hot-swaps in place — caches survive, because the overlay it was serving
is bit-identical to the compacted base — the delta log resets, workers
rolling-restart onto the new generation, and the expansion caches are
re-warmed from the queries the request log saw recently.

Deltas only ever touch the *graph*; index segments, document names and
``mu`` ride through compaction untouched by construction.
"""

from __future__ import annotations

import socket as socketlib
import threading
from pathlib import Path

from repro.errors import DeltaError, StaleGenerationError
from repro.linking.linker import EntityLinker
from repro.service import wire
from repro.service.artifacts import (
    ShardedSnapshot,
    generation_dir_name,
    write_current_pointer,
)
from repro.service.wire import SHARD_PROTOCOL_VERSION
from repro.updates.deltas import Delta, decode_deltas
from repro.updates.invalidation import (
    changed_nodes,
    delta_ball,
    deltas_touch_titles,
    expansion_eviction_predicate,
)
from repro.updates.log import DeltaLog
from repro.updates.overlay import (
    OverlayGraphView,
    OverlayState,
    apply_deltas,
    materialize_graph,
)
from repro.wiki.partition import GraphPartition, partition_graph

__all__ = ["UpdateCoordinator", "ShardWorkerUpdater"]

# Sockets used for the worker fan-out are short-lived and blocking; a
# worker that cannot take a delta within this window is left to catch
# up from the log on its next restart.
_FANOUT_TIMEOUT_S = 10.0
_FANOUT_ATTEMPTS = 3


class UpdateCoordinator:
    """Drive live updates for one :class:`ShardRouter` serving stack.

    Parameters
    ----------
    router:
        The (synchronous) shard router under the serving stack.  The
        async front end shares its caches and counters, so updates
        published here are visible on every surface.
    snapshot_dir:
        The snapshot *root* directory (the one holding the ``CURRENT``
        pointer once compaction has run).  Enables the durable delta
        log and on-disk compaction; ``None`` keeps everything in memory
        (tests, ephemeral stacks).
    supervisor:
        The :class:`~repro.service.supervisor.ShardSupervisor` when
        shard workers run out of process; applied batches fan out to
        every worker and compaction rolling-restarts them.
    request_log:
        The front end's :class:`~repro.obs.logs.RequestLog`; after a
        compaction swap the coordinator re-warms expansion caches from
        its recently seen queries.
    """

    def __init__(
        self,
        router,
        *,
        snapshot_dir: str | Path | None = None,
        supervisor=None,
        request_log=None,
    ) -> None:
        self._router = router
        self._snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self._supervisor = supervisor
        self._request_log = request_log
        self._log = DeltaLog(self._snapshot_dir) if self._snapshot_dir else None
        self._lock = threading.Lock()
        self._state = OverlayState(generation=router.generation)
        self._metrics = router.metrics

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def last_seq(self) -> int:
        return self._state.last_seq

    @property
    def state(self) -> OverlayState:
        return self._state

    @property
    def delta_log(self) -> DeltaLog | None:
        return self._log

    def describe(self) -> dict:
        state = self._state
        return {
            "generation": state.generation,
            "last_seq": state.last_seq,
            "overlay_empty": state.is_empty,
            "touched_nodes": len(state.touched),
            "log_segments": len(self._log.segments()) if self._log else 0,
        }

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------

    def apply(self, payloads: list[dict], *, generation: int | None = None) -> dict:
        """Validate, persist, publish and fan out one delta batch.

        ``payloads`` is the JSON wire form (``Delta.to_payload``);
        ``generation`` is the generation the client validated against —
        a mismatch with the serving generation raises
        :class:`StaleGenerationError` (HTTP 409) without touching any
        state.  Re-submitting an already-applied batch is a no-op
        (idempotent by sequence number).
        """
        deltas = decode_deltas(payloads)
        with self._lock:
            current = self._state.generation
            if generation is not None and int(generation) != current:
                raise StaleGenerationError(current, generation)
            return self._apply_locked(deltas)

    def _apply_locked(self, deltas: list[Delta]) -> dict:
        router = self._router
        state = self._state
        base_router = router.snapshot.view()
        base_worker = router.snapshot.compact_graph
        before_view = OverlayGraphView(base_router, state)

        new_state, applied = apply_deltas(base_router, state, deltas)
        if not applied:
            return {
                "generation": state.generation,
                "applied": 0,
                "skipped": len(deltas),
                "last_seq": state.last_seq,
                "invalidated": {"expansion": 0, "link": 0},
            }

        # Durability before visibility: once a batch is published, a
        # restarted worker must be able to replay it.
        if self._log is not None:
            self._log.append(state.generation, applied)

        after_view = OverlayGraphView(base_router, new_state)
        worker_view = OverlayGraphView(base_worker, new_state)

        linker = None
        if deltas_touch_titles(applied):
            linker = EntityLinker(after_view, router.linker_tokenizer)

        ball = delta_ball(
            changed_nodes(applied), before=before_view, after=after_view
        )

        router.apply_overlay(
            after_view, worker_view, linker=linker, delta_seq=new_state.last_seq
        )
        self._state = new_state

        evicted_expansions = router.evict_expansions(
            expansion_eviction_predicate(ball)
        )
        evicted_links = router.evict_links() if linker is not None else 0
        metrics = self._metrics
        if metrics is not None:
            metrics.delta_invalidations.inc(evicted_expansions, cache="expansion")
            metrics.delta_invalidations.inc(evicted_links, cache="link")

        stale_workers = self._fan_out(applied, new_state.generation)
        return {
            "generation": new_state.generation,
            "applied": len(applied),
            "skipped": len(deltas) - len(applied),
            "last_seq": new_state.last_seq,
            "ball_size": len(ball),
            "invalidated": {
                "expansion": evicted_expansions,
                "link": evicted_links,
            },
            "stale_workers": stale_workers,
        }

    # ------------------------------------------------------------------
    # Compaction + hot swap
    # ------------------------------------------------------------------

    def compact(self) -> dict:
        """Fold the overlay into generation N+1 and hot-swap onto it.

        Returns a summary even when the overlay is empty (compaction is
        then a generation bump — still useful to force a clean on-disk
        baseline).  The order is crash-safe: the new generation
        directory is complete before ``CURRENT`` flips, and the delta
        log resets only after the pointer is durable (stale-generation
        segments are ignored by replay anyway).
        """
        with self._lock:
            router = self._router
            state = self._state
            old_generation = state.generation
            new_generation = old_generation + 1
            folded_seq = state.last_seq

            overlay = OverlayGraphView(router.snapshot.view(), state)
            new_graph = materialize_graph(overlay)
            num_shards = router.num_shards
            if num_shards == 1:
                # Mirror ShardedSnapshot.from_snapshot's single-shard
                # path: the partition IS the whole graph, no halo math.
                partitions: tuple[GraphPartition, ...] = (GraphPartition(
                    shard_id=0,
                    num_shards=1,
                    graph=new_graph,
                    core_articles=frozenset(
                        a.node_id for a in new_graph.articles()
                    ),
                    core_categories=frozenset(
                        c.node_id for c in new_graph.categories()
                    ),
                ),)
            else:
                partitions = tuple(partition_graph(new_graph, num_shards))

            linker = EntityLinker(new_graph, router.linker_tokenizer)
            old_snapshot = router.snapshot
            new_snapshot = ShardedSnapshot(
                partitions=partitions,
                segments=old_snapshot.segments,
                title_index=linker.vocabulary(),
                doc_names=dict(old_snapshot.doc_names),
                mu=old_snapshot.mu,
                generation=new_generation,
            ).frozen()

            if self._snapshot_dir is not None:
                gen_dir = self._snapshot_dir / generation_dir_name(new_generation)
                new_snapshot.save(gen_dir)
                write_current_pointer(self._snapshot_dir, new_generation)
            dropped_segments = self._log.reset() if self._log else 0

            router.swap_snapshot(new_snapshot)
            self._state = OverlayState(generation=new_generation)

            if self._supervisor is not None:
                # Workers re-resolve CURRENT on exec, so the rolling
                # restart lands every process on the new generation.
                self._supervisor.reload()
            warmed = self._warm_from_request_log()
            if self._request_log is not None and self._snapshot_dir is not None:
                # Compaction is the durable checkpoint of the serving
                # state, so the warm-up set rides along: a process that
                # restarts after this point cold-starts into the same
                # hot queries (docs/operations.md, "cold starts").
                try:
                    self._request_log.save_recent(self._snapshot_dir)
                except OSError:
                    pass  # persistence is best-effort; serving goes on

        return {
            "generation": new_generation,
            "previous_generation": old_generation,
            "folded_seq": folded_seq,
            "log_segments_dropped": dropped_segments,
            "warmed_queries": warmed,
            "saved": self._snapshot_dir is not None,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fan_out(self, deltas: list[Delta], generation: int) -> list[int]:
        """Push one applied batch to every supervised socket worker.

        Returns the shards that could not be reached — their durable log
        entry makes the next restart heal them; callers surface the list
        so operators can force a restart instead of waiting.
        """
        if self._supervisor is None:
            return []
        payloads = [delta.to_payload() for delta in deltas]
        stale = []
        for shard_id in range(self._supervisor.num_shards):
            if not self._push_to_worker(shard_id, payloads, generation):
                stale.append(shard_id)
        return stale

    def _push_to_worker(
        self, shard_id: int, payloads: list[dict], generation: int
    ) -> bool:
        for _ in range(_FANOUT_ATTEMPTS):
            try:
                host, port = self._supervisor.endpoint(shard_id)
                with socketlib.create_connection(
                    (host, port), timeout=_FANOUT_TIMEOUT_S
                ) as sock:
                    sock.settimeout(_FANOUT_TIMEOUT_S)
                    wire.send_frame(sock, {
                        "call": "hello", "protocol": SHARD_PROTOCOL_VERSION,
                    })
                    hello = wire.recv_frame(sock)
                    if not hello or not hello.get("ok"):
                        continue
                    wire.send_frame(sock, {
                        "call": "apply_delta",
                        "protocol": SHARD_PROTOCOL_VERSION,
                        "generation": generation,
                        "deltas": payloads,
                    })
                    response = wire.recv_frame(sock)
                if response is None or response.get("error") is not None:
                    continue
                return True
            except Exception:  # noqa: BLE001 — transport errors retry
                continue
        return False

    def _warm_from_request_log(self) -> int:
        """Re-expand recently seen queries through the fresh stack.

        The post-swap caches are intentionally kept (the swap is
        bit-identity-preserving), so this only matters for entries the
        last delta batches evicted — but it is cheap and makes the
        ``recently hot stays hot across compaction`` property
        unconditional.
        """
        if self._request_log is None:
            return 0
        queries = self._request_log.recent_queries()
        warmed = 0
        for query in queries:
            try:
                self._router.expand_query(query, top_k=1)
                warmed += 1
            except Exception:  # noqa: BLE001 — warming must never fail a swap
                continue
        return warmed


class ShardWorkerUpdater:
    """Worker-process side of live updates: one shard's overlay.

    A :class:`~repro.service.shard_worker.ShardWorkerServer` holds one
    of these over its :class:`~repro.service.server.ExpansionService`
    and the snapshot's frozen compact graph.  ``apply`` mirrors the
    coordinator's publish path at single-worker scale: same validation,
    same overlay semantics, same targeted eviction — so a worker that
    applied batches live answers bit-identically to one that replayed
    them from the log after a restart.
    """

    def __init__(self, worker, base_graph, *, generation: int = 1) -> None:
        self._worker = worker
        self._base = base_graph
        self._lock = threading.Lock()
        self._state = OverlayState(generation=generation)

    @property
    def generation(self) -> int:
        return self._state.generation

    @property
    def last_seq(self) -> int:
        return self._state.last_seq

    def apply_payloads(
        self, payloads: list[dict], *, generation: int | None = None
    ) -> dict:
        if not isinstance(payloads, list):
            raise DeltaError("'deltas' must be a list of delta objects")
        return self.apply(decode_deltas(payloads), generation=generation)

    def apply(
        self, deltas: list[Delta], *, generation: int | None = None
    ) -> dict:
        with self._lock:
            current = self._state.generation
            if generation is not None and int(generation) != current:
                raise StaleGenerationError(current, generation)
            state = self._state
            before_view = OverlayGraphView(self._base, state)
            new_state, applied = apply_deltas(self._base, state, deltas)
            if not applied:
                return {
                    "generation": current,
                    "applied": 0,
                    "last_seq": state.last_seq,
                    "invalidated": 0,
                }
            after_view = OverlayGraphView(self._base, new_state)
            linker = None
            if deltas_touch_titles(applied):
                linker = EntityLinker(
                    after_view, self._worker.engine.tokenizer
                )
            ball = delta_ball(
                changed_nodes(applied), before=before_view, after=after_view
            )
            self._worker.set_graph(after_view, linker=linker)
            self._state = new_state
            evicted = self._worker.evict_expansions(
                expansion_eviction_predicate(ball)
            )
            if linker is not None:
                evicted += self._worker.evict_links()
            return {
                "generation": current,
                "applied": len(applied),
                "last_seq": new_state.last_seq,
                "invalidated": evicted,
            }
