"""Typed live-update deltas and their validation rules.

A delta is one structural change to the knowledge graph, identified by a
monotonically increasing *sequence number* assigned by the update
coordinator.  Five operations cover the mutations the serving stack
supports (``docs/live_updates.md``):

* ``add_article(node_id, title)`` — a new, edgeless, non-redirect
  article (edges arrive as separate ``add_edge`` deltas);
* ``remove_article(node_id)`` — drop an article and every edge incident
  to it.  Rejected while other articles still redirect to it, so
  redirect resolution can never dangle;
* ``add_edge(source, target, kind)`` / ``remove_edge(...)`` — one typed
  edge (``link`` / ``belongs`` / ``inside``; redirects have their own
  operation).  Both endpoints must exist and satisfy the schema's
  endpoint-kind table;
* ``set_redirect(node_id, target)`` — turn an existing article into a
  redirect onto ``target``, implicitly dropping its own outgoing
  ``link``/``belongs`` edges (the schema forbids a redirect to carry
  any).

Validation runs against the *effective* graph — base snapshot plus the
overlay built so far — so a batch may add an article and then wire edges
to it.  Every rule failure raises :class:`~repro.errors.DeltaError`
naming the offending delta; nothing from a failed batch is applied.

Sequence numbers make application idempotent: a delta whose ``seq`` is
at or below the highest already applied is skipped, which is what makes
replaying a delta log (worker restart) and retrying an ``apply_delta``
wire call (socket adapter transport retry) safe.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import DeltaError
from repro.wiki.schema import normalize_title

__all__ = ["Delta", "DELTA_OPS", "EDGE_KINDS", "validate_delta"]

DELTA_OPS = (
    "add_article",
    "remove_article",
    "add_edge",
    "remove_edge",
    "set_redirect",
)

# Edge kinds addressable by add_edge/remove_edge.  Redirects are managed
# through set_redirect/remove_article only, so the "exactly one outgoing
# redirect" invariant has a single write path.
EDGE_KINDS = ("link", "belongs", "inside")


@dataclass(frozen=True, slots=True)
class Delta:
    """One graph mutation with its global sequence number.

    Field usage by operation (unused fields stay ``None``):

    ======================  ==========================================
    ``add_article``          ``node_id``, ``title``
    ``remove_article``       ``node_id``
    ``add_edge``             ``source``, ``target``, ``kind``
    ``remove_edge``          ``source``, ``target``, ``kind``
    ``set_redirect``         ``node_id``, ``target``
    ======================  ==========================================
    """

    op: str
    seq: int
    node_id: int | None = None
    title: str | None = None
    source: int | None = None
    target: int | None = None
    kind: str | None = None

    def __post_init__(self) -> None:
        if self.op not in DELTA_OPS:
            raise DeltaError(
                f"unknown delta op {self.op!r} (expected one of {DELTA_OPS})"
            )
        if self.seq < 1:
            raise DeltaError(f"delta seq must be >= 1, got {self.seq}")
        if self.op == "add_article":
            self._require(node_id=True, title=True)
            if not str(self.title).strip():
                raise DeltaError(f"delta {self.seq}: add_article needs a title")
        elif self.op == "remove_article":
            self._require(node_id=True)
        elif self.op in ("add_edge", "remove_edge"):
            self._require(source=True, target=True, kind=True)
            if self.kind not in EDGE_KINDS:
                raise DeltaError(
                    f"delta {self.seq}: edge kind {self.kind!r} is not one of "
                    f"{EDGE_KINDS} (redirects go through set_redirect)"
                )
        elif self.op == "set_redirect":
            self._require(node_id=True, target=True)

    def _require(self, **wanted: bool) -> None:
        fields = ("node_id", "title", "source", "target", "kind")
        for name in fields:
            value = getattr(self, name)
            if wanted.get(name) and value is None:
                raise DeltaError(f"delta {self.seq}: {self.op} needs {name!r}")
            if not wanted.get(name) and value is not None:
                raise DeltaError(
                    f"delta {self.seq}: {self.op} does not take {name!r}"
                )

    # ------------------------------------------------------------------
    # Wire form (JSON round trip, used by the log, HTTP admin and the
    # shard protocol's apply_delta call)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        payload: dict = {"op": self.op, "seq": self.seq}
        for name in ("node_id", "title", "source", "target", "kind"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "Delta":
        if not isinstance(payload, dict):
            raise DeltaError(f"delta payload must be an object, got {payload!r}")
        unknown = set(payload) - {
            "op", "seq", "node_id", "title", "source", "target", "kind"
        }
        if unknown:
            raise DeltaError(f"delta payload has unknown fields: {sorted(unknown)}")
        try:
            return cls(
                op=str(payload["op"]),
                seq=int(payload["seq"]),
                node_id=(None if payload.get("node_id") is None
                         else int(payload["node_id"])),
                title=(None if payload.get("title") is None
                       else str(payload["title"])),
                source=(None if payload.get("source") is None
                        else int(payload["source"])),
                target=(None if payload.get("target") is None
                        else int(payload["target"])),
                kind=(None if payload.get("kind") is None
                      else str(payload["kind"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeltaError(f"malformed delta payload: {exc}") from exc


def decode_deltas(payloads: Iterable[dict]) -> list[Delta]:
    """Decode a wire batch, enforcing strictly increasing sequence numbers."""
    deltas = [Delta.from_payload(p) for p in payloads]
    for earlier, later in zip(deltas, deltas[1:]):
        if later.seq <= earlier.seq:
            raise DeltaError(
                f"delta batch is not in increasing seq order "
                f"({earlier.seq} then {later.seq})"
            )
    return deltas


__all__.append("decode_deltas")


# ----------------------------------------------------------------------
# Validation against an effective graph view
# ----------------------------------------------------------------------

def _typed_edge_exists(view, source: int, target: int, kind: str) -> bool:
    if kind == "link":
        return target in view.links_from(source)
    if kind == "belongs":
        return target in view.categories_of(source)
    if kind == "inside":
        return target in view.parents_of(source)
    raise DeltaError(f"unknown edge kind {kind!r}")


def validate_delta(view, delta: Delta) -> None:
    """Check ``delta`` against the effective graph ``view`` (base+overlay).

    ``view`` is any object with the WikiGraph read API; raises
    :class:`DeltaError` with the failing rule.  Rules mirror the schema:
    endpoint kinds, redirect articles carrying no own edges, redirect
    targets that are main articles, and no dangling redirect sources.
    """
    what = f"delta {delta.seq} ({delta.op})"
    if delta.op == "add_article":
        if delta.node_id in view:
            raise DeltaError(f"{what}: node {delta.node_id} already exists")
        norm = normalize_title(delta.title)
        existing = view.article_by_title(norm)
        if existing is not None:
            raise DeltaError(
                f"{what}: title {delta.title!r} collides with article "
                f"{existing.node_id}"
            )
        return
    if delta.op == "remove_article":
        node = delta.node_id
        if node not in view or not view.is_article(node):
            raise DeltaError(f"{what}: node {node} is not a known article")
        pointing = view.redirects_of(node)
        if pointing:
            raise DeltaError(
                f"{what}: article {node} still has redirects pointing at it "
                f"({sorted(pointing)[:3]}); remove those first"
            )
        return
    if delta.op in ("add_edge", "remove_edge"):
        source, target, kind = delta.source, delta.target, delta.kind
        if source == target:
            raise DeltaError(f"{what}: self-loop {source} -> {target}")
        for endpoint in (source, target):
            if endpoint not in view:
                raise DeltaError(f"{what}: unknown node {endpoint}")
        expect = {
            "link": (True, True),
            "belongs": (True, False),
            "inside": (False, False),
        }[kind]
        actual = (view.is_article(source), view.is_article(target))
        if actual != expect:
            raise DeltaError(
                f"{what}: endpoint kinds {actual} violate the schema for "
                f"{kind!r} edges"
            )
        if kind in ("link", "belongs") and \
                view.article(source).is_redirect:
            raise DeltaError(
                f"{what}: article {source} is a redirect and cannot carry "
                f"its own {kind!r} edges"
            )
        exists = _typed_edge_exists(view, source, target, kind)
        if delta.op == "add_edge" and exists:
            raise DeltaError(
                f"{what}: {kind} edge {source} -> {target} already exists"
            )
        if delta.op == "remove_edge" and not exists:
            raise DeltaError(
                f"{what}: {kind} edge {source} -> {target} does not exist"
            )
        return
    if delta.op == "set_redirect":
        node, target = delta.node_id, delta.target
        if node == target:
            raise DeltaError(f"{what}: article {node} cannot redirect to itself")
        for endpoint in (node, target):
            if endpoint not in view or not view.is_article(endpoint):
                raise DeltaError(f"{what}: node {endpoint} is not a known article")
        if view.article(target).is_redirect:
            raise DeltaError(
                f"{what}: redirect target {target} is itself a redirect "
                f"(chains are not allowed; point at the main article)"
            )
        pointing = view.redirects_of(node)
        if pointing:
            raise DeltaError(
                f"{what}: article {node} has redirects pointing at it "
                f"({sorted(pointing)[:3]}) and cannot become a redirect itself"
            )
        return
    raise AssertionError(f"unreachable op {delta.op!r}")
