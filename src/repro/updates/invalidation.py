"""Targeted cache invalidation for applied deltas.

The paper's cycle features are functions of a bounded neighbourhood
ball (radius-2 BFS ball, cycles up to length 5), so a graph delta can
only change the answer of queries whose seed set lies near the touched
nodes — exactly the locality argument of Berkholz et al. for answering
queries under updates (PAPERS.md).  Instead of dropping whole caches on
every update, we compute the *delta ball*: every node within
``INVALIDATION_RADIUS`` hops of a node the batch touched, measured over
the union of the pre- and post-apply adjacency (an added edge must
invalidate along the new path, a removed edge along the old one).

An expansion-cache entry is keyed by its frozenset of seed ids; it is
evicted iff its seeds intersect the delta ball
(:func:`expansion_eviction_predicate` with
:meth:`~repro.service.cache.LRUCache.evict_where`).  Everything else
stays warm — the ``delta_overlay`` bench regime asserts unrelated
topics keep their cache hits across an applied delta.

The link cache is keyed by normalised query *text*, which has no
locality in node-id space; it is dropped (and the linker rebuilt) only
when a delta changes the title/redirect surface — ``add_article``,
``remove_article``, ``set_redirect`` — and left alone for pure edge
deltas (:func:`deltas_touch_titles`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.updates.deltas import Delta

__all__ = [
    "INVALIDATION_RADIUS",
    "delta_ball",
    "changed_nodes",
    "deltas_touch_titles",
    "expansion_eviction_predicate",
]

# Max cycle length of the expansion analysis: a cached expansion whose
# seeds sit further than this from every touched node cannot have any
# touched node inside the subgraph its features were mined from.
INVALIDATION_RADIUS = 5

_TITLE_OPS = frozenset({"add_article", "remove_article", "set_redirect"})


def changed_nodes(deltas: Iterable[Delta]) -> frozenset[int]:
    """Nodes a batch names directly (BFS sources of the delta ball)."""
    nodes: set[int] = set()
    for delta in deltas:
        for field in (delta.node_id, delta.source, delta.target):
            if field is not None:
                nodes.add(field)
    return frozenset(nodes)


def deltas_touch_titles(deltas: Iterable[Delta]) -> bool:
    """True when the batch changes the title/redirect surface linking
    depends on (so the linker must be rebuilt and the link cache shed)."""
    return any(delta.op in _TITLE_OPS for delta in deltas)


def _neighbors(view, node_id: int) -> frozenset[int]:
    if node_id not in view:
        return frozenset()
    return view.undirected_neighbors(node_id)


def delta_ball(
    sources: Iterable[int],
    *,
    before,
    after,
    radius: int = INVALIDATION_RADIUS,
) -> frozenset[int]:
    """BFS ball around ``sources`` over the union adjacency of both views.

    ``before`` is the effective view the batch was applied against,
    ``after`` the view with the batch folded in; a node absent from one
    side contributes no neighbours there (removed and added nodes are
    handled uniformly).
    """
    ball = set(sources)
    frontier = set(sources)
    for _ in range(radius):
        if not frontier:
            break
        next_frontier: set[int] = set()
        for node in frontier:
            next_frontier |= _neighbors(before, node)
            next_frontier |= _neighbors(after, node)
        next_frontier -= ball
        ball |= next_frontier
        frontier = next_frontier
    return frozenset(ball)


def expansion_eviction_predicate(ball: frozenset[int]):
    """Predicate over expansion-cache keys (frozensets of seed ids)."""

    def doomed(key) -> bool:
        try:
            return not ball.isdisjoint(key)
        except TypeError:
            return True  # unknown key shape: evict conservatively
    return doomed
