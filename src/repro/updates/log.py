"""Durable, append-only on-disk form of applied delta batches.

Each accepted ``apply_delta`` batch becomes one immutable segment file
under the serving snapshot directory::

    <snapshot>/updates/delta-<seq_hi:08d>.bin

packed with :mod:`repro.blobio` (magic ``RPDLOG1\\n``): the header
carries the generation the batch was validated against plus its
sequence range, and one byte section holds the deltas' JSON wire form.
Segments are written via a temp file + ``os.replace`` so a crash can
leave at most a garbage ``*.tmp`` file, never a half-visible segment.

Replay (:meth:`DeltaLog.replay`) is what makes worker restarts safe: a
freshly exec'd shard worker loads generation N from disk and then folds
in every logged segment whose generation matches, in sequence order,
deduplicating by sequence number — after which it answers queries
identically to the long-running workers that applied the same batches
live.  Segments from older generations are ignored (compaction starts a
new log rather than rewriting history) and :meth:`DeltaLog.reset`
removes them once the compacted generation is durable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.blobio import pack_blob, unpack_blob
from repro.errors import DeltaError
from repro.updates.deltas import Delta

__all__ = ["DeltaLog"]

_MAGIC = b"RPDLOG1\n"
_SUBDIR = "updates"


class DeltaLog:
    """Segment files of applied delta batches under one snapshot dir."""

    def __init__(self, snapshot_dir: str | Path) -> None:
        self._dir = Path(snapshot_dir) / _SUBDIR

    @property
    def directory(self) -> Path:
        return self._dir

    def segments(self) -> list[Path]:
        if not self._dir.is_dir():
            return []
        return sorted(self._dir.glob("delta-*.bin"))

    def append(self, generation: int, deltas: list[Delta]) -> Path:
        """Durably persist one applied batch; returns the segment path."""
        if not deltas:
            raise DeltaError("refusing to log an empty delta batch")
        seq_lo = deltas[0].seq
        seq_hi = deltas[-1].seq
        header = {
            "generation": int(generation),
            "seq_lo": int(seq_lo),
            "seq_hi": int(seq_hi),
            "count": len(deltas),
        }
        body = json.dumps(
            [delta.to_payload() for delta in deltas],
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        blob = pack_blob(_MAGIC, header, {"deltas": body})
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / f"delta-{seq_hi:08d}.bin"
        tmp = path.with_suffix(".bin.tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        return path

    def _read_segment(self, path: Path) -> tuple[int, list[Delta]]:
        header, sections = unpack_blob(_MAGIC, path.read_bytes(), DeltaError)
        try:
            generation = int(header["generation"])
            payloads = json.loads(bytes(sections["deltas"]).decode("utf-8"))
        except (KeyError, TypeError, ValueError) as exc:
            raise DeltaError(f"delta segment {path} is malformed: {exc}") from exc
        deltas = [Delta.from_payload(p) for p in payloads]
        if len(deltas) != int(header.get("count", len(deltas))):
            raise DeltaError(f"delta segment {path} count disagrees with header")
        return generation, deltas

    def replay(self, generation: int) -> list[Delta]:
        """All logged deltas of ``generation``, seq-ordered and deduplicated."""
        merged: dict[int, Delta] = {}
        for path in self.segments():
            seg_generation, deltas = self._read_segment(path)
            if seg_generation != generation:
                continue
            for delta in deltas:
                merged.setdefault(delta.seq, delta)
        return [merged[seq] for seq in sorted(merged)]

    def reset(self) -> int:
        """Drop every segment (the overlay was folded into a new
        generation); returns how many files were removed."""
        removed = 0
        for path in self.segments():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"DeltaLog(dir={str(self._dir)!r}, segments={len(self.segments())})"
