"""Overlay read path: a frozen base graph plus applied deltas.

The serving stack's graphs are immutable by design — dict-backed
:class:`~repro.wiki.graph.WikiGraph` at build time, the mmap-able CSR
:class:`~repro.wiki.compact.CompactGraphView` in workers.  Live updates
therefore never mutate a graph: applied deltas accumulate in an
:class:`OverlayState`, and an :class:`OverlayGraphView` answers the full
graph read API by merging the frozen base with that state at read time.

The merge rule per typed adjacency slot is ``(base - removed) | added``,
with the *explicit removal* convention: ``remove_article`` records the
removal of every incident edge individually (both directions), so the
passthrough adjacency of surviving neighbours is correct and a
remove-then-re-add naturally yields an edgeless article.  The ``removed``
set only governs node membership.

Read-path cost when the overlay is empty (or for nodes it never
touched): one set-membership test against ``touched`` and a passthrough
to the base — in particular :meth:`OverlayGraphView.induced_subgraph`
delegates to the base's zero-copy ``_CompactSubgraph`` whenever the
requested ball avoids touched nodes, so the cycle kernels keep their
CSR fast path.  Balls that do intersect the overlay are materialised as
ordinary dict-backed :class:`WikiGraph` subgraphs, which the cycle
machinery already answers bit-identically (the dict/compact equivalence
the benchmark asserts).

States are copy-on-write: :func:`apply_deltas` copies the state, applies
the batch, and returns the new state — published views never observe a
half-applied batch.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import DeltaError, UnknownNodeError
from repro.updates.deltas import Delta, validate_delta
from repro.wiki.graph import WikiGraph
from repro.wiki.schema import Article, Category, Edge, EdgeKind, normalize_title

__all__ = [
    "OverlayState",
    "OverlayGraphView",
    "apply_deltas",
    "apply_deltas_to_graph",
    "materialize_graph",
]

# Directed adjacency slots and their reverse twins.  Every edge write
# touches a (slot, reverse) pair so both endpoints answer consistently.
_SLOTS = ("links_out", "links_in", "belongs", "members", "parents", "children")
_REVERSE = {
    "links_out": "links_in",
    "links_in": "links_out",
    "belongs": "members",
    "members": "belongs",
    "parents": "children",
    "children": "parents",
}
_KIND_SLOT = {"link": "links_out", "belongs": "belongs", "inside": "parents"}


class OverlayState:
    """Accumulated effect of applied deltas over one base generation."""

    __slots__ = (
        "generation", "last_seq",
        "_add", "_rem", "articles_override", "removed",
        "redirect_add", "redirect_rem",
        "redirects_of_add", "redirects_of_rem",
        "touched", "removed_titles",
        "num_articles_delta", "num_main_delta", "num_edges_delta",
    )

    def __init__(self, generation: int = 1) -> None:
        self.generation = generation
        self.last_seq = 0
        self._add: dict[str, dict[int, set[int]]] = {s: {} for s in _SLOTS}
        self._rem: dict[str, dict[int, set[int]]] = {s: {} for s in _SLOTS}
        self.articles_override: dict[int, Article] = {}
        self.removed: set[int] = set()
        self.redirect_add: dict[int, int] = {}
        self.redirect_rem: set[int] = set()
        self.redirects_of_add: dict[int, set[int]] = {}
        self.redirects_of_rem: dict[int, set[int]] = {}
        self.touched: set[int] = set()
        self.removed_titles: set[str] = set()
        self.num_articles_delta = 0
        self.num_main_delta = 0
        self.num_edges_delta = 0

    @property
    def is_empty(self) -> bool:
        return self.last_seq == 0

    def copy(self) -> "OverlayState":
        clone = OverlayState(self.generation)
        clone.last_seq = self.last_seq
        clone._add = {s: {n: set(v) for n, v in m.items()}
                      for s, m in self._add.items()}
        clone._rem = {s: {n: set(v) for n, v in m.items()}
                      for s, m in self._rem.items()}
        clone.articles_override = dict(self.articles_override)
        clone.removed = set(self.removed)
        clone.redirect_add = dict(self.redirect_add)
        clone.redirect_rem = set(self.redirect_rem)
        clone.redirects_of_add = {n: set(v) for n, v in self.redirects_of_add.items()}
        clone.redirects_of_rem = {n: set(v) for n, v in self.redirects_of_rem.items()}
        clone.touched = set(self.touched)
        clone.removed_titles = set(self.removed_titles)
        clone.num_articles_delta = self.num_articles_delta
        clone.num_main_delta = self.num_main_delta
        clone.num_edges_delta = self.num_edges_delta
        return clone

    # ------------------------------------------------------------------
    # Edge-level bookkeeping
    # ------------------------------------------------------------------

    def _slot_add(self, slot: str, node: int, other: int) -> None:
        rem = self._rem[slot].get(node)
        if rem is not None and other in rem:
            rem.discard(other)
        else:
            self._add[slot].setdefault(node, set()).add(other)

    def _slot_rem(self, slot: str, node: int, other: int) -> None:
        add = self._add[slot].get(node)
        if add is not None and other in add:
            add.discard(other)
        else:
            self._rem[slot].setdefault(node, set()).add(other)

    def _edge_add(self, slot: str, source: int, target: int) -> None:
        self._slot_add(slot, source, target)
        self._slot_add(_REVERSE[slot], target, source)
        self.num_edges_delta += 1
        self.touched.update((source, target))

    def _edge_rem(self, slot: str, source: int, target: int) -> None:
        self._slot_rem(slot, source, target)
        self._slot_rem(_REVERSE[slot], target, source)
        self.num_edges_delta -= 1
        self.touched.update((source, target))

    def _redirect_set(self, source: int, target: int) -> None:
        self.redirect_add[source] = target
        self.redirect_rem.discard(source)
        removed = self.redirects_of_rem.get(target)
        if removed is not None and source in removed:
            removed.discard(source)
        else:
            self.redirects_of_add.setdefault(target, set()).add(source)
        self.num_edges_delta += 1

    def _redirect_clear(self, source: int, target: int) -> None:
        if source in self.redirect_add:
            del self.redirect_add[source]
        else:
            self.redirect_rem.add(source)
        added = self.redirects_of_add.get(target)
        if added is not None and source in added:
            added.discard(source)
        else:
            self.redirects_of_rem.setdefault(target, set()).add(source)
        self.num_edges_delta -= 1

    # ------------------------------------------------------------------
    # Delta application (``view`` is the effective view over *this* state)
    # ------------------------------------------------------------------

    def apply_delta(self, view: "OverlayGraphView", delta: Delta) -> None:
        """Fold one validated delta in; ``view`` must wrap this state."""
        if delta.op == "add_article":
            node = delta.node_id
            article = Article(node, str(delta.title), is_redirect=False)
            self.articles_override[node] = article
            self.removed.discard(node)
            self.removed_titles.discard(article.norm_title)
            self.touched.add(node)
            self.num_articles_delta += 1
            self.num_main_delta += 1
        elif delta.op == "remove_article":
            node = delta.node_id
            article = view.article(node)
            for target in view.links_from(node):
                self._edge_rem("links_out", node, target)
            for source in view.links_to(node):
                self._edge_rem("links_out", source, node)
            for category in view.categories_of(node):
                self._edge_rem("belongs", node, category)
            target = view.redirect_target(node)
            if target is not None:
                self._redirect_clear(node, target)
                self.touched.add(target)
            self.removed.add(node)
            self.articles_override.pop(node, None)
            self.removed_titles.add(article.norm_title)
            self.touched.add(node)
            self.num_articles_delta -= 1
            if not article.is_redirect:
                self.num_main_delta -= 1
        elif delta.op == "add_edge":
            self._edge_add(_KIND_SLOT[delta.kind], delta.source, delta.target)
        elif delta.op == "remove_edge":
            self._edge_rem(_KIND_SLOT[delta.kind], delta.source, delta.target)
        elif delta.op == "set_redirect":
            node, target = delta.node_id, delta.target
            article = view.article(node)
            for linked in view.links_from(node):
                self._edge_rem("links_out", node, linked)
            for category in view.categories_of(node):
                self._edge_rem("belongs", node, category)
            old = view.redirect_target(node)
            if old is not None:
                self._redirect_clear(node, old)
                self.touched.add(old)
            self._redirect_set(node, target)
            self.articles_override[node] = Article(
                node, article.title, is_redirect=True
            )
            self.touched.update((node, target))
            if not article.is_redirect:
                self.num_main_delta -= 1
        else:
            raise AssertionError(f"unreachable op {delta.op!r}")
        self.last_seq = max(self.last_seq, delta.seq)


class OverlayGraphView:
    """The WikiGraph read API over ``base`` merged with an overlay state.

    ``base`` is any frozen graph view (:class:`CompactGraphView`,
    :class:`PartitionedGraphView`, or a plain :class:`WikiGraph`); the
    surface is explicit — no ``__getattr__`` and deliberately no
    ``kernel_csr``, so the cycle kernels can never read stale CSR arrays
    through an overlay (they either get the base's subgraph view on the
    untouched fast path, or a materialised dict subgraph).
    """

    __slots__ = ("_base", "_state", "_base_title_map", "_base_category_map")

    def __init__(self, base, state: OverlayState) -> None:
        self._base = base
        self._state = state
        self._base_title_map: dict[str, int] | None = None
        self._base_category_map: dict[str, int] | None = None

    @property
    def base(self):
        return self._base

    @property
    def state(self) -> OverlayState:
        return self._state

    @property
    def generation(self) -> int:
        return self._state.generation

    # ------------------------------------------------------------------
    # Sizes and membership
    # ------------------------------------------------------------------

    @property
    def num_articles(self) -> int:
        return self._base.num_articles + self._state.num_articles_delta

    @property
    def num_main_articles(self) -> int:
        return self._base.num_main_articles + self._state.num_main_delta

    @property
    def num_categories(self) -> int:
        return self._base.num_categories

    @property
    def num_nodes(self) -> int:
        return self._base.num_nodes + self._state.num_articles_delta

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + self._state.num_edges_delta

    def __contains__(self, node_id: int) -> bool:
        state = self._state
        if node_id in state.removed:
            return False
        return node_id in state.articles_override or node_id in self._base

    def __len__(self) -> int:
        return self.num_nodes

    # ------------------------------------------------------------------
    # Node accessors
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Article | Category:
        state = self._state
        if node_id in state.removed:
            raise UnknownNodeError(node_id)
        override = state.articles_override.get(node_id)
        if override is not None:
            return override
        return self._base.node(node_id)

    def article(self, node_id: int) -> Article:
        found = self.node(node_id)
        if not isinstance(found, Article):
            raise UnknownNodeError(node_id)
        return found

    def category(self, node_id: int) -> Category:
        found = self.node(node_id)
        if not isinstance(found, Category):
            raise UnknownNodeError(node_id)
        return found

    def is_article(self, node_id: int) -> bool:
        state = self._state
        if node_id in state.removed:
            return False
        if node_id in state.articles_override:
            return True
        return node_id in self._base and self._base.is_article(node_id)

    def is_category(self, node_id: int) -> bool:
        return node_id in self._base and self._base.is_category(node_id)

    def title(self, node_id: int) -> str:
        return self.node(node_id).title

    def node_ids(self) -> Iterator[int]:
        state = self._state
        base = self._base
        for node_id in base.node_ids():
            if node_id not in state.removed:
                yield node_id
        for node_id in sorted(state.articles_override):
            if node_id not in base:
                yield node_id

    def articles(self) -> Iterator[Article]:
        state = self._state
        base = self._base
        for article in base.articles():
            if article.node_id in state.removed:
                continue
            yield state.articles_override.get(article.node_id, article)
        for node_id in sorted(state.articles_override):
            if node_id not in base:
                yield state.articles_override[node_id]

    def main_articles(self) -> Iterator[Article]:
        return (a for a in self.articles() if not a.is_redirect)

    def categories(self) -> Iterator[Category]:
        return self._base.categories()

    # ------------------------------------------------------------------
    # Title lookup (entity linking / synonym support)
    # ------------------------------------------------------------------

    def _base_article_by_title(self, norm: str) -> Article | None:
        base = self._base
        lookup = getattr(base, "article_by_title", None)
        if lookup is not None:
            return lookup(norm)
        # CompactGraphView has no title map; build one lazily (base is
        # immutable, so the map never goes stale).
        if self._base_title_map is None:
            mapping: dict[str, int] = {}
            for article in base.articles():
                mapping.setdefault(article.norm_title, article.node_id)
            self._base_title_map = mapping
        node_id = self._base_title_map.get(norm)
        return None if node_id is None else base.article(node_id)

    def article_by_title(self, title: str) -> Article | None:
        norm = normalize_title(title)
        state = self._state
        for article in state.articles_override.values():
            if article.norm_title == norm and article.node_id not in state.removed:
                return article
        found = self._base_article_by_title(norm)
        if found is None or found.node_id in state.removed:
            return None
        return state.articles_override.get(found.node_id, found)

    def category_by_name(self, name: str) -> Category | None:
        base = self._base
        lookup = getattr(base, "category_by_name", None)
        if lookup is not None:
            return lookup(name)
        if self._base_category_map is None:
            self._base_category_map = {
                c.norm_title: c.node_id for c in base.categories()
            }
        node_id = self._base_category_map.get(normalize_title(name))
        return None if node_id is None else base.category(node_id)

    def titles(self) -> Iterator[str]:
        return (a.norm_title for a in self.articles())

    # ------------------------------------------------------------------
    # Typed adjacency
    # ------------------------------------------------------------------

    _EMPTY = frozenset()

    def _slot(self, slot: str, node_id: int, base_set) -> frozenset[int]:
        state = self._state
        if node_id in state.removed:
            return self._EMPTY
        add = state._add[slot].get(node_id)
        rem = state._rem[slot].get(node_id)
        if not add and not rem:
            return frozenset(base_set) if not isinstance(base_set, frozenset) \
                else base_set
        merged = set(base_set)
        if rem:
            merged -= rem
        if add:
            merged |= add
        return frozenset(merged)

    def _base_has(self, node_id: int) -> bool:
        return node_id in self._base

    def links_from(self, article_id: int) -> frozenset[int]:
        base = self._base.links_from(article_id) if self._base_has(article_id) \
            else self._EMPTY
        return self._slot("links_out", article_id, base)

    def links_to(self, article_id: int) -> frozenset[int]:
        base = self._base.links_to(article_id) if self._base_has(article_id) \
            else self._EMPTY
        return self._slot("links_in", article_id, base)

    def categories_of(self, article_id: int) -> frozenset[int]:
        base = self._base.categories_of(article_id) if self._base_has(article_id) \
            else self._EMPTY
        return self._slot("belongs", article_id, base)

    def members_of(self, category_id: int) -> frozenset[int]:
        base = self._base.members_of(category_id) if self._base_has(category_id) \
            else self._EMPTY
        return self._slot("members", category_id, base)

    def parents_of(self, category_id: int) -> frozenset[int]:
        base = self._base.parents_of(category_id) if self._base_has(category_id) \
            else self._EMPTY
        return self._slot("parents", category_id, base)

    def children_of(self, category_id: int) -> frozenset[int]:
        base = self._base.children_of(category_id) if self._base_has(category_id) \
            else self._EMPTY
        return self._slot("children", category_id, base)

    def redirect_target(self, article_id: int) -> int | None:
        state = self._state
        if article_id in state.removed:
            return None
        if article_id in state.redirect_add:
            return state.redirect_add[article_id]
        if article_id in state.redirect_rem:
            return None
        if article_id not in self._base:
            return None
        return self._base.redirect_target(article_id)

    def redirects_of(self, article_id: int) -> frozenset[int]:
        state = self._state
        if article_id in state.removed:
            return self._EMPTY
        base = self._base.redirects_of(article_id) \
            if article_id in self._base else self._EMPTY
        add = state.redirects_of_add.get(article_id)
        rem = state.redirects_of_rem.get(article_id)
        if not add and not rem:
            return base
        merged = set(base)
        if rem:
            merged -= rem
        if add:
            merged |= add
        return frozenset(merged)

    def resolve(self, article_id: int) -> int:
        seen = {article_id}
        current = article_id
        while (target := self.redirect_target(current)) is not None:
            if target in seen:  # defensive: malformed loop
                return current
            seen.add(target)
            current = target
        return current

    def undirected_neighbors(self, node_id: int) -> frozenset[int]:
        state = self._state
        if node_id in state.removed:
            return self._EMPTY
        if node_id not in state.touched and node_id in self._base:
            neighbors = self._base.undirected_neighbors(node_id)
            return neighbors if isinstance(neighbors, frozenset) \
                else frozenset(neighbors)
        merged: set[int] = set()
        merged |= self.links_from(node_id)
        merged |= self.links_to(node_id)
        merged |= self.categories_of(node_id)
        merged |= self.members_of(node_id)
        merged |= self.parents_of(node_id)
        merged |= self.children_of(node_id)
        return frozenset(merged)

    def degree(self, node_id: int) -> int:
        return len(self.undirected_neighbors(node_id))

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.undirected_neighbors(u)

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def induced_subgraph(self, node_ids: Iterable[int]):
        keep = frozenset(node_ids)
        state = self._state
        for node_id in keep:
            if node_id not in self:
                raise UnknownNodeError(node_id)
        if keep.isdisjoint(state.touched):
            # The ball never meets the overlay: the base's own subgraph
            # answers identically, and for a CSR base that keeps the
            # zero-copy kernel fast path.
            return self._base.induced_subgraph(keep)
        articles: dict[int, Article] = {}
        categories: dict[int, Category] = {}
        edges: list[Edge] = []
        for node_id in sorted(keep):
            found = self.node(node_id)
            if isinstance(found, Article):
                articles[node_id] = found
                for target in sorted(self.links_from(node_id) & keep):
                    edges.append(Edge(node_id, target, EdgeKind.LINK))
                for category in sorted(self.categories_of(node_id) & keep):
                    edges.append(Edge(node_id, category, EdgeKind.BELONGS))
                target = self.redirect_target(node_id)
                if target is not None and target in keep:
                    edges.append(Edge(node_id, target, EdgeKind.REDIRECT))
            else:
                categories[node_id] = found
                for parent in sorted(self.parents_of(node_id) & keep):
                    edges.append(Edge(node_id, parent, EdgeKind.INSIDE))
        return WikiGraph(articles, categories, edges)

    # ------------------------------------------------------------------
    # Shard placement (router-side base views only)
    # ------------------------------------------------------------------

    def owner_shard(self, node_id: int) -> int:
        state = self._state
        if node_id in state.removed:
            raise UnknownNodeError(node_id)
        if node_id in state.articles_override and node_id not in self._base:
            from repro.wiki.partition import shard_of_node
            return shard_of_node(node_id, self._base.num_shards)
        return self._base.owner_shard(node_id)

    @property
    def num_shards(self) -> int:
        return self._base.num_shards

    def __repr__(self) -> str:
        state = self._state
        return (
            f"OverlayGraphView(gen={state.generation}, last_seq={state.last_seq}, "
            f"touched={len(state.touched)}, base={self._base!r})"
        )


# ----------------------------------------------------------------------
# Batch application and materialisation
# ----------------------------------------------------------------------

def apply_deltas(
    base,
    state: OverlayState,
    deltas: Iterable[Delta],
    *,
    validate: bool = True,
) -> tuple[OverlayState, list[Delta]]:
    """Copy-on-write batch apply; returns ``(new_state, applied)``.

    Deltas at or below the state's ``last_seq`` are skipped (idempotent
    replay); the rest are validated in order against the evolving
    effective view and folded in.  On any :class:`DeltaError` the
    original state is untouched and nothing from the batch survives.
    """
    new_state = state.copy()
    view = OverlayGraphView(base, new_state)
    applied: list[Delta] = []
    for delta in deltas:
        if delta.seq <= new_state.last_seq:
            continue
        if validate:
            validate_delta(view, delta)
        new_state.apply_delta(view, delta)
        applied.append(delta)
    return new_state, applied


def materialize_graph(view) -> WikiGraph:
    """A from-scratch dict graph equal to the effective view.

    Used by compaction (fold the overlay into generation N+1) and by the
    oracle tests: ``materialize_graph(OverlayGraphView(base, state))``
    must equal ``apply_deltas_to_graph(original_graph, deltas)``.
    """
    articles = {a.node_id: a for a in view.articles()}
    categories = {c.node_id: c for c in view.categories()}
    edges: list[Edge] = []
    for node_id in sorted(articles):
        for target in sorted(view.links_from(node_id)):
            edges.append(Edge(node_id, target, EdgeKind.LINK))
        for category in sorted(view.categories_of(node_id)):
            edges.append(Edge(node_id, category, EdgeKind.BELONGS))
        target = view.redirect_target(node_id)
        if target is not None:
            edges.append(Edge(node_id, target, EdgeKind.REDIRECT))
    for node_id in sorted(categories):
        for parent in sorted(view.parents_of(node_id)):
            edges.append(Edge(node_id, parent, EdgeKind.INSIDE))
    return WikiGraph(articles, categories, edges)


def apply_deltas_to_graph(graph: WikiGraph, deltas: Iterable[Delta]) -> WikiGraph:
    """The dict-path oracle: rebuild ``graph`` with ``deltas`` applied.

    Deliberately does *not* go through the overlay machinery — it edits
    plain dict/set structures and constructs a fresh :class:`WikiGraph`,
    so the bit-identity tests compare the live overlay against a rebuild
    produced by an independent code path.
    """
    articles = {a.node_id: a for a in graph.articles()}
    categories = {c.node_id: c for c in graph.categories()}
    edge_set: set[Edge] = set(graph.edges())
    for delta in deltas:
        if delta.op == "add_article":
            articles[delta.node_id] = Article(
                delta.node_id, str(delta.title), is_redirect=False
            )
        elif delta.op == "remove_article":
            del articles[delta.node_id]
            edge_set = {
                e for e in edge_set
                if delta.node_id not in (e.source, e.target)
            }
        elif delta.op == "add_edge":
            edge_set.add(Edge(delta.source, delta.target, EdgeKind(delta.kind)))
        elif delta.op == "remove_edge":
            edge_set.discard(Edge(delta.source, delta.target, EdgeKind(delta.kind)))
        elif delta.op == "set_redirect":
            node = delta.node_id
            edge_set = {
                e for e in edge_set
                if not (e.source == node and e.kind in (
                    EdgeKind.LINK, EdgeKind.BELONGS, EdgeKind.REDIRECT,
                ))
            }
            edge_set.add(Edge(node, delta.target, EdgeKind.REDIRECT))
            articles[node] = Article(node, articles[node].title, is_redirect=True)
        else:
            raise DeltaError(f"oracle cannot apply op {delta.op!r}")
    ordered = sorted(edge_set, key=lambda e: (e.source, e.target, e.kind.value))
    return WikiGraph(articles, categories, ordered)
