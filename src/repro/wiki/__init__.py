"""Wikipedia graph substrate: schema, storage, dumps, synthesis, statistics.

This package plays the role of the Wikipedia dump in the paper.  The graph
model follows Figure 1 exactly: articles with titles, categories with names,
``link`` / ``belongs`` / ``inside`` / ``redirects_to`` relations.
"""

from repro.wiki.builder import WikiGraphBuilder
from repro.wiki.compact import CompactGraphView
from repro.wiki.dump import dumps_graph, loads_graph, read_graph, write_graph
from repro.wiki.graph import WikiGraph
from repro.wiki.partition import (
    GraphPartition,
    PartitionedGraphView,
    partition_graph,
    shard_of_document,
    shard_of_node,
)
from repro.wiki.paths import bfs_distances, distance_histogram, eccentricity
from repro.wiki.schema import Article, Category, Edge, EdgeKind, NodeKind, normalize_title
from repro.wiki.stats import (
    GraphComposition,
    category_tree_violations,
    composition,
    connected_components,
    largest_connected_component,
    reciprocal_link_ratio,
    triangle_participation_ratio,
)
from repro.wiki.synthetic import DomainSpec, SyntheticWiki, SyntheticWikiConfig, generate_wiki

__all__ = [
    "Article",
    "Category",
    "Edge",
    "EdgeKind",
    "NodeKind",
    "normalize_title",
    "WikiGraph",
    "WikiGraphBuilder",
    "CompactGraphView",
    "GraphPartition",
    "PartitionedGraphView",
    "partition_graph",
    "shard_of_node",
    "shard_of_document",
    "write_graph",
    "read_graph",
    "dumps_graph",
    "loads_graph",
    "bfs_distances",
    "distance_histogram",
    "eccentricity",
    "GraphComposition",
    "composition",
    "connected_components",
    "largest_connected_component",
    "reciprocal_link_ratio",
    "triangle_participation_ratio",
    "category_tree_violations",
    "SyntheticWikiConfig",
    "SyntheticWiki",
    "DomainSpec",
    "generate_wiki",
]
