"""Validated, incremental construction of :class:`~repro.wiki.graph.WikiGraph`.

The builder enforces the schema of Figure 1 of the paper at ``build()`` time:

* every non-redirect article belongs to at least one category;
* redirect articles have exactly one redirect target and no other outgoing
  relations;
* edge endpoints have the kinds the relation requires;
* titles are unique within their namespace.

Use it like::

    builder = WikiGraphBuilder()
    venice = builder.add_article("Venice")
    canal = builder.add_article("Grand Canal (Venice)")
    cat = builder.add_category("Canals in Italy")
    builder.add_link(venice, canal)
    builder.add_belongs(canal, cat)
    builder.add_belongs(venice, cat)
    graph = builder.build()
"""

from __future__ import annotations

from repro.errors import DuplicateNodeError, SchemaError, UnknownNodeError
from repro.wiki.graph import WikiGraph
from repro.wiki.schema import Article, Category, Edge, EdgeKind, normalize_title

__all__ = ["WikiGraphBuilder"]


class WikiGraphBuilder:
    """Mutable staging area that validates and then freezes a WikiGraph."""

    def __init__(self, *, strict: bool = True) -> None:
        """``strict=False`` relaxes the at-least-one-category rule, which is
        convenient for small hand-built test graphs."""
        self._strict = strict
        self._articles: dict[int, Article] = {}
        self._categories: dict[int, Category] = {}
        self._edges: list[Edge] = []
        self._edge_set: set[tuple[int, int, EdgeKind]] = set()
        self._article_titles: dict[str, int] = {}
        self._category_names: dict[str, int] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def _claim_id(self, node_id: int | None) -> int:
        if node_id is None:
            node_id = self._next_id
        elif node_id in self._articles or node_id in self._categories:
            raise DuplicateNodeError(f"node id {node_id} already in use")
        self._next_id = max(self._next_id, node_id) + 1
        return node_id

    def add_article(
        self, title: str, *, is_redirect: bool = False, node_id: int | None = None
    ) -> int:
        """Register an article and return its node id.

        ``node_id`` lets loaders preserve ids from a dump; by default ids
        are assigned sequentially.  Raises :class:`DuplicateNodeError` when
        another article already uses the same normalised title or id.
        """
        if not title or not title.strip():
            raise SchemaError("article title must be non-empty")
        norm = normalize_title(title)
        if norm in self._article_titles:
            raise DuplicateNodeError(f"duplicate article title: {title!r}")
        node_id = self._claim_id(node_id)
        self._articles[node_id] = Article(node_id, title.strip(), is_redirect)
        self._article_titles[norm] = node_id
        return node_id

    def add_category(self, name: str, *, node_id: int | None = None) -> int:
        """Register a category and return its node id."""
        if not name or not name.strip():
            raise SchemaError("category name must be non-empty")
        norm = normalize_title(name)
        if norm in self._category_names:
            raise DuplicateNodeError(f"duplicate category name: {name!r}")
        node_id = self._claim_id(node_id)
        self._categories[node_id] = Category(node_id, name.strip())
        self._category_names[norm] = node_id
        return node_id

    def article_id(self, title: str) -> int | None:
        """Id of the article with ``title``, or ``None``."""
        return self._article_titles.get(normalize_title(title))

    def category_id(self, name: str) -> int | None:
        """Id of the category named ``name``, or ``None``."""
        return self._category_names.get(normalize_title(name))

    def title_of(self, node_id: int) -> str:
        """Title/name of a staged node (raises on unknown ids)."""
        if node_id in self._articles:
            return self._articles[node_id].title
        if node_id in self._categories:
            return self._categories[node_id].name
        raise UnknownNodeError(node_id)

    @property
    def num_nodes(self) -> int:
        return len(self._articles) + len(self._categories)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def _require_article(self, node_id: int, role: str) -> Article:
        article = self._articles.get(node_id)
        if article is None:
            if node_id in self._categories:
                raise SchemaError(f"{role} must be an article, got category {node_id}")
            raise UnknownNodeError(node_id)
        return article

    def _require_category(self, node_id: int, role: str) -> Category:
        category = self._categories.get(node_id)
        if category is None:
            if node_id in self._articles:
                raise SchemaError(f"{role} must be a category, got article {node_id}")
            raise UnknownNodeError(node_id)
        return category

    def _push_edge(self, source: int, target: int, kind: EdgeKind) -> bool:
        key = (source, target, kind)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._edges.append(Edge(source, target, kind))
        return True

    def add_link(self, source: int, target: int) -> bool:
        """Add an article->article hyperlink; returns False when it existed.

        Self-links are rejected: an article linking to itself is meaningless
        for the cycle analysis and does not occur in cleaned dumps.
        """
        self._require_article(source, "link source")
        self._require_article(target, "link target")
        if source == target:
            raise SchemaError(f"self-link on article {source}")
        return self._push_edge(source, target, EdgeKind.LINK)

    def add_belongs(self, article: int, category: int) -> bool:
        """Add article->category membership; returns False when it existed."""
        self._require_article(article, "belongs source")
        self._require_category(category, "belongs target")
        return self._push_edge(article, category, EdgeKind.BELONGS)

    def add_inside(self, child: int, parent: int) -> bool:
        """Add category->category containment; returns False when it existed."""
        self._require_category(child, "inside source")
        self._require_category(parent, "inside target")
        if child == parent:
            raise SchemaError(f"category {child} cannot be inside itself")
        return self._push_edge(child, parent, EdgeKind.INSIDE)

    def add_redirect(self, redirect: int, main: int) -> bool:
        """Point redirect article at its main article.

        The redirect article must have been created with
        ``is_redirect=True`` and may have only one target.
        """
        red = self._require_article(redirect, "redirect source")
        self._require_article(main, "redirect target")
        if not red.is_redirect:
            raise SchemaError(f"article {redirect} was not created as a redirect")
        if redirect == main:
            raise SchemaError(f"article {redirect} cannot redirect to itself")
        existing = [e for e in self._edges if e.kind is EdgeKind.REDIRECT and e.source == redirect]
        if existing:
            raise SchemaError(f"redirect article {redirect} already has a target")
        return self._push_edge(redirect, main, EdgeKind.REDIRECT)

    # ------------------------------------------------------------------
    # Convenience: title-based edge helpers
    # ------------------------------------------------------------------

    def link_titles(self, source_title: str, target_title: str) -> bool:
        """Add a link between two articles identified by title."""
        src = self.article_id(source_title)
        dst = self.article_id(target_title)
        if src is None:
            raise UnknownNodeError(source_title)
        if dst is None:
            raise UnknownNodeError(target_title)
        return self.add_link(src, dst)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        belongs_sources = {e.source for e in self._edges if e.kind is EdgeKind.BELONGS}
        redirect_sources = {e.source for e in self._edges if e.kind is EdgeKind.REDIRECT}
        link_sources = {e.source for e in self._edges if e.kind is EdgeKind.LINK}

        for node_id, article in self._articles.items():
            if article.is_redirect:
                if node_id not in redirect_sources:
                    raise SchemaError(
                        f"redirect article {article.title!r} has no redirect target"
                    )
                if node_id in belongs_sources or node_id in link_sources:
                    raise SchemaError(
                        f"redirect article {article.title!r} must not have "
                        "link/belongs edges of its own"
                    )
            elif self._strict and node_id not in belongs_sources:
                raise SchemaError(
                    f"article {article.title!r} belongs to no category "
                    "(schema requires at least one; build with strict=False to allow)"
                )

    def build(self) -> WikiGraph:
        """Validate and freeze the staged graph.

        The builder remains usable afterwards (building again returns a new
        independent graph), which is handy in tests.
        """
        self._validate()
        return WikiGraph(self._articles, self._categories, self._edges)
