"""Frozen CSR adjacency for the serving-side graph read path.

:class:`CompactGraphView` freezes the redirect-free undirected adjacency
of a :class:`~repro.wiki.graph.WikiGraph` (or a
:class:`~repro.wiki.partition.PartitionedGraphView`) into flat integer
arrays: node ids are interned into dense indices, each node's neighbours
occupy one CSR slice, and a parallel byte array carries a *typed
edge-kind mask* per (node, neighbour) pair — which directed relations
(link out/in, belongs, member, inside parent/child) connect them.  The
typed sets the expansion pipeline asks for (``links_from``,
``categories_of``, ...) are therefore mask filters over one contiguous
slice instead of six dict probes.

The expensive per-query operations become cheap:

* ``undirected_neighbors`` — one CSR slice (the BFS ball construction
  of :class:`~repro.core.expansion.NeighborhoodCycleExpander`);
* ``induced_subgraph`` — returns a :class:`_CompactSubgraph`, a
  keep-set *view* over the CSR arrays that satisfies the graph API the
  cycle machinery traverses.  Nothing is copied and, critically, the
  global edge list is never scanned — the dict-backed
  :meth:`WikiGraph.induced_subgraph` pays one pass over *every* edge of
  the graph per query, which dominates cold expansion latency.

Redirect edges are excluded from the CSR (the paper's cycle analysis
works on the redirect-free view) but kept in two small side maps so
redirect resolution and :class:`~repro.core.expansion.RedirectExpander`
still work.

Like the compact index, the view serialises to one binary blob that
``load`` maps with ``mmap`` (see :mod:`repro.blobio`); adjacency arrays
are zero-copy views into the mapping.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.blobio import map_blob, pack_blob, unpack_blob
from repro.errors import AnalysisError, UnknownNodeError
from repro.wiki.schema import Article, Category

__all__ = ["CompactGraphView"]

_MAGIC = b"RPCGRF1\n"

# Edge-kind bits of one (node, neighbour) pair, from the node's side.
LINK_OUT = 1        # node --link--> neighbour (articles)
LINK_IN = 2         # neighbour --link--> node (articles)
BELONGS = 4         # node belongs to neighbour (article -> category)
MEMBER = 8          # neighbour belongs to node (category side)
INSIDE_PARENT = 16  # node is inside neighbour (category -> parent)
INSIDE_CHILD = 32   # neighbour is inside node (category -> child)

_FLAG_ARTICLE = 1
_FLAG_REDIRECT = 2


class CompactGraphView:
    """Immutable CSR view of the typed, redirect-free adjacency."""

    __slots__ = (
        "_node_ids", "_index_of", "_flags", "_titles",
        "_adj_offsets", "_adj_targets", "_adj_kinds",
        "_redirect_to", "_redirects_of", "_article_ids", "_decoded",
        "_num_articles", "_num_categories", "_num_edges", "_handle",
    )

    def __init__(
        self,
        node_ids: list[int],
        flags,
        titles: list[str],
        adj_offsets,
        adj_targets,
        adj_kinds,
        redirect_to: dict[int, int],
        num_edges: int | None = None,
        handle=None,
    ) -> None:
        self._node_ids = node_ids
        self._index_of = {node_id: idx for idx, node_id in enumerate(node_ids)}
        self._flags = flags
        self._titles = titles
        self._adj_offsets = adj_offsets
        self._adj_targets = adj_targets
        self._adj_kinds = adj_kinds
        self._redirect_to = redirect_to
        redirects_of: dict[int, list[int]] = {}
        for source, target in redirect_to.items():
            redirects_of.setdefault(target, []).append(source)
        self._redirects_of = {
            target: frozenset(sources) for target, sources in redirects_of.items()
        }
        self._article_ids = frozenset(
            node_id for node_id, flag in zip(node_ids, flags) if flag & _FLAG_ARTICLE
        )
        # Per-node decode cache: CSR slices are the storage, but pure-
        # Python loops over them lose to C set operations on the hot
        # path, so the typed frozensets of a node are decoded once on
        # first touch and reused (cycle mining revisits the same ball
        # nodes hundreds of times per query).  Entries are immutable and
        # idempotent, so unlocked concurrent fills are benign.  The
        # cache is size-bounded: once _DECODE_CACHE_MAX nodes are
        # resident, later nodes decode per call instead of growing the
        # heap toward a full materialised adjacency — hot (early-touched)
        # nodes stay cached, the cold tail pays the decode.
        self._decoded: dict[int, tuple[frozenset, ...]] = {}
        self._num_articles = len(self._article_ids)
        self._num_categories = len(node_ids) - self._num_articles
        if num_edges is None:
            # Owned directed edges: out-side bits once each, plus
            # redirects — the same counting rule WikiGraph.num_edges
            # follows.  Blob loads pass the count from the header so an
            # mmap-backed view never scans the adjacency at startup.
            owned = 0
            for kind in adj_kinds:
                if kind & LINK_OUT:
                    owned += 1
                if kind & BELONGS:
                    owned += 1
                if kind & INSIDE_PARENT:
                    owned += 1
            num_edges = owned + len(redirect_to)
        self._num_edges = num_edges
        self._handle = handle

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph) -> "CompactGraphView":
        """Freeze any WikiGraph-shaped object (graph, partition view).

        ``graph`` must answer the typed adjacency API exactly (a
        :class:`WikiGraph`, or a :class:`PartitionedGraphView` whose
        per-node answers are exact); the frozen view then answers every
        adjacency query with the same sets.
        """
        if isinstance(graph, cls):
            return graph
        node_ids = sorted(graph.node_ids())
        index_of = {node_id: idx for idx, node_id in enumerate(node_ids)}
        flags = bytearray(len(node_ids))
        titles: list[str] = []
        adj_offsets = array("i", [0])
        adj_targets = array("i")
        adj_kinds = bytearray()
        redirect_to: dict[int, int] = {}

        for node_id in node_ids:
            masks: dict[int, int] = {}
            if graph.is_article(node_id):
                article = graph.article(node_id)
                flags[index_of[node_id]] = _FLAG_ARTICLE | (
                    _FLAG_REDIRECT if article.is_redirect else 0
                )
                titles.append(article.title)
                for target in graph.links_from(node_id):
                    masks[target] = masks.get(target, 0) | LINK_OUT
                for source in graph.links_to(node_id):
                    masks[source] = masks.get(source, 0) | LINK_IN
                for category in graph.categories_of(node_id):
                    masks[category] = masks.get(category, 0) | BELONGS
                target = graph.redirect_target(node_id)
                if target is not None:
                    redirect_to[node_id] = target
            else:
                titles.append(graph.category(node_id).name)
                for member in graph.members_of(node_id):
                    masks[member] = masks.get(member, 0) | MEMBER
                for parent in graph.parents_of(node_id):
                    masks[parent] = masks.get(parent, 0) | INSIDE_PARENT
                for child in graph.children_of(node_id):
                    masks[child] = masks.get(child, 0) | INSIDE_CHILD
            for neighbor in sorted(masks):
                target_idx = index_of.get(neighbor)
                if target_idx is None:
                    raise AnalysisError(
                        f"graph adjacency references unknown node {neighbor}"
                    )
                adj_targets.append(target_idx)
                adj_kinds.append(masks[neighbor])
            adj_offsets.append(len(adj_targets))

        return cls(
            node_ids=node_ids,
            flags=bytes(flags),
            titles=titles,
            adj_offsets=adj_offsets,
            adj_targets=adj_targets,
            adj_kinds=bytes(adj_kinds),
            redirect_to=redirect_to,
        )

    # ------------------------------------------------------------------
    # Sizes and membership
    # ------------------------------------------------------------------

    @property
    def num_articles(self) -> int:
        return self._num_articles

    @property
    def num_main_articles(self) -> int:
        return sum(
            1 for f in self._flags
            if f & _FLAG_ARTICLE and not f & _FLAG_REDIRECT
        )

    @property
    def num_categories(self) -> int:
        return self._num_categories

    @property
    def num_nodes(self) -> int:
        return len(self._node_ids)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index_of

    def __len__(self) -> int:
        return self.num_nodes

    # ------------------------------------------------------------------
    # Node accessors
    # ------------------------------------------------------------------

    def _index(self, node_id: int) -> int:
        idx = self._index_of.get(node_id)
        if idx is None:
            raise UnknownNodeError(node_id)
        return idx

    def node(self, node_id: int) -> Article | Category:
        idx = self._index(node_id)
        flag = self._flags[idx]
        if flag & _FLAG_ARTICLE:
            return Article(node_id, self._titles[idx], bool(flag & _FLAG_REDIRECT))
        return Category(node_id, self._titles[idx])

    def article(self, node_id: int) -> Article:
        found = self.node(node_id)
        if not isinstance(found, Article):
            raise UnknownNodeError(node_id)
        return found

    def category(self, node_id: int) -> Category:
        found = self.node(node_id)
        if not isinstance(found, Category):
            raise UnknownNodeError(node_id)
        return found

    def is_article(self, node_id: int) -> bool:
        return node_id in self._article_ids

    def is_category(self, node_id: int) -> bool:
        return node_id not in self._article_ids and node_id in self._index_of

    def title(self, node_id: int) -> str:
        return self._titles[self._index(node_id)]

    def node_ids(self) -> Iterator[int]:
        return iter(self._node_ids)

    def articles(self) -> Iterator[Article]:
        for idx, node_id in enumerate(self._node_ids):
            flag = self._flags[idx]
            if flag & _FLAG_ARTICLE:
                yield Article(node_id, self._titles[idx], bool(flag & _FLAG_REDIRECT))

    def main_articles(self) -> Iterator[Article]:
        return (a for a in self.articles() if not a.is_redirect)

    def categories(self) -> Iterator[Category]:
        for idx, node_id in enumerate(self._node_ids):
            if not self._flags[idx] & _FLAG_ARTICLE:
                yield Category(node_id, self._titles[idx])

    # ------------------------------------------------------------------
    # Typed adjacency
    # ------------------------------------------------------------------

    _EMPTY_DECODE = (frozenset(),) * 7
    _DECODE_CACHE_MAX = 1 << 17

    def _decode(self, node_id: int) -> tuple[frozenset, ...]:
        """Typed adjacency of one node, decoded from CSR on first touch.

        Returns ``(links_out, links_in, belongs, member, inside_parent,
        inside_child, undirected)`` as frozensets, cached for reuse.
        """
        cached = self._decoded.get(node_id)
        if cached is not None:
            return cached
        idx = self._index_of.get(node_id)
        if idx is None:
            return self._EMPTY_DECODE
        node_ids = self._node_ids
        targets = self._adj_targets
        kinds = self._adj_kinds
        buckets: tuple[list, ...] = ([], [], [], [], [], [])
        undirected = []
        for slot in range(self._adj_offsets[idx], self._adj_offsets[idx + 1]):
            neighbor = node_ids[targets[slot]]
            undirected.append(neighbor)
            kind = kinds[slot]
            if kind & LINK_OUT:
                buckets[0].append(neighbor)
            if kind & LINK_IN:
                buckets[1].append(neighbor)
            if kind & BELONGS:
                buckets[2].append(neighbor)
            if kind & MEMBER:
                buckets[3].append(neighbor)
            if kind & INSIDE_PARENT:
                buckets[4].append(neighbor)
            if kind & INSIDE_CHILD:
                buckets[5].append(neighbor)
        decoded = tuple(frozenset(bucket) for bucket in buckets) + (
            frozenset(undirected),
        )
        if len(self._decoded) < self._DECODE_CACHE_MAX:
            self._decoded[node_id] = decoded
        return decoded

    def links_from(self, article_id: int) -> frozenset[int]:
        return self._decode(article_id)[0]

    def links_to(self, article_id: int) -> frozenset[int]:
        return self._decode(article_id)[1]

    def categories_of(self, article_id: int) -> frozenset[int]:
        return self._decode(article_id)[2]

    def members_of(self, category_id: int) -> frozenset[int]:
        return self._decode(category_id)[3]

    def parents_of(self, category_id: int) -> frozenset[int]:
        return self._decode(category_id)[4]

    def children_of(self, category_id: int) -> frozenset[int]:
        return self._decode(category_id)[5]

    def redirect_target(self, article_id: int) -> int | None:
        return self._redirect_to.get(article_id)

    def redirects_of(self, article_id: int) -> frozenset[int]:
        return self._redirects_of.get(article_id, frozenset())

    def resolve(self, article_id: int) -> int:
        seen = {article_id}
        current = article_id
        while (target := self._redirect_to.get(current)) is not None:
            if target in seen:  # defensive: malformed loop
                return current
            seen.add(target)
            current = target
        return current

    def undirected_neighbors(self, node_id: int) -> frozenset[int]:
        """All neighbours of a node, redirect edges excluded.

        Returns the cached frozenset (callers in the pipeline only read
        and sort it; a mutable copy would cost an allocation per BFS
        visit on the hottest path).
        """
        return self._decode(node_id)[6]

    def degree(self, node_id: int) -> int:
        idx = self._index_of.get(node_id)
        if idx is None:
            return 0
        return self._adj_offsets[idx + 1] - self._adj_offsets[idx]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.undirected_neighbors(u)

    def kernel_csr(self):
        """Raw CSR arrays for the bitset cycle kernels.

        Returns ``(node_ids, index_of, offsets, targets, kinds, flags,
        keep)`` — ``targets`` are base indices into ``node_ids`` and
        ``keep`` is ``None`` (the whole view).  The kernels
        (:mod:`repro.core.cycle_kernels`) build their bitset rows
        straight from these int32/byte arrays, skipping the frozenset
        decode path entirely.
        """
        return (
            self._node_ids,
            self._index_of,
            self._adj_offsets,
            self._adj_targets,
            self._adj_kinds,
            self._flags,
            None,
        )

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def induced_subgraph(self, node_ids: Iterable[int]) -> "_CompactSubgraph":
        """A zero-copy keep-set view (no edge-list scan, no dict builds).

        The returned object answers the graph API the cycle machinery
        traverses (:class:`~repro.core.cycles.CycleFinder`,
        :func:`~repro.core.features.compute_features`) with exactly the
        sets a materialised :meth:`WikiGraph.induced_subgraph` would.
        """
        keep = frozenset(node_ids)
        for node_id in keep:
            if node_id not in self._index_of:
                raise UnknownNodeError(node_id)
        return _CompactSubgraph(self, keep)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_blob(self) -> bytes:
        header = {
            "node_ids": self._node_ids,
            "titles": self._titles,
            "redirects": sorted(self._redirect_to.items()),
            "num_edges": self._num_edges,
        }
        sections = {
            "flags": bytes(self._flags),
            "adj_offsets": self._adj_offsets if isinstance(self._adj_offsets, array)
            else array("i", self._adj_offsets),
            "adj_targets": self._adj_targets if isinstance(self._adj_targets, array)
            else array("i", self._adj_targets),
            "adj_kinds": bytes(self._adj_kinds),
        }
        return pack_blob(_MAGIC, header, sections)

    @classmethod
    def _from_parsed(cls, header: dict, sections: dict, handle) -> "CompactGraphView":
        try:
            node_ids = [int(node_id) for node_id in header["node_ids"]]
            titles = [str(title) for title in header["titles"]]
            redirect_to = {
                int(source): int(target) for source, target in header["redirects"]
            }
            num_edges = int(header["num_edges"])
            flags = sections["flags"]
            adj_offsets = sections["adj_offsets"]
            adj_targets = sections["adj_targets"]
            adj_kinds = sections["adj_kinds"]
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"compact graph blob is malformed: {exc}") from exc
        if len(titles) != len(node_ids) or len(flags) != len(node_ids) \
                or len(adj_offsets) != len(node_ids) + 1 \
                or len(adj_kinds) != len(adj_targets):
            raise AnalysisError("compact graph blob sections disagree on counts")
        return cls(
            node_ids=node_ids,
            flags=flags,
            titles=titles,
            adj_offsets=adj_offsets,
            adj_targets=adj_targets,
            adj_kinds=adj_kinds,
            redirect_to=redirect_to,
            num_edges=num_edges,
            handle=handle,
        )

    @classmethod
    def from_blob(cls, data) -> "CompactGraphView":
        header, sections = unpack_blob(_MAGIC, data, AnalysisError)
        return cls._from_parsed(header, sections, handle=None)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_bytes(self.to_blob())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CompactGraphView":
        """Map ``path`` read-only; adjacency arrays stay in the mapping."""
        header, sections, handle = map_blob(path, _MAGIC, AnalysisError)
        return cls._from_parsed(header, sections, handle=handle)

    def __repr__(self) -> str:
        return (
            f"CompactGraphView(articles={self.num_articles}, "
            f"categories={self.num_categories}, edges={self.num_edges}, "
            f"mapped={self._handle is not None})"
        )


class _CompactSubgraph:
    """A keep-set restriction of a :class:`CompactGraphView`.

    Implements exactly the graph API the expansion pipeline calls on an
    induced subgraph — adjacency filtered to the kept nodes, plus node
    classification, titles and (restricted) redirect lookups.  Building
    one is O(|keep|) validation; every adjacency answer filters one CSR
    slice on demand instead of materialising a dict-backed graph.
    """

    __slots__ = ("_base", "_keep", "_cache", "_articles")

    def __init__(self, base: CompactGraphView, keep: frozenset[int]) -> None:
        self._base = base
        self._keep = keep
        self._articles = base._article_ids
        # node_id -> 7 lazily restricted sets (links_out, links_in,
        # belongs, member, inside_parent, inside_child, undirected).
        # Cycle feature extraction queries the same ball nodes once per
        # cycle they appear in, so each slot is intersected at most once
        # — and only the slots actually asked for (the cycle finder needs
        # just the undirected slot; feature counting two typed slots per
        # node kind).
        self._cache: dict[int, list[frozenset | None]] = {}

    # -- membership and node accessors ---------------------------------

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._keep

    def __len__(self) -> int:
        return len(self._keep)

    @property
    def num_nodes(self) -> int:
        return len(self._keep)

    def node_ids(self) -> Iterator[int]:
        return iter(sorted(self._keep))

    def _check(self, node_id: int) -> int:
        if node_id not in self._keep:
            raise UnknownNodeError(node_id)
        return node_id

    def node(self, node_id: int) -> Article | Category:
        return self._base.node(self._check(node_id))

    def article(self, node_id: int) -> Article:
        return self._base.article(self._check(node_id))

    def category(self, node_id: int) -> Category:
        return self._base.category(self._check(node_id))

    def is_article(self, node_id: int) -> bool:
        return node_id in self._keep and node_id in self._articles

    def is_category(self, node_id: int) -> bool:
        return node_id in self._keep and node_id not in self._articles

    def title(self, node_id: int) -> str:
        return self._base.title(self._check(node_id))

    def articles(self) -> Iterator[Article]:
        base = self._base
        for node_id in sorted(self._keep):
            if base.is_article(node_id):
                yield base.article(node_id)

    def categories(self) -> Iterator[Category]:
        base = self._base
        for node_id in sorted(self._keep):
            if base.is_category(node_id):
                yield base.category(node_id)

    # -- adjacency, filtered to the kept set ---------------------------

    _EMPTY = frozenset()

    def _restricted(self, node_id: int, slot: int) -> frozenset[int]:
        entry = self._cache.get(node_id)
        if entry is None:
            if node_id not in self._keep:
                return self._EMPTY
            entry = [None] * 7
            self._cache[node_id] = entry
        value = entry[slot]
        if value is None:
            value = self._base._decode(node_id)[slot] & self._keep
            entry[slot] = value
        return value

    def links_from(self, article_id: int) -> frozenset[int]:
        return self._restricted(article_id, 0)

    def links_to(self, article_id: int) -> frozenset[int]:
        return self._restricted(article_id, 1)

    def categories_of(self, article_id: int) -> frozenset[int]:
        return self._restricted(article_id, 2)

    def members_of(self, category_id: int) -> frozenset[int]:
        return self._restricted(category_id, 3)

    def parents_of(self, category_id: int) -> frozenset[int]:
        return self._restricted(category_id, 4)

    def children_of(self, category_id: int) -> frozenset[int]:
        return self._restricted(category_id, 5)

    def redirect_target(self, article_id: int) -> int | None:
        if article_id not in self._keep:
            return None
        target = self._base.redirect_target(article_id)
        return target if target is not None and target in self._keep else None

    def redirects_of(self, article_id: int) -> frozenset[int]:
        if article_id not in self._keep:
            return frozenset()
        return self._base.redirects_of(article_id) & self._keep

    def resolve(self, article_id: int) -> int:
        current = article_id
        seen = {current}
        while (target := self.redirect_target(current)) is not None:
            if target in seen:
                return current
            seen.add(target)
            current = target
        return current

    def undirected_neighbors(self, node_id: int) -> frozenset[int]:
        return self._restricted(node_id, 6)

    def degree(self, node_id: int) -> int:
        return len(self.undirected_neighbors(node_id))

    def count_articles_in(self, nodes: tuple[int, ...]) -> int:
        """``A(C)`` of a cycle's node tuple (nodes of a simple cycle are
        distinct, so one set intersection counts them)."""
        return len(self._articles.intersection(nodes))

    def count_edges_among(self, nodes: tuple[int, ...]) -> int:
        """``E(C)`` of a cycle's node tuple, fused over cached sets.

        Mirrors :func:`repro.core.features.count_edges` exactly: directed
        article links count individually, BELONGS once per pair, INSIDE
        once per unordered category pair.
        """
        node_set = frozenset(nodes)
        articles = self._articles
        restricted = self._restricted
        edges = 0
        for index, u in enumerate(nodes):
            if u in articles:
                edges += len(restricted(u, 0) & node_set)  # directed links
                edges += len(restricted(u, 2) & node_set)  # belongs pairs
            else:
                parents = restricted(u, 4)
                children = restricted(u, 5)
                for v in nodes[index + 1:]:
                    if v not in articles and (v in parents or v in children):
                        edges += 1
        return edges

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.undirected_neighbors(u)

    def kernel_csr(self):
        """Raw CSR arrays restricted to the keep set; see
        :meth:`CompactGraphView.kernel_csr`."""
        base = self._base
        return (
            base._node_ids,
            base._index_of,
            base._adj_offsets,
            base._adj_targets,
            base._adj_kinds,
            base._flags,
            self._keep,
        )

    def induced_subgraph(self, node_ids: Iterable[int]) -> "_CompactSubgraph":
        keep = frozenset(node_ids)
        for node_id in keep:
            if node_id not in self._keep:
                raise UnknownNodeError(node_id)
        return _CompactSubgraph(self._base, keep)

    def __repr__(self) -> str:
        return f"_CompactSubgraph(nodes={len(self._keep)}, base={self._base!r})"
