"""Serialisation of Wikipedia graphs to a line-oriented JSON dump format.

Real reproductions would parse the MediaWiki XML/SQL dumps; offline we define
an equivalent minimal interchange format so graphs built once (e.g. the
synthetic benchmark) can be stored, shipped and reloaded deterministically.

Format: one JSON object per line, ``type`` discriminated::

    {"type": "header", "format": "repro-wikigraph", "version": 1}
    {"type": "article", "id": 0, "title": "Venice", "redirect": false}
    {"type": "category", "id": 7, "name": "Canals in Italy"}
    {"type": "edge", "kind": "link", "src": 0, "dst": 3}

The header must come first.  Node lines must precede edge lines that use
them; writers emit all nodes first.  Unknown ``type`` values are an error
(the format is versioned, not extensible in place).
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import IO

from repro.errors import DumpFormatError
from repro.wiki.builder import WikiGraphBuilder
from repro.wiki.graph import WikiGraph
from repro.wiki.schema import EdgeKind

__all__ = ["write_graph", "read_graph", "dumps_graph", "loads_graph"]

FORMAT_NAME = "repro-wikigraph"
FORMAT_VERSION = 1

_EDGE_KINDS = {kind.value: kind for kind in EdgeKind}


def _open_for_read(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return path.open("r", encoding="utf-8")


def _open_for_write(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return path.open("w", encoding="utf-8")


def _emit(graph: WikiGraph, out: IO[str]) -> None:
    header = {"type": "header", "format": FORMAT_NAME, "version": FORMAT_VERSION}
    out.write(json.dumps(header) + "\n")
    for article in sorted(graph.articles(), key=lambda a: a.node_id):
        record = {
            "type": "article",
            "id": article.node_id,
            "title": article.title,
            "redirect": article.is_redirect,
        }
        out.write(json.dumps(record, ensure_ascii=False) + "\n")
    for category in sorted(graph.categories(), key=lambda c: c.node_id):
        record = {"type": "category", "id": category.node_id, "name": category.name}
        out.write(json.dumps(record, ensure_ascii=False) + "\n")
    edges = sorted(graph.edges(), key=lambda e: (e.kind.value, e.source, e.target))
    for edge in edges:
        record = {
            "type": "edge",
            "kind": edge.kind.value,
            "src": edge.source,
            "dst": edge.target,
        }
        out.write(json.dumps(record) + "\n")


def write_graph(graph: WikiGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` (gzip-compressed when it ends in .gz)."""
    path = Path(path)
    with _open_for_write(path) as out:
        _emit(graph, out)


def dumps_graph(graph: WikiGraph) -> str:
    """Serialise ``graph`` to a dump string (mostly for tests)."""
    buffer = io.StringIO()
    _emit(graph, buffer)
    return buffer.getvalue()


def _parse(lines: IO[str], *, strict: bool) -> WikiGraph:
    builder = WikiGraphBuilder(strict=strict)
    # The dump stores explicit ids; preserve them so graphs round-trip
    # byte-for-byte.  Track which ids were declared to catch dangling edges.
    declared: set[int] = set()
    saw_header = False

    def resolve(dump_id: int, lineno: int) -> int:
        if dump_id not in declared:
            raise DumpFormatError(f"line {lineno}: edge references unknown node id {dump_id}")
        return dump_id

    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise DumpFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise DumpFormatError(f"line {lineno}: expected an object with a 'type' key")
        rtype = record["type"]
        if lineno == 1 or not saw_header:
            if rtype != "header":
                raise DumpFormatError("dump must start with a header line")
            if record.get("format") != FORMAT_NAME:
                raise DumpFormatError(f"unknown dump format: {record.get('format')!r}")
            if record.get("version") != FORMAT_VERSION:
                raise DumpFormatError(f"unsupported dump version: {record.get('version')!r}")
            saw_header = True
            continue
        try:
            if rtype == "article":
                node_id = int(record["id"])
                builder.add_article(
                    record["title"],
                    is_redirect=bool(record.get("redirect", False)),
                    node_id=node_id,
                )
                declared.add(node_id)
            elif rtype == "category":
                node_id = int(record["id"])
                builder.add_category(record["name"], node_id=node_id)
                declared.add(node_id)
            elif rtype == "edge":
                kind = _EDGE_KINDS.get(record["kind"])
                if kind is None:
                    raise DumpFormatError(f"line {lineno}: unknown edge kind {record['kind']!r}")
                src = resolve(int(record["src"]), lineno)
                dst = resolve(int(record["dst"]), lineno)
                if kind is EdgeKind.LINK:
                    builder.add_link(src, dst)
                elif kind is EdgeKind.BELONGS:
                    builder.add_belongs(src, dst)
                elif kind is EdgeKind.INSIDE:
                    builder.add_inside(src, dst)
                else:
                    builder.add_redirect(src, dst)
            elif rtype == "header":
                raise DumpFormatError(f"line {lineno}: duplicate header")
            else:
                raise DumpFormatError(f"line {lineno}: unknown record type {rtype!r}")
        except KeyError as exc:
            raise DumpFormatError(f"line {lineno}: missing field {exc}") from exc
    if not saw_header:
        raise DumpFormatError("empty dump (no header)")
    return builder.build()


def read_graph(path: str | Path, *, strict: bool = True) -> WikiGraph:
    """Load a graph dump written by :func:`write_graph`."""
    path = Path(path)
    with _open_for_read(path) as handle:
        return _parse(handle, strict=strict)


def loads_graph(text: str, *, strict: bool = True) -> WikiGraph:
    """Parse a dump string produced by :func:`dumps_graph`."""
    return _parse(io.StringIO(text), strict=strict)
