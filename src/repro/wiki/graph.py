"""In-memory storage of the Wikipedia article/category graph.

:class:`WikiGraph` is an immutable-after-build container with typed
adjacency.  It is deliberately not a thin wrapper over :mod:`networkx`: the
paper's pipeline needs typed edges (link / belongs / inside / redirect),
title lookup for entity linking, and redirect resolution — all hot paths.
Conversion *to* networkx is provided for the analysis code that wants
generic graph algorithms (connected components, triangles).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from repro.errors import UnknownNodeError
from repro.wiki.schema import Article, Category, Edge, EdgeKind, NodeKind, normalize_title

__all__ = ["WikiGraph"]


class WikiGraph:
    """A typed Wikipedia graph of articles and categories.

    Instances are created through :class:`repro.wiki.builder.WikiGraphBuilder`
    (or the convenience loaders in :mod:`repro.wiki.dump`); the constructor
    documented here takes already-validated components and is considered a
    low-level entry point.

    The graph distinguishes four edge kinds (see
    :class:`repro.wiki.schema.EdgeKind`).  All adjacency queries are O(degree).
    """

    def __init__(
        self,
        articles: dict[int, Article],
        categories: dict[int, Category],
        edges: Iterable[Edge],
    ) -> None:
        self._articles = dict(articles)
        self._categories = dict(categories)

        # Typed adjacency, forward and reverse.
        self._links_out: dict[int, set[int]] = {}
        self._links_in: dict[int, set[int]] = {}
        self._belongs: dict[int, set[int]] = {}  # article -> categories
        self._members: dict[int, set[int]] = {}  # category -> articles
        self._inside: dict[int, set[int]] = {}  # category -> parent categories
        self._children: dict[int, set[int]] = {}  # category -> child categories
        self._redirect_to: dict[int, int] = {}  # redirect article -> main
        self._redirects_of: dict[int, set[int]] = {}  # main -> redirect articles

        self._n_edges = 0
        for edge in edges:
            self._add_edge(edge)

        # Title lookup maps normalised titles to node ids.  Titles are unique
        # per namespace (article vs category), mirroring real Wikipedia.
        self._article_by_title: dict[str, int] = {
            a.norm_title: nid for nid, a in self._articles.items()
        }
        self._category_by_name: dict[str, int] = {
            c.norm_title: nid for nid, c in self._categories.items()
        }

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------

    def _add_edge(self, edge: Edge) -> None:
        src, dst, kind = edge.source, edge.target, edge.kind
        if kind is EdgeKind.LINK:
            self._links_out.setdefault(src, set()).add(dst)
            self._links_in.setdefault(dst, set()).add(src)
        elif kind is EdgeKind.BELONGS:
            self._belongs.setdefault(src, set()).add(dst)
            self._members.setdefault(dst, set()).add(src)
        elif kind is EdgeKind.INSIDE:
            self._inside.setdefault(src, set()).add(dst)
            self._children.setdefault(dst, set()).add(src)
        elif kind is EdgeKind.REDIRECT:
            self._redirect_to[src] = dst
            self._redirects_of.setdefault(dst, set()).add(src)
        self._n_edges += 1

    # ------------------------------------------------------------------
    # Sizes and membership
    # ------------------------------------------------------------------

    @property
    def num_articles(self) -> int:
        """Number of articles, including redirect articles."""
        return len(self._articles)

    @property
    def num_main_articles(self) -> int:
        """Number of non-redirect articles."""
        return sum(1 for a in self._articles.values() if not a.is_redirect)

    @property
    def num_categories(self) -> int:
        return len(self._categories)

    @property
    def num_nodes(self) -> int:
        return len(self._articles) + len(self._categories)

    @property
    def num_edges(self) -> int:
        """Total directed edges of every kind, including redirects."""
        return self._n_edges

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._articles or node_id in self._categories

    def __len__(self) -> int:
        return self.num_nodes

    # ------------------------------------------------------------------
    # Node accessors
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Article | Category:
        """Return the :class:`Article` or :class:`Category` for ``node_id``."""
        found = self._articles.get(node_id)
        if found is None:
            found = self._categories.get(node_id)
        if found is None:
            raise UnknownNodeError(node_id)
        return found

    def article(self, node_id: int) -> Article:
        """Return the article with id ``node_id`` (raises if not an article)."""
        try:
            return self._articles[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def category(self, node_id: int) -> Category:
        """Return the category with id ``node_id`` (raises if not a category)."""
        try:
            return self._categories[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def kind(self, node_id: int) -> NodeKind:
        """Return whether ``node_id`` is an article or a category."""
        if node_id in self._articles:
            return NodeKind.ARTICLE
        if node_id in self._categories:
            return NodeKind.CATEGORY
        raise UnknownNodeError(node_id)

    def is_article(self, node_id: int) -> bool:
        return node_id in self._articles

    def is_category(self, node_id: int) -> bool:
        return node_id in self._categories

    def title(self, node_id: int) -> str:
        """Title of an article or name of a category."""
        return self.node(node_id).title

    def articles(self) -> Iterator[Article]:
        """Iterate over all articles (redirects included)."""
        return iter(self._articles.values())

    def main_articles(self) -> Iterator[Article]:
        """Iterate over non-redirect articles only."""
        return (a for a in self._articles.values() if not a.is_redirect)

    def categories(self) -> Iterator[Category]:
        return iter(self._categories.values())

    def node_ids(self) -> Iterator[int]:
        yield from self._articles
        yield from self._categories

    # ------------------------------------------------------------------
    # Title lookup (entity linking support)
    # ------------------------------------------------------------------

    def article_by_title(self, title: str) -> Article | None:
        """Look an article up by (normalised) title; ``None`` if absent."""
        node_id = self._article_by_title.get(normalize_title(title))
        return None if node_id is None else self._articles[node_id]

    def category_by_name(self, name: str) -> Category | None:
        """Look a category up by (normalised) name; ``None`` if absent."""
        node_id = self._category_by_name.get(normalize_title(name))
        return None if node_id is None else self._categories[node_id]

    def titles(self) -> Iterator[str]:
        """All normalised article titles (redirects included)."""
        return iter(self._article_by_title)

    # ------------------------------------------------------------------
    # Typed adjacency
    # ------------------------------------------------------------------

    def links_from(self, article_id: int) -> frozenset[int]:
        """Articles hyperlinked from ``article_id``."""
        return frozenset(self._links_out.get(article_id, ()))

    def links_to(self, article_id: int) -> frozenset[int]:
        """Articles hyperlinking to ``article_id``."""
        return frozenset(self._links_in.get(article_id, ()))

    def categories_of(self, article_id: int) -> frozenset[int]:
        """Categories the article belongs to (>= 1 for main articles)."""
        return frozenset(self._belongs.get(article_id, ()))

    def members_of(self, category_id: int) -> frozenset[int]:
        """Articles that belong to the category."""
        return frozenset(self._members.get(category_id, ()))

    def parents_of(self, category_id: int) -> frozenset[int]:
        """More general categories the category is inside of."""
        return frozenset(self._inside.get(category_id, ()))

    def children_of(self, category_id: int) -> frozenset[int]:
        """Sub-categories contained in the category."""
        return frozenset(self._children.get(category_id, ()))

    def redirect_target(self, article_id: int) -> int | None:
        """Main article a redirect points to, or ``None`` if not a redirect."""
        return self._redirect_to.get(article_id)

    def redirects_of(self, article_id: int) -> frozenset[int]:
        """Redirect articles pointing at this main article."""
        return frozenset(self._redirects_of.get(article_id, ()))

    def resolve(self, article_id: int) -> int:
        """Follow redirect chains until a main article is reached.

        Chains are rare and short in practice; a visited set guards against
        accidental redirect loops in hand-built graphs.
        """
        seen = {article_id}
        current = article_id
        while (target := self._redirect_to.get(current)) is not None:
            if target in seen:  # defensive: malformed loop
                return current
            seen.add(target)
            current = target
        return current

    def undirected_neighbors(self, node_id: int) -> set[int]:
        """Neighbours of ``node_id`` ignoring edge direction.

        Includes LINK, BELONGS and INSIDE edges.  REDIRECT edges are
        excluded on purpose: the paper's cycle analysis observes that
        redirects can never close a cycle (Figure 1), so the structural
        analysis works on the redirect-free graph.
        """
        out: set[int] = set()
        out.update(self._links_out.get(node_id, ()))
        out.update(self._links_in.get(node_id, ()))
        out.update(self._belongs.get(node_id, ()))
        out.update(self._members.get(node_id, ()))
        out.update(self._inside.get(node_id, ()))
        out.update(self._children.get(node_id, ()))
        return out

    def degree(self, node_id: int) -> int:
        """Undirected degree (distinct neighbours, redirects excluded)."""
        return len(self.undirected_neighbors(node_id))

    def has_edge(self, u: int, v: int) -> bool:
        """True when any non-redirect edge connects ``u`` and ``v`` (any direction)."""
        return v in self.undirected_neighbors(u)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all stored directed edges (redirects included)."""
        for src, targets in self._links_out.items():
            for dst in targets:
                yield Edge(src, dst, EdgeKind.LINK)
        for src, targets in self._belongs.items():
            for dst in targets:
                yield Edge(src, dst, EdgeKind.BELONGS)
        for src, targets in self._inside.items():
            for dst in targets:
                yield Edge(src, dst, EdgeKind.INSIDE)
        for src, dst in self._redirect_to.items():
            yield Edge(src, dst, EdgeKind.REDIRECT)

    # ------------------------------------------------------------------
    # Subgraphs and conversion
    # ------------------------------------------------------------------

    def induced_subgraph(self, node_ids: Iterable[int]) -> "WikiGraph":
        """Return the subgraph induced by ``node_ids`` (redirect edges kept
        only when both endpoints are retained)."""
        keep = set(node_ids)
        unknown = [n for n in keep if n not in self]
        if unknown:
            raise UnknownNodeError(unknown[0])
        articles = {n: self._articles[n] for n in keep if n in self._articles}
        categories = {n: self._categories[n] for n in keep if n in self._categories}
        edges = [e for e in self.edges() if e.source in keep and e.target in keep]
        return WikiGraph(articles, categories, edges)

    def to_networkx(self, include_redirects: bool = False) -> nx.Graph:
        """Undirected networkx view for generic graph algorithms.

        Node attributes: ``kind`` ("article"/"category"), ``title``.
        Parallel typed edges collapse into one undirected edge.
        """
        graph = nx.Graph()
        for node_id in self.node_ids():
            node = self.node(node_id)
            graph.add_node(node_id, kind=str(node.kind), title=node.title)
        for edge in self.edges():
            if edge.kind is EdgeKind.REDIRECT and not include_redirects:
                continue
            graph.add_edge(edge.source, edge.target)
        return graph

    def __repr__(self) -> str:
        return (
            f"WikiGraph(articles={self.num_articles}, "
            f"categories={self.num_categories}, edges={self.num_edges})"
        )
