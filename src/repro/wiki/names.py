"""Deterministic generation of human-readable article and category titles.

The synthetic Wikipedia generator needs large numbers of unique,
natural-looking, multi-word titles whose words can be embedded in document
text (the entity linker matches title substrings against text).  We build
titles from fixed word banks plus a seeded RNG, so the same seed always
yields the same names.
"""

from __future__ import annotations

import random

__all__ = ["TitleFactory", "ADJECTIVES", "NOUNS", "PLACES", "TOPICS"]

# Word banks.  Real words keep examples readable; the generator never relies
# on their meaning, only on their uniqueness as combined phrases.
ADJECTIVES = [
    "ancient", "coastal", "northern", "southern", "eastern", "western",
    "historic", "modern", "royal", "imperial", "sacred", "hidden",
    "golden", "silver", "crimson", "azure", "emerald", "amber",
    "grand", "little", "upper", "lower", "inner", "outer",
    "silent", "roaring", "winding", "frozen", "burning", "floating",
    "painted", "carved", "walled", "fortified", "abandoned", "restored",
]

NOUNS = [
    "bridge", "canal", "harbor", "lagoon", "palace", "tower",
    "market", "garden", "monastery", "cathedral", "fortress", "lighthouse",
    "festival", "carnival", "regatta", "procession", "workshop", "guild",
    "archipelago", "peninsula", "plateau", "valley", "glacier", "delta",
    "mosaic", "fresco", "tapestry", "manuscript", "chronicle", "atlas",
    "observatory", "aqueduct", "amphitheatre", "basilica", "citadel", "quay",
    "orchard", "vineyard", "meadow", "marsh", "dune", "reef",
    "locomotive", "steamship", "windmill", "forge", "kiln", "loom",
]

PLACES = [
    "veridia", "castellmar", "porto bello", "alvernia", "tremond",
    "san rocco", "kalvista", "meridone", "ostrava nova", "belmara",
    "quintara", "solenza", "vetrano", "lucerna alta", "dorminia",
    "arcastella", "navarre bay", "piedmonte", "serravalle", "montalto",
    "cresthaven", "eldermoor", "farrowdale", "glenbrook", "harwick",
    "ivoryport", "jasperfield", "kestrel point", "larkspur", "mirefen",
    "northgate", "ormsby", "pellham", "quarryside", "ravensholm",
    "silvermere", "thornbury", "umberledge", "vale crossing", "westmarch",
    "ashcombe", "briarwick", "coldhollow", "dunmere", "eastfall",
    "foxglove hill", "greystone", "hallowbrook", "ironvale", "juniper flats",
]

TOPICS = [
    "architecture", "navigation", "painting", "printing", "astronomy",
    "cartography", "weaving", "glassmaking", "shipbuilding", "viticulture",
    "falconry", "clockmaking", "apiculture", "metallurgy", "ceramics",
    "calligraphy", "horticulture", "masonry", "tanning", "milling",
]


class TitleFactory:
    """Produces unique titles and category names from a seeded RNG.

    All produced strings are lower-case; Wikipedia-style capitalisation is a
    display concern and normalisation lower-cases everything anyway.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set[str] = set()
        self._counter = 0

    def _claim(self, candidate: str) -> str | None:
        if candidate in self._used:
            return None
        self._used.add(candidate)
        return candidate

    def _fresh(self, make: "callable[[], str]") -> str:
        """Draw candidates until one is unused; fall back to a numbered form
        so generation can never loop forever on exhausted banks."""
        for _ in range(64):
            claimed = self._claim(make())
            if claimed is not None:
                return claimed
        self._counter += 1
        # Suffix with a counter; still readable and guaranteed fresh.
        return self._claim(f"{make()} {self._counter}") or f"entity {self._counter}"

    # -- public producers ------------------------------------------------

    def place_name(self) -> str:
        """A place anchor for a domain, e.g. ``'castellmar'``."""
        return self._fresh(lambda: self._rng.choice(PLACES))

    def domain_topic(self) -> str:
        """A topic anchor for a domain, e.g. ``'glassmaking'``."""
        return self._fresh(lambda: self._rng.choice(TOPICS))

    def entity_title(self, anchor: str) -> str:
        """An article title themed around a domain ``anchor``.

        Shapes (chosen at random): ``"<adj> <noun> of <anchor>"``,
        ``"<noun> of <anchor>"``, ``"<anchor> <noun>"``, ``"<adj> <noun>"``.
        """
        rng = self._rng

        def make() -> str:
            shape = rng.randrange(4)
            adj = rng.choice(ADJECTIVES)
            noun = rng.choice(NOUNS)
            if shape == 0:
                return f"{adj} {noun} of {anchor}"
            if shape == 1:
                return f"{noun} of {anchor}"
            if shape == 2:
                return f"{anchor} {noun}"
            return f"{adj} {noun}"

        return self._fresh(make)

    def background_title(self) -> str:
        """A title unrelated to any domain anchor."""
        rng = self._rng

        def make() -> str:
            return f"{rng.choice(ADJECTIVES)} {rng.choice(NOUNS)} {rng.choice(TOPICS)}"

        return self._fresh(make)

    def redirect_alias(self, main_title: str) -> str:
        """A less common way to refer to ``main_title`` (for redirects)."""
        rng = self._rng

        def make() -> str:
            style = rng.randrange(3)
            if style == 0:
                return f"the {main_title}"
            if style == 1:
                return f"{main_title} ({rng.choice(TOPICS)})"
            return f"old {main_title}"

        return self._fresh(make)

    def category_name(self, anchor: str) -> str:
        """A category name themed around ``anchor``."""
        rng = self._rng

        def make() -> str:
            shape = rng.randrange(3)
            noun = rng.choice(NOUNS)
            if shape == 0:
                return f"{noun}s of {anchor}"
            if shape == 1:
                return f"{anchor} {rng.choice(TOPICS)}"
            return f"{rng.choice(ADJECTIVES)} {noun}s of {anchor}"

        return self._fresh(make)

    def filler_words(self, count: int) -> list[str]:
        """Plain filler words for document text (never article titles as a
        phrase, though individual words may overlap)."""
        rng = self._rng
        bank = ["with", "near", "beside", "toward", "during", "beyond",
                "quiet", "bright", "early", "late", "open", "closed",
                "visitors", "travellers", "records", "accounts", "views",
                "scenes", "images", "sketches", "notes", "studies"]
        return [rng.choice(bank) for _ in range(count)]
