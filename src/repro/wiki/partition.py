"""Graph partitioning: one logical WikiGraph as N physical shards.

The serving stack assumes bounded-neighbourhood queries: cycle mining for a
query only ever touches the edges reachable from its linked seeds (a
semijoin-style locality argument — see Leinders et al. on semijoin
queries).  That makes the graph partitionable: each shard holds the nodes
hashed to it (*core* nodes) plus a *halo* of boundary node records, and —
crucially — **every edge incident to a core node**.  Adjacency queries for
a core node answered by its shard are therefore exactly the answers the
monolithic graph would give; a :class:`PartitionedGraphView` dispatches
each lookup to the owning shard and is observationally equivalent to the
original :class:`~repro.wiki.graph.WikiGraph`.

Placement rules:

* articles and categories are assigned by a deterministic integer hash of
  their node id (``hash()`` is salted per process and never used);
* redirect articles are co-located with the shard of their resolved main
  article, so redirect chains and an article's ``redirects_of`` set are
  always shard-local;
* ``belongs`` and ``redirect`` edges ride with their source article (every
  edge incident to a core node is stored, so an article's category
  memberships never require a remote lookup).

Each directed edge is *owned* by the shard of its source node (boundary
edges are additionally mirrored into the other endpoint's shard so both
sides see exact adjacency); ownership makes global edge counts and
iteration well-defined without double counting.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import AnalysisError, UnknownNodeError
from repro.wiki.graph import WikiGraph
from repro.wiki.schema import Article, Category, Edge, EdgeKind

__all__ = [
    "GraphPartition",
    "PartitionedGraphView",
    "partition_graph",
    "shard_of_node",
    "shard_of_document",
]

_MASK64 = (1 << 64) - 1

_EDGE_KINDS = {kind.value: kind for kind in EdgeKind}


def shard_of_node(node_id: int, num_shards: int) -> int:
    """Deterministic shard assignment of a node id (splitmix64 finaliser)."""
    x = (node_id + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % num_shards


def shard_of_document(doc_id: str, num_shards: int) -> int:
    """Deterministic shard assignment of a document id."""
    digest = hashlib.blake2b(doc_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


@dataclass(frozen=True, slots=True)
class GraphPartition:
    """One shard of a partitioned WikiGraph.

    ``graph`` contains this shard's core nodes, the halo node records its
    boundary edges reference, and every edge incident to a core node.  It
    is *not* schema-valid on its own (halo articles carry no ``belongs``
    edges here), which is why partitions serialise through their own
    payload format instead of the validating dump loader.
    """

    shard_id: int
    num_shards: int
    graph: WikiGraph
    core_articles: frozenset[int]
    core_categories: frozenset[int]
    # Lazily-cached owned-edge count: counting scans the shard's whole
    # edge list, and manifests/views ask for it repeatedly.
    _owned_edge_count: int | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def core_ids(self) -> frozenset[int]:
        return self.core_articles | self.core_categories

    @property
    def num_core_nodes(self) -> int:
        return len(self.core_articles) + len(self.core_categories)

    def owns(self, node_id: int) -> bool:
        return node_id in self.core_articles or node_id in self.core_categories

    def owned_edges(self) -> Iterator[Edge]:
        """Edges whose source node is core here (each global edge once)."""
        core = self.core_ids
        for edge in self.graph.edges():
            if edge.source in core:
                yield edge

    @property
    def num_owned_edges(self) -> int:
        if self._owned_edge_count is None:
            object.__setattr__(
                self, "_owned_edge_count", sum(1 for _ in self.owned_edges())
            )
        return self._owned_edge_count

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready dump of this shard (nodes, edges, core membership)."""
        articles = sorted(self.graph.articles(), key=lambda a: a.node_id)
        categories = sorted(self.graph.categories(), key=lambda c: c.node_id)
        edges = sorted(
            self.graph.edges(), key=lambda e: (e.kind.value, e.source, e.target)
        )
        return {
            "shard": self.shard_id,
            "num_shards": self.num_shards,
            "articles": [[a.node_id, a.title, a.is_redirect] for a in articles],
            "categories": [[c.node_id, c.name] for c in categories],
            "edges": [[e.kind.value, e.source, e.target] for e in edges],
            "core_articles": sorted(self.core_articles),
            "core_categories": sorted(self.core_categories),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphPartition":
        """Rebuild a partition from :meth:`to_payload` output.

        Raises :class:`AnalysisError` on structurally malformed payloads;
        schema validation is deliberately skipped (partitions are views).
        """
        try:
            articles = {
                int(node_id): Article(int(node_id), str(title), bool(redirect))
                for node_id, title, redirect in payload["articles"]
            }
            categories = {
                int(node_id): Category(int(node_id), str(name))
                for node_id, name in payload["categories"]
            }
            edges = []
            for kind_value, src, dst in payload["edges"]:
                kind = _EDGE_KINDS.get(kind_value)
                if kind is None:
                    raise AnalysisError(f"unknown edge kind {kind_value!r}")
                edges.append(Edge(int(src), int(dst), kind))
            return cls(
                shard_id=int(payload["shard"]),
                num_shards=int(payload["num_shards"]),
                graph=WikiGraph(articles, categories, edges),
                core_articles=frozenset(int(n) for n in payload["core_articles"]),
                core_categories=frozenset(int(n) for n in payload["core_categories"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed partition payload: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"GraphPartition(shard={self.shard_id}/{self.num_shards}, "
            f"core={self.num_core_nodes}, graph={self.graph!r})"
        )


def assign_shards(graph: WikiGraph, num_shards: int) -> dict[int, int]:
    """Owner shard of every node; redirects follow their resolved target."""
    if num_shards < 1:
        raise AnalysisError("num_shards must be >= 1")
    owner: dict[int, int] = {}
    for article in graph.articles():
        if article.is_redirect:
            owner[article.node_id] = shard_of_node(
                graph.resolve(article.node_id), num_shards
            )
        else:
            owner[article.node_id] = shard_of_node(article.node_id, num_shards)
    for category in graph.categories():
        owner[category.node_id] = shard_of_node(category.node_id, num_shards)
    return owner


def partition_graph(graph: WikiGraph, num_shards: int) -> list[GraphPartition]:
    """Split ``graph`` into ``num_shards`` partitions with exact halos.

    Every edge is placed into the shard(s) of both endpoints; node records
    referenced by a shard's edges are copied in as halo entries.  With
    ``num_shards=1`` the single partition is the whole graph and the halo
    is empty.
    """
    owner = assign_shards(graph, num_shards)
    shard_articles: list[dict[int, Article]] = [{} for _ in range(num_shards)]
    shard_categories: list[dict[int, Category]] = [{} for _ in range(num_shards)]
    shard_edges: list[list[Edge]] = [[] for _ in range(num_shards)]
    core_articles: list[set[int]] = [set() for _ in range(num_shards)]
    core_categories: list[set[int]] = [set() for _ in range(num_shards)]

    def place_node(shard: int, node_id: int) -> None:
        if graph.is_article(node_id):
            shard_articles[shard].setdefault(node_id, graph.article(node_id))
        else:
            shard_categories[shard].setdefault(node_id, graph.category(node_id))

    for article in graph.articles():
        shard = owner[article.node_id]
        shard_articles[shard][article.node_id] = article
        core_articles[shard].add(article.node_id)
    for category in graph.categories():
        shard = owner[category.node_id]
        shard_categories[shard][category.node_id] = category
        core_categories[shard].add(category.node_id)

    for edge in graph.edges():
        src_shard = owner[edge.source]
        dst_shard = owner[edge.target]
        shard_edges[src_shard].append(edge)
        place_node(src_shard, edge.target)
        if dst_shard != src_shard:
            shard_edges[dst_shard].append(edge)
            place_node(dst_shard, edge.source)

    return [
        GraphPartition(
            shard_id=shard,
            num_shards=num_shards,
            graph=WikiGraph(shard_articles[shard], shard_categories[shard],
                            shard_edges[shard]),
            core_articles=frozenset(core_articles[shard]),
            core_categories=frozenset(core_categories[shard]),
        )
        for shard in range(num_shards)
    ]


class PartitionedGraphView:
    """Read-only WikiGraph facade over a set of :class:`GraphPartition`.

    Dispatches every node-centric query to the owning shard, whose stored
    halo guarantees the answer equals the monolithic graph's.  The view is
    immutable and thread-safe (all underlying structures are read-only
    after construction), so one instance is shared by all shard workers.
    """

    def __init__(self, partitions: Iterable[GraphPartition]) -> None:
        self._partitions = sorted(partitions, key=lambda p: p.shard_id)
        if not self._partitions:
            raise AnalysisError("a PartitionedGraphView needs >= 1 partition")
        declared = self._partitions[0].num_shards
        if [p.shard_id for p in self._partitions] != list(range(declared)):
            raise AnalysisError(
                f"partitions do not form a complete set of {declared} shards"
            )
        self._owner: dict[int, int] = {}
        for partition in self._partitions:
            for node_id in partition.core_ids:
                if node_id in self._owner:
                    raise AnalysisError(
                        f"node {node_id} is core in shards "
                        f"{self._owner[node_id]} and {partition.shard_id}"
                    )
                self._owner[node_id] = partition.shard_id
        self._num_articles = sum(len(p.core_articles) for p in self._partitions)
        self._num_categories = sum(len(p.core_categories) for p in self._partitions)
        self._num_edges = sum(p.num_owned_edges for p in self._partitions)

    # ------------------------------------------------------------------
    # Shard topology
    # ------------------------------------------------------------------

    @property
    def partitions(self) -> tuple[GraphPartition, ...]:
        return tuple(self._partitions)

    @property
    def num_shards(self) -> int:
        return len(self._partitions)

    def owner_shard(self, node_id: int) -> int:
        """Shard id owning ``node_id`` (raises on unknown nodes)."""
        try:
            return self._owner[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def _home(self, node_id: int) -> WikiGraph | None:
        shard = self._owner.get(node_id)
        return None if shard is None else self._partitions[shard].graph

    # ------------------------------------------------------------------
    # Sizes and membership (WikiGraph API)
    # ------------------------------------------------------------------

    @property
    def num_articles(self) -> int:
        return self._num_articles

    @property
    def num_main_articles(self) -> int:
        return sum(
            1 for p in self._partitions for a in p.core_articles
            if not p.graph.article(a).is_redirect
        )

    @property
    def num_categories(self) -> int:
        return self._num_categories

    @property
    def num_nodes(self) -> int:
        return self._num_articles + self._num_categories

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._owner

    def __len__(self) -> int:
        return self.num_nodes

    # ------------------------------------------------------------------
    # Node accessors
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Article | Category:
        home = self._home(node_id)
        if home is None:
            raise UnknownNodeError(node_id)
        return home.node(node_id)

    def article(self, node_id: int) -> Article:
        home = self._home(node_id)
        if home is None:
            raise UnknownNodeError(node_id)
        return home.article(node_id)

    def category(self, node_id: int) -> Category:
        home = self._home(node_id)
        if home is None:
            raise UnknownNodeError(node_id)
        return home.category(node_id)

    def kind(self, node_id: int):
        return self.node(node_id).kind

    def is_article(self, node_id: int) -> bool:
        home = self._home(node_id)
        return home is not None and home.is_article(node_id)

    def is_category(self, node_id: int) -> bool:
        home = self._home(node_id)
        return home is not None and home.is_category(node_id)

    def title(self, node_id: int) -> str:
        return self.node(node_id).title

    def articles(self) -> Iterator[Article]:
        for partition in self._partitions:
            for node_id in sorted(partition.core_articles):
                yield partition.graph.article(node_id)

    def main_articles(self) -> Iterator[Article]:
        return (a for a in self.articles() if not a.is_redirect)

    def categories(self) -> Iterator[Category]:
        for partition in self._partitions:
            for node_id in sorted(partition.core_categories):
                yield partition.graph.category(node_id)

    def node_ids(self) -> Iterator[int]:
        for partition in self._partitions:
            yield from sorted(partition.core_articles)
        for partition in self._partitions:
            yield from sorted(partition.core_categories)

    # ------------------------------------------------------------------
    # Title lookup
    # ------------------------------------------------------------------

    def article_by_title(self, title: str) -> Article | None:
        for partition in self._partitions:
            found = partition.graph.article_by_title(title)
            if found is not None:
                return found
        return None

    def category_by_name(self, name: str) -> Category | None:
        for partition in self._partitions:
            found = partition.graph.category_by_name(name)
            if found is not None:
                return found
        return None

    def titles(self) -> Iterator[str]:
        return (article.norm_title for article in self.articles())

    # ------------------------------------------------------------------
    # Typed adjacency — exact, answered by the owning shard
    # ------------------------------------------------------------------

    def links_from(self, article_id: int) -> frozenset[int]:
        home = self._home(article_id)
        return frozenset() if home is None else home.links_from(article_id)

    def links_to(self, article_id: int) -> frozenset[int]:
        home = self._home(article_id)
        return frozenset() if home is None else home.links_to(article_id)

    def categories_of(self, article_id: int) -> frozenset[int]:
        home = self._home(article_id)
        return frozenset() if home is None else home.categories_of(article_id)

    def members_of(self, category_id: int) -> frozenset[int]:
        home = self._home(category_id)
        return frozenset() if home is None else home.members_of(category_id)

    def parents_of(self, category_id: int) -> frozenset[int]:
        home = self._home(category_id)
        return frozenset() if home is None else home.parents_of(category_id)

    def children_of(self, category_id: int) -> frozenset[int]:
        home = self._home(category_id)
        return frozenset() if home is None else home.children_of(category_id)

    def redirect_target(self, article_id: int) -> int | None:
        home = self._home(article_id)
        return None if home is None else home.redirect_target(article_id)

    def redirects_of(self, article_id: int) -> frozenset[int]:
        home = self._home(article_id)
        return frozenset() if home is None else home.redirects_of(article_id)

    def resolve(self, article_id: int) -> int:
        # Redirect chains are co-located with their resolved target, so the
        # owning shard can follow the whole chain locally.
        home = self._home(article_id)
        return article_id if home is None else home.resolve(article_id)

    def undirected_neighbors(self, node_id: int) -> set[int]:
        home = self._home(node_id)
        return set() if home is None else home.undirected_neighbors(node_id)

    def degree(self, node_id: int) -> int:
        return len(self.undirected_neighbors(node_id))

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.undirected_neighbors(u)

    def edges(self) -> Iterator[Edge]:
        for partition in self._partitions:
            yield from partition.owned_edges()

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------

    def induced_subgraph(self, node_ids: Iterable[int]) -> WikiGraph:
        """Induced subgraph assembled from the owning shards only.

        Unlike :meth:`WikiGraph.induced_subgraph` this never scans the
        global edge list — it gathers the kept nodes' incident edges from
        their shards (the semijoin locality the partitioning exists for)
        and filters them to the kept set.
        """
        keep = set(node_ids)
        articles: dict[int, Article] = {}
        categories: dict[int, Category] = {}
        edges: set[Edge] = set()
        for node_id in keep:
            shard = self._owner.get(node_id)
            if shard is None:
                raise UnknownNodeError(node_id)
            home = self._partitions[shard].graph
            if home.is_article(node_id):
                articles[node_id] = home.article(node_id)
            else:
                categories[node_id] = home.category(node_id)
            for target in home.links_from(node_id):
                if target in keep:
                    edges.add(Edge(node_id, target, EdgeKind.LINK))
            for source in home.links_to(node_id):
                if source in keep:
                    edges.add(Edge(source, node_id, EdgeKind.LINK))
            for category in home.categories_of(node_id):
                if category in keep:
                    edges.add(Edge(node_id, category, EdgeKind.BELONGS))
            for member in home.members_of(node_id):
                if member in keep:
                    edges.add(Edge(member, node_id, EdgeKind.BELONGS))
            for parent in home.parents_of(node_id):
                if parent in keep:
                    edges.add(Edge(node_id, parent, EdgeKind.INSIDE))
            for child in home.children_of(node_id):
                if child in keep:
                    edges.add(Edge(child, node_id, EdgeKind.INSIDE))
            target = home.redirect_target(node_id)
            if target is not None and target in keep:
                edges.add(Edge(node_id, target, EdgeKind.REDIRECT))
            for redirect in home.redirects_of(node_id):
                if redirect in keep:
                    edges.add(Edge(redirect, node_id, EdgeKind.REDIRECT))
        return WikiGraph(articles, categories, sorted(
            edges, key=lambda e: (e.kind.value, e.source, e.target)
        ))

    def __repr__(self) -> str:
        return (
            f"PartitionedGraphView(shards={self.num_shards}, "
            f"articles={self.num_articles}, categories={self.num_categories}, "
            f"edges={self.num_edges})"
        )
