"""Shortest-path utilities over the undirected (redirect-free) view.

Section 3 observes that expansion features sit "up to distance three from
query articles" in the query graph of query #90.  These helpers measure
exactly that: BFS distances from a set of sources, per-node distance maps
and distance histograms.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.errors import UnknownNodeError
from repro.wiki.graph import WikiGraph

__all__ = ["bfs_distances", "distance_histogram", "eccentricity"]


def bfs_distances(
    graph: WikiGraph, sources: Iterable[int], *, max_distance: int | None = None
) -> dict[int, int]:
    """Hop distance from the nearest source to every reachable node.

    Sources themselves get distance 0.  ``max_distance`` truncates the
    search (nodes farther away are simply absent from the result).
    """
    frontier: deque[tuple[int, int]] = deque()
    distances: dict[int, int] = {}
    for source in sources:
        if source not in graph:
            raise UnknownNodeError(source)
        if source not in distances:
            distances[source] = 0
            frontier.append((source, 0))
    while frontier:
        node, distance = frontier.popleft()
        if max_distance is not None and distance >= max_distance:
            continue
        for neighbor in graph.undirected_neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distance + 1
                frontier.append((neighbor, distance + 1))
    return distances


def distance_histogram(
    graph: WikiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    *,
    unreachable_key: int = -1,
) -> dict[int, int]:
    """Histogram of the distance from ``sources`` to each target.

    Unreachable targets are counted under ``unreachable_key``.  This is
    the paper's "expansion features up to distance three" measurement:
    pass ``L(q.k)`` as sources and the expansion set as targets.
    """
    distances = bfs_distances(graph, sources)
    histogram: dict[int, int] = {}
    for target in targets:
        if target not in graph:
            raise UnknownNodeError(target)
        key = distances.get(target, unreachable_key)
        histogram[key] = histogram.get(key, 0) + 1
    return dict(sorted(histogram.items()))


def eccentricity(graph: WikiGraph, node: int) -> int:
    """Largest hop distance from ``node`` to any node reachable from it.

    Returns 0 for isolated nodes.
    """
    distances = bfs_distances(graph, [node])
    return max(distances.values(), default=0)
