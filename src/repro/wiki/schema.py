"""Typed entities of the Wikipedia schema used by the paper (Figure 1).

The paper models Wikipedia with two entry types and three relation types:

* **Article** — describes a single topic; has a *title* that identifies an
  entity.  Articles ``link`` to other articles and must ``belong`` to at
  least one category.
* **Category** — groups articles; categories nest ``inside`` one or more
  more general categories, forming a tree-like hierarchy.
* **redirect** — a special article-to-article relation connecting a less
  common title (the *redirect article*) to the *main article* with the most
  common title.

This module defines immutable node records and the edge-kind vocabulary.
The graph container lives in :mod:`repro.wiki.graph`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

__all__ = [
    "NodeKind",
    "EdgeKind",
    "Article",
    "Category",
    "normalize_title",
]

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_title(title: str) -> str:
    """Return the canonical form of an article or category title.

    Wikipedia titles are case-insensitive in their first letter and treat
    underscores as spaces; for matching purposes we go further and
    lower-case the whole title and collapse runs of whitespace, which is
    what the paper's entity-linking step effectively does when matching
    substrings of free text against titles.

    >>> normalize_title("  Grand_Canal   (Venice) ")
    'grand canal (venice)'
    """
    cleaned = title.replace("_", " ").strip()
    cleaned = _WHITESPACE_RE.sub(" ", cleaned)
    return cleaned.lower()


class NodeKind(enum.Enum):
    """Kind of a node in the Wikipedia graph."""

    ARTICLE = "article"
    CATEGORY = "category"

    def __str__(self) -> str:
        return self.value


class EdgeKind(enum.Enum):
    """Kind of an edge in the Wikipedia graph.

    ``LINK``      article -> article   (hyperlink in the article body)
    ``BELONGS``   article -> category  (category membership, 1..*)
    ``INSIDE``    category -> category (sub-category containment, tree-like)
    ``REDIRECT``  article -> article   (redirect article -> main article)
    """

    LINK = "link"
    BELONGS = "belongs"
    INSIDE = "inside"
    REDIRECT = "redirects_to"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Article:
    """A Wikipedia article: a titled entity.

    Parameters
    ----------
    node_id:
        Stable integer id, unique across articles *and* categories.
    title:
        Human-readable title.  Per Wikipedia edition rules the title should
        be recognizable, natural, precise, concise and consistent; the
        entity linker matches query/document substrings against it.
    is_redirect:
        ``True`` when this article merely redirects to a main article (it
        then must have exactly one outgoing ``REDIRECT`` edge and no
        ``LINK``/``BELONGS`` edges of its own in our model).
    """

    node_id: int
    title: str
    is_redirect: bool = False

    @property
    def norm_title(self) -> str:
        """Normalised title used for entity linking (lower-case, squeezed)."""
        return normalize_title(self.title)

    @property
    def kind(self) -> NodeKind:
        return NodeKind.ARTICLE


@dataclass(frozen=True, slots=True)
class Category:
    """A Wikipedia category: a named grouping of articles.

    Categories form a (mostly) tree-like hierarchy through ``INSIDE`` edges.
    """

    node_id: int
    name: str

    @property
    def norm_title(self) -> str:
        """Normalised name, for symmetry with :class:`Article`."""
        return normalize_title(self.name)

    @property
    def title(self) -> str:
        """Alias so articles and categories can be displayed uniformly."""
        return self.name

    @property
    def kind(self) -> NodeKind:
        return NodeKind.CATEGORY


@dataclass(frozen=True, slots=True)
class Edge:
    """A typed, directed edge between two node ids."""

    source: int
    target: int
    kind: EdgeKind = field(default=EdgeKind.LINK)

    def reversed(self) -> "Edge":
        """Return the same edge with endpoints swapped (kind unchanged)."""
        return Edge(self.target, self.source, self.kind)


# Edge kinds whose endpoints the schema constrains, used by the builder for
# validation: (source kind, target kind).
EDGE_ENDPOINT_KINDS: dict[EdgeKind, tuple[NodeKind, NodeKind]] = {
    EdgeKind.LINK: (NodeKind.ARTICLE, NodeKind.ARTICLE),
    EdgeKind.BELONGS: (NodeKind.ARTICLE, NodeKind.CATEGORY),
    EdgeKind.INSIDE: (NodeKind.CATEGORY, NodeKind.CATEGORY),
    EdgeKind.REDIRECT: (NodeKind.ARTICLE, NodeKind.ARTICLE),
}
