"""Structural statistics of Wikipedia graphs used throughout Section 3.

The paper reports three kinds of structural numbers:

* **triangle participation ratio (TPR)** — fraction of nodes of a graph that
  belong to at least one triangle (borrowed from community detection, [7]);
* the fraction of *linked article pairs* that are reciprocal, i.e. form a
  **cycle of length 2** (the paper measures 11.47 % on Wikipedia);
* degree / composition statistics of query graphs (Table 3 relies on the
  component-level helpers here).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx

from repro.wiki.graph import WikiGraph

__all__ = [
    "triangle_participation_ratio",
    "reciprocal_link_ratio",
    "largest_connected_component",
    "connected_components",
    "GraphComposition",
    "composition",
    "category_tree_violations",
]


def triangle_participation_ratio(graph: nx.Graph) -> float:
    """Fraction of nodes that are part of at least one triangle.

    Accepts an *undirected* networkx graph (use
    :meth:`WikiGraph.to_networkx`).  Returns 0.0 for the empty graph.
    """
    if graph.number_of_nodes() == 0:
        return 0.0
    triangle_counts = nx.triangles(graph)
    in_triangle = sum(1 for count in triangle_counts.values() if count > 0)
    return in_triangle / graph.number_of_nodes()


def reciprocal_link_ratio(graph: WikiGraph) -> float:
    """Fraction of connected (unordered) article pairs that link both ways.

    This is the paper's "among all pairs of articles that are connected,
    11.47 % form a cycle of length 2".  Only LINK edges are considered;
    returns 0.0 when no article pair is linked.
    """
    linked_pairs = 0
    reciprocal_pairs = 0
    for article in graph.articles():
        u = article.node_id
        for v in graph.links_from(u):
            if u < v:  # count each unordered pair once, from its lower id
                linked_pairs += 1
                if u in graph.links_from(v):
                    reciprocal_pairs += 1
            elif u > v and u not in graph.links_from(v):
                # pair (v, u) exists only through this direction; count it
                # from here since the u < v pass over v never sees it
                linked_pairs += 1
    if linked_pairs == 0:
        return 0.0
    return reciprocal_pairs / linked_pairs


def connected_components(graph: WikiGraph) -> list[set[int]]:
    """Connected components of the undirected (redirect-free) view,
    largest first; ties broken by smallest member id for determinism."""
    nx_graph = graph.to_networkx()
    components = [set(c) for c in nx.connected_components(nx_graph)]
    components.sort(key=lambda c: (-len(c), min(c)))
    return components


def largest_connected_component(graph: WikiGraph) -> set[int]:
    """Node ids of the largest connected component (empty set if no nodes)."""
    components = connected_components(graph)
    return components[0] if components else set()


@dataclass(frozen=True, slots=True)
class GraphComposition:
    """Node-type composition of a node set within a graph."""

    num_nodes: int
    num_articles: int
    num_categories: int

    @property
    def article_ratio(self) -> float:
        """Fraction of nodes that are articles (0.0 on the empty set)."""
        return self.num_articles / self.num_nodes if self.num_nodes else 0.0

    @property
    def category_ratio(self) -> float:
        """Fraction of nodes that are categories (0.0 on the empty set)."""
        return self.num_categories / self.num_nodes if self.num_nodes else 0.0


def composition(graph: WikiGraph, node_ids: Iterable[int]) -> GraphComposition:
    """Count articles vs categories among ``node_ids``."""
    num_articles = 0
    num_categories = 0
    for node_id in node_ids:
        if graph.is_article(node_id):
            num_articles += 1
        else:
            graph.category(node_id)  # raises UnknownNodeError when absent
            num_categories += 1
    return GraphComposition(
        num_nodes=num_articles + num_categories,
        num_articles=num_articles,
        num_categories=num_categories,
    )


def category_tree_violations(graph: WikiGraph) -> int:
    """Number of categories with more than one parent.

    The paper notes the category graph is *tree-like*; this measures how far
    a given graph deviates (0 means a strict forest).
    """
    return sum(1 for c in graph.categories() if len(graph.parents_of(c.node_id)) > 1)
