"""Deterministic synthetic Wikipedia generator.

Offline substitute for the English Wikipedia dump (see DESIGN.md §2).  The
generator produces *topic domains*: clusters of articles about one subject
(a place plus a craft/topic), grouped under a small category subtree, with
link structure planted so the paper's observations can be exercised:

* **seed articles** play the role of query entities (``L(q.k)``);
* **strong articles** form reciprocal links (2-cycles) and triangles with
  seeds — these are the scarce high-value expansion features the paper finds
  behind dense short cycles;
* **mid articles** connect to seeds through shared categories and one-way
  links, forming cycles of length 3–4 with ~30 % categories;
* **weak articles** hang off the category tree and longer link paths,
  forming mostly length-4/5 cycles — the "widen the search space" features;
* **distractor articles** close *category-free* cycles with the seeds (the
  paper's sheep → quarantine → anthrax example, Figure 8): structurally
  close yet semantically misleading, so using them as expansion features
  hurts retrieval (the synthetic collection plants their titles in
  irrelevant documents);
* a **background** region of articles/categories provides the rest of the
  encyclopedia; its reciprocal-link probability is calibrated so the global
  fraction of linked article pairs that form 2-cycles lands near the 11.47 %
  the paper measures on the real Wikipedia.

Everything is driven by one integer seed; the same config yields an
identical graph byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import BenchmarkConfigError
from repro.wiki.builder import WikiGraphBuilder
from repro.wiki.graph import WikiGraph
from repro.wiki.names import TitleFactory

__all__ = ["SyntheticWikiConfig", "DomainSpec", "SyntheticWiki", "generate_wiki"]


@dataclass(frozen=True, slots=True)
class SyntheticWikiConfig:
    """Parameters of the synthetic Wikipedia.

    Defaults produce a graph of roughly 2,500 articles and 450 categories in
    well under a second — large enough for every experiment, small enough
    for CI.
    """

    seed: int = 7
    num_domains: int = 50
    seeds_per_domain: tuple[int, int] = (1, 3)
    strong_per_domain: tuple[int, int] = (1, 2)
    mid_per_domain: tuple[int, int] = (6, 10)
    weak_per_domain: tuple[int, int] = (8, 14)
    distractors_per_domain: tuple[int, int] = (2, 4)
    leaf_categories_per_domain: tuple[int, int] = (3, 5)
    background_articles: int = 800
    background_categories: int = 60
    background_links_per_article: tuple[int, int] = (1, 4)
    background_reciprocal_prob: float = 0.10
    extra_intra_link_prob: float = 0.06
    cross_domain_link_prob: float = 0.06
    redirect_prob: float = 0.30

    def validate(self) -> None:
        """Raise :class:`BenchmarkConfigError` on out-of-range parameters."""
        if self.num_domains < 1:
            raise BenchmarkConfigError("num_domains must be >= 1")
        if self.background_articles < 0 or self.background_categories < 1:
            raise BenchmarkConfigError(
                "background_articles must be >= 0 and background_categories >= 1"
            )
        for name in (
            "seeds_per_domain",
            "strong_per_domain",
            "mid_per_domain",
            "weak_per_domain",
            "distractors_per_domain",
            "leaf_categories_per_domain",
            "background_links_per_article",
        ):
            low, high = getattr(self, name)
            if low < 0 or high < low:
                raise BenchmarkConfigError(f"{name} must be (low, high) with 0 <= low <= high")
        low, high = self.seeds_per_domain
        if low < 1:
            raise BenchmarkConfigError("each domain needs at least one seed article")
        for name in (
            "background_reciprocal_prob",
            "extra_intra_link_prob",
            "cross_domain_link_prob",
            "redirect_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise BenchmarkConfigError(f"{name} must be a probability, got {value}")


@dataclass(slots=True)
class DomainSpec:
    """One topic domain and the roles of its articles.

    The role lists hold node ids in the generated graph.  The synthetic
    collection generator uses the tiers to decide which titles occur in
    relevant documents (strong > mid > weak) and which occur in misleading
    ones (distractors).
    """

    domain_id: int
    place: str
    topic: str
    seed_articles: list[int] = field(default_factory=list)
    strong_articles: list[int] = field(default_factory=list)
    mid_articles: list[int] = field(default_factory=list)
    weak_articles: list[int] = field(default_factory=list)
    distractor_articles: list[int] = field(default_factory=list)
    categories: list[int] = field(default_factory=list)
    redirect_articles: list[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Readable domain label, e.g. ``'castellmar glassmaking'``."""
        return f"{self.place} {self.topic}"

    @property
    def expansion_articles(self) -> list[int]:
        """Non-seed, non-distractor domain articles (candidate expansions),
        ordered strongest first."""
        return [*self.strong_articles, *self.mid_articles, *self.weak_articles]

    def all_articles(self) -> list[int]:
        """Every article the domain owns, including distractors."""
        return [
            *self.seed_articles,
            *self.strong_articles,
            *self.mid_articles,
            *self.weak_articles,
            *self.distractor_articles,
        ]


@dataclass(slots=True)
class SyntheticWiki:
    """A generated Wikipedia: the graph plus the planted domain structure."""

    graph: WikiGraph
    domains: list[DomainSpec]
    config: SyntheticWikiConfig
    background_articles: list[int] = field(default_factory=list)

    def domain(self, domain_id: int) -> DomainSpec:
        """Domain by id (domains are numbered 0..num_domains-1)."""
        return self.domains[domain_id]


def _rand_count(rng: random.Random, bounds: tuple[int, int]) -> int:
    low, high = bounds
    return rng.randint(low, high)


def _build_domain(
    builder: WikiGraphBuilder,
    titles: TitleFactory,
    rng: random.Random,
    config: SyntheticWikiConfig,
    domain_id: int,
    top_category: int,
) -> DomainSpec:
    """Create one topic domain: articles, category subtree, planted cycles."""
    place = titles.place_name()
    topic = titles.domain_topic()
    spec = DomainSpec(domain_id=domain_id, place=place, topic=topic)
    anchor = rng.choice([place, topic])

    # Category subtree: a root category inside the global top category, with
    # a few leaves.  Tree-like, as the paper requires.
    root_cat = builder.add_category(titles.category_name(spec.name))
    builder.add_inside(root_cat, top_category)
    leaves = []
    for _ in range(_rand_count(rng, config.leaf_categories_per_domain)):
        leaf = builder.add_category(titles.category_name(anchor))
        builder.add_inside(leaf, root_cat)
        leaves.append(leaf)
    spec.categories = [root_cat, *leaves]

    def new_article(tier: list[int]) -> int:
        node = builder.add_article(titles.entity_title(anchor))
        tier.append(node)
        return node

    for _ in range(_rand_count(rng, config.seeds_per_domain)):
        new_article(spec.seed_articles)
    for _ in range(_rand_count(rng, config.strong_per_domain)):
        new_article(spec.strong_articles)
    for _ in range(_rand_count(rng, config.mid_per_domain)):
        new_article(spec.mid_articles)
    for _ in range(_rand_count(rng, config.weak_per_domain)):
        new_article(spec.weak_articles)

    # Category memberships.  Seeds and strong articles share the root
    # category (this closes many short cycles through a category); mid
    # articles join leaf categories shared with a seed; weak articles join
    # leaf categories only.
    home_leaf = leaves[0] if leaves else root_cat
    for node in spec.seed_articles:
        builder.add_belongs(node, root_cat)
        if leaves and rng.random() < 0.8:
            builder.add_belongs(node, home_leaf)
    for node in spec.strong_articles:
        # Half the strong articles share the root category with the seeds
        # (closing dense article-article-category triangles); the rest sit
        # in leaves only, so their 2-cycles stay chord-free.
        if not leaves or rng.random() < 0.2:
            builder.add_belongs(node, root_cat)
        else:
            builder.add_belongs(node, rng.choice(leaves))
    for node in spec.mid_articles:
        # Mid articles gravitate to the seeds' home leaf: a one-way link
        # plus the shared leaf closes the paper's common, chord-free
        # article-article-category triangle (density ~0).
        if leaves and rng.random() < 0.45:
            builder.add_belongs(node, home_leaf)
        else:
            builder.add_belongs(node, rng.choice(leaves) if leaves else root_cat)
        if rng.random() < 0.2:
            builder.add_belongs(node, root_cat)
    for node in spec.weak_articles:
        builder.add_belongs(node, rng.choice(leaves) if leaves else root_cat)

    # Links.  seed <-> strong reciprocal pairs close 2-cycles; with the
    # shared root category they also close triangles, making these the
    # dense, category-bearing short cycles the paper singles out.
    for node in spec.strong_articles:
        seed = rng.choice(spec.seed_articles)
        builder.add_link(seed, node)
        builder.add_link(node, seed)
    # strong <-> strong occasional reciprocal links (extra density).
    for i, u in enumerate(spec.strong_articles):
        for v in spec.strong_articles[i + 1 :]:
            if rng.random() < 0.3:
                builder.add_link(u, v)
                if rng.random() < 0.4:
                    builder.add_link(v, u)

    # Mid articles: one-way link from a seed or a strong article; their
    # shared leaf category with other domain members yields 3/4-cycles.
    sources = [*spec.seed_articles, *spec.strong_articles]
    for node in spec.mid_articles:
        # Mostly seed-sourced: keeps the strong articles out of the longer
        # cycles, which the mids and weaks populate.
        origin = (
            rng.choice(spec.seed_articles)
            if rng.random() < 0.8
            else rng.choice(sources)
        )
        builder.add_link(origin, node)
        if rng.random() < 0.5:
            builder.add_link(node, rng.choice(spec.seed_articles))
    # Mid articles interlink moderately: chords for the length-4 cycles
    # they participate in (Figure 7b reports length 4 as the densest).
    for i, u in enumerate(spec.mid_articles):
        for v in spec.mid_articles[i + 1 :]:
            if rng.random() < 0.22:
                builder.add_link(u, v)

    # Weak articles: links among themselves and occasionally to mid
    # articles, never directly to seeds — they reach seeds only through
    # categories or longer paths (length-4/5 cycles).
    mids = spec.mid_articles or sources
    for node in spec.weak_articles:
        builder.add_link(node, rng.choice(mids))
        if len(spec.weak_articles) > 1 and rng.random() < 0.4:
            other = rng.choice([w for w in spec.weak_articles if w != node])
            builder.add_link(node, other)

    # Extra intra-domain links create the density-of-extra-edges variance
    # that Figures 7b and 9 measure.
    members = [*sources, *spec.mid_articles, *spec.weak_articles]
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if rng.random() < config.extra_intra_link_prob:
                builder.add_link(u, v)

    # Redirect aliases for some seeds and strong articles.
    for node in sources:
        if rng.random() < config.redirect_prob:
            alias_title = titles.redirect_alias(builder.title_of(node))
            alias = builder.add_article(alias_title, is_redirect=True)
            builder.add_redirect(alias, node)
            spec.redirect_articles.append(alias)

    return spec


def _add_general_categories(
    builder: WikiGraphBuilder,
    rng: random.Random,
    spec: DomainSpec,
    background_cats: list[int],
) -> None:
    """Give domain articles extra general-purpose category memberships.

    Real Wikipedia articles belong to several categories (locations, eras,
    licence buckets, ...), which is why the paper's query graphs are
    dominated by categories (Table 3: ~78 % of LCC nodes).  Most of these
    extra categories are unique within a query graph, so they join as
    degree-1 satellites that inflate the category share without adding
    cycles; occasional collisions add realistic category-closed cycles.
    """
    if not background_cats:
        return
    for node in [*spec.seed_articles, *spec.strong_articles,
                 *spec.mid_articles, *spec.weak_articles]:
        if rng.random() < 0.85:
            builder.add_belongs(node, rng.choice(background_cats))
        if rng.random() < 0.35:
            builder.add_belongs(node, rng.choice(background_cats))


def _plant_distractors(
    builder: WikiGraphBuilder,
    titles: TitleFactory,
    rng: random.Random,
    config: SyntheticWikiConfig,
    spec: DomainSpec,
    background_cats: list[int],
) -> None:
    """Close category-free cycles between a seed and off-topic articles.

    Mirrors Figure 8 (sheep – quarantine – anthrax): a short article-only
    cycle that *looks* structurally tight but crosses topics.  Distractor
    articles belong only to background categories, so the cycles they close
    with the seed contain no domain category.
    """
    for _ in range(_rand_count(rng, config.distractors_per_domain)):
        seed = rng.choice(spec.seed_articles)
        first = builder.add_article(titles.background_title())
        second = builder.add_article(titles.background_title())
        builder.add_belongs(first, rng.choice(background_cats))
        builder.add_belongs(second, rng.choice(background_cats))
        # seed -> first -> second -> seed : a category-free 3-cycle.
        builder.add_link(seed, first)
        builder.add_link(first, second)
        builder.add_link(second, seed)
        spec.distractor_articles.extend([first, second])


def _build_background(
    builder: WikiGraphBuilder,
    titles: TitleFactory,
    rng: random.Random,
    config: SyntheticWikiConfig,
    top_category: int,
) -> tuple[list[int], list[int]]:
    """Create the encyclopedia background: categories then sparse articles."""
    cats: list[int] = []
    for _ in range(config.background_categories):
        cat = builder.add_category(titles.category_name(titles.background_title()))
        builder.add_inside(cat, top_category)
        cats.append(cat)

    articles: list[int] = []
    for _ in range(config.background_articles):
        node = builder.add_article(titles.background_title())
        builder.add_belongs(node, rng.choice(cats))
        articles.append(node)

    # Sparse random links; reciprocal with calibrated probability so the
    # global 2-cycle pair ratio approaches the paper's 11.47 %.
    for node in articles:
        if len(articles) < 2:
            break
        for _ in range(_rand_count(rng, config.background_links_per_article)):
            target = rng.choice(articles)
            if target == node:
                continue
            builder.add_link(node, target)
            if rng.random() < config.background_reciprocal_prob:
                builder.add_link(target, node)
    return articles, cats


def generate_wiki(config: SyntheticWikiConfig | None = None) -> SyntheticWiki:
    """Generate a synthetic Wikipedia from ``config`` (defaults when None).

    Returns a :class:`SyntheticWiki` whose ``graph`` satisfies the schema
    (every non-redirect article categorised, tree-like categories) and whose
    ``domains`` expose the planted roles used by the collection generator
    and by calibration tests.
    """
    config = config or SyntheticWikiConfig()
    config.validate()
    rng = random.Random(config.seed)
    titles = TitleFactory(rng)
    builder = WikiGraphBuilder()

    top_category = builder.add_category("main topic classifications")

    background_articles, background_cats = _build_background(
        builder, titles, rng, config, top_category
    )

    domains: list[DomainSpec] = []
    for domain_id in range(config.num_domains):
        spec = _build_domain(builder, titles, rng, config, domain_id, top_category)
        _add_general_categories(builder, rng, spec, background_cats)
        _plant_distractors(builder, titles, rng, config, spec, background_cats)
        domains.append(spec)

    # Light cross-domain noise: a few one-way links between consecutive
    # domains' weak articles, so query graphs are not perfectly clean.
    for left, right in zip(domains, domains[1:]):
        if not left.weak_articles or not right.weak_articles:
            continue
        if rng.random() < config.cross_domain_link_prob * 4:
            builder.add_link(rng.choice(left.weak_articles), rng.choice(right.weak_articles))

    # Links from domain articles into the background (outgoing noise).
    if background_articles:
        for spec in domains:
            for node in spec.expansion_articles:
                if rng.random() < config.cross_domain_link_prob:
                    builder.add_link(node, rng.choice(background_articles))

    graph = builder.build()
    return SyntheticWiki(
        graph=graph,
        domains=domains,
        config=config,
        background_articles=background_articles,
    )
