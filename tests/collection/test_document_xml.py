"""Unit tests for the ImageCLEF document model and XML IO."""

import pytest

from repro.errors import DumpFormatError
from repro.collection import (
    Caption,
    ImageDocument,
    TextSection,
    document_from_string,
    document_to_string,
    read_documents,
    write_documents,
)


@pytest.fixture
def field_doc():
    """A document modelled on the paper's Figure 2 example (image 82531)."""
    return ImageDocument(
        doc_id="82531",
        file="images/9/82531.jpg",
        name="Field Hamois Belgium Luc Viatour.jpg",
        sections=(
            TextSection(
                lang="en",
                description=(
                    "Summer field in Belgium (Hamois). The blue flower is "
                    "Centaurea cyanus and the red one a Papaver rhoeas."
                ),
                comment="",
                captions=(
                    Caption("Summer field in Belgium (Hamois).", "text/en/1/302887"),
                    Caption("A field in summer.", "text/en/1/303807"),
                ),
            ),
            TextSection(
                lang="de",
                description="Ein bluehendes Feld in Belgien.",
                captions=(Caption("Ein Feld im Sommer", "text/de/1/404730"),),
            ),
            TextSection(
                lang="fr",
                description="Un champ en ete en Belgique (Hamois).",
            ),
        ),
        comment=(
            "({{Information |Description= Flowers in Belgium |Source= Flickr "
            "|Date= 1/1/85 |Author= JA |Permission= GFDL |other_versions= }})"
        ),
        license="GFDL",
    )


class TestExtractionRule:
    def test_name_without_extension(self, field_doc):
        assert field_doc.name_without_extension == "Field Hamois Belgium Luc Viatour"

    def test_name_without_extension_no_dot(self):
        doc = ImageDocument(doc_id="1", name="plainname")
        assert doc.name_without_extension == "plainname"

    def test_long_suffix_not_treated_as_extension(self):
        doc = ImageDocument(doc_id="1", name="sunset over st.petersburg")
        assert doc.name_without_extension == "sunset over st.petersburg"

    def test_general_description_from_template(self, field_doc):
        assert field_doc.general_description == "Flowers in Belgium"

    def test_general_description_absent(self):
        doc = ImageDocument(doc_id="1", comment="free text, no template")
        assert doc.general_description == ""

    def test_extraction_combines_three_items(self, field_doc):
        text = field_doc.extraction_text()
        assert "Field Hamois Belgium Luc Viatour" in text  # 1: name
        assert "Centaurea cyanus" in text  # 2: English section
        assert "A field in summer." in text  # 2: English captions
        assert "Flowers in Belgium" in text  # 3: general description

    def test_extraction_excludes_foreign_sections(self, field_doc):
        text = field_doc.extraction_text()
        assert "bluehendes" not in text
        assert "champ en ete" not in text

    def test_extraction_other_language_selectable(self, field_doc):
        text = field_doc.extraction_text(lang="de")
        assert "bluehendes" in text
        assert "Centaurea" not in text

    def test_section_lookup(self, field_doc):
        assert field_doc.section("fr").lang == "fr"
        assert field_doc.section("it") is None

    def test_combined_text_skips_empty_fields(self):
        section = TextSection(lang="en", description="", comment="  ",
                              captions=(Caption("cap"),))
        assert section.combined_text() == "cap"

    def test_str(self, field_doc):
        assert "82531" in str(field_doc)


class TestXmlRoundTrip:
    def test_single_document_round_trip(self, field_doc):
        text = document_to_string(field_doc)
        assert document_from_string(text) == field_doc

    def test_xml_shape_matches_figure_2(self, field_doc):
        text = document_to_string(field_doc)
        assert text.startswith('<image id="82531" file="images/9/82531.jpg">')
        assert '<caption article="text/en/1/302887">' in text
        assert "<license>GFDL</license>" in text

    def test_bundle_round_trip(self, field_doc, tmp_path):
        other = ImageDocument(doc_id="2", name="two.jpg")
        path = tmp_path / "images.xml"
        count = write_documents([field_doc, other], path)
        assert count == 2
        loaded = list(read_documents(path))
        assert loaded == [field_doc, other]

    def test_invalid_xml_string(self):
        with pytest.raises(DumpFormatError, match="invalid XML"):
            document_from_string("<image")

    def test_wrong_root_element(self):
        with pytest.raises(DumpFormatError, match="expected <image>"):
            document_from_string("<picture id='1'/>")

    def test_missing_id(self):
        with pytest.raises(DumpFormatError, match="missing its id"):
            document_from_string("<image file='x.jpg'/>")

    def test_bundle_wrong_root(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<imgs/>")
        with pytest.raises(DumpFormatError, match="expected <images>"):
            list(read_documents(path))

    def test_bundle_invalid_xml(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("not xml at all")
        with pytest.raises(DumpFormatError):
            list(read_documents(path))

    def test_lang_attribute_round_trips(self, field_doc, tmp_path):
        path = tmp_path / "images.xml"
        write_documents([field_doc], path)
        loaded = next(iter(read_documents(path)))
        assert [s.lang for s in loaded.sections] == ["en", "de", "fr"]
