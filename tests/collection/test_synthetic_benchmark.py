"""Tests for the synthetic collection generator and the Benchmark bundle."""

import pytest

from repro.errors import BenchmarkConfigError
from repro.collection import (
    Benchmark,
    SyntheticCollectionConfig,
    generate_collection,
)
from repro.linking import EntityLinker
from repro.wiki import SyntheticWikiConfig, generate_wiki

WIKI_CONFIG = SyntheticWikiConfig(seed=21, num_domains=6, background_articles=100,
                                  background_categories=12)
COLL_CONFIG = SyntheticCollectionConfig(seed=22, relevant_per_topic=(6, 10),
                                        background_docs=60)


@pytest.fixture(scope="module")
def wiki():
    return generate_wiki(WIKI_CONFIG)


@pytest.fixture(scope="module")
def collection(wiki):
    return generate_collection(wiki, COLL_CONFIG)


@pytest.fixture(scope="module")
def bench():
    return Benchmark.synthetic(WIKI_CONFIG, COLL_CONFIG)


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticCollectionConfig().validate()

    def test_bad_probability(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticCollectionConfig(strong_boost_prob=2.0).validate()

    def test_zero_relevant_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticCollectionConfig(relevant_per_topic=(0, 5)).validate()

    def test_negative_background_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticCollectionConfig(background_docs=-1).validate()

    def test_inverted_range_rejected(self):
        with pytest.raises(BenchmarkConfigError):
            SyntheticCollectionConfig(traps_per_topic=(4, 2)).validate()


class TestGeneratedCollection:
    def test_one_topic_per_domain(self, wiki, collection):
        assert len(collection.topics) == len(wiki.domains)

    def test_topics_reference_existing_documents(self, collection):
        for topic in collection.topics:
            assert topic.relevant <= set(collection.documents)

    def test_relevant_counts_in_range(self, collection):
        low, high = COLL_CONFIG.relevant_per_topic
        for topic in collection.topics:
            assert low <= topic.num_relevant <= high

    def test_keywords_are_seed_titles(self, wiki, collection):
        graph = wiki.graph
        for domain in wiki.domains:
            topic = collection.topics.by_id(domain.domain_id)
            for seed in domain.seed_articles:
                assert graph.title(seed) in topic.keywords

    def test_determinism(self, wiki):
        first = generate_collection(wiki, COLL_CONFIG)
        second = generate_collection(wiki, COLL_CONFIG)
        assert first.documents == second.documents
        assert first.topics.to_json() == second.topics.to_json()

    def test_extraction_texts_cover_all_documents(self, collection):
        pairs = dict(collection.extraction_texts())
        assert set(pairs) == set(collection.documents)
        assert all(isinstance(text, str) for text in pairs.values())

    def test_relevant_docs_mention_domain_titles(self, wiki, collection):
        """Entity linking on a relevant document finds domain articles."""
        graph = wiki.graph
        linker = EntityLinker(graph, use_synonyms=False)
        domain = wiki.domains[0]
        topic = collection.topics.by_id(domain.domain_id)
        domain_articles = set(domain.all_articles())
        hits = 0
        for doc_id in topic.relevant:
            text = collection.documents[doc_id].extraction_text()
            if linker.link(text).article_ids & domain_articles:
                hits += 1
        assert hits == topic.num_relevant

    def test_some_relevant_docs_omit_seed_titles(self, wiki, collection):
        """Vocabulary mismatch is planted: not every relevant doc contains
        the query keywords."""
        graph = wiki.graph
        mismatches = 0
        for domain in wiki.domains:
            topic = collection.topics.by_id(domain.domain_id)
            seed_titles = [graph.title(a).lower() for a in domain.seed_articles]
            for doc_id in topic.relevant:
                text = collection.documents[doc_id].extraction_text().lower()
                if not any(title in text for title in seed_titles):
                    mismatches += 1
        assert mismatches > 0

    def test_trap_documents_exist_and_are_irrelevant(self, wiki, collection):
        graph = wiki.graph
        all_relevant = set()
        for topic in collection.topics:
            all_relevant |= topic.relevant
        traps = 0
        for domain in wiki.domains:
            distractor_titles = [graph.title(a).lower() for a in domain.distractor_articles]
            if not distractor_titles:
                continue
            for doc_id, document in collection.documents.items():
                text = document.extraction_text().lower()
                if any(title in text for title in distractor_titles):
                    if doc_id not in all_relevant:
                        traps += 1
        assert traps > 0

    def test_foreign_sections_present_but_not_extracted(self, collection):
        multilingual = [
            d for d in collection.documents.values()
            if d.section("de") is not None
        ]
        assert multilingual
        sample = multilingual[0]
        assert sample.section("de").description
        assert sample.section("de").description not in sample.extraction_text()


class TestBenchmarkBundle:
    def test_synthetic_constructor(self, bench):
        assert bench.num_topics == 6
        assert bench.num_documents > 0
        bench.validate()

    def test_engine_build(self, bench):
        engine = bench.build_engine()
        assert engine.num_documents == bench.num_documents

    def test_save_load_round_trip(self, bench, tmp_path):
        directory = tmp_path / "bench"
        bench.save(directory)
        loaded = Benchmark.load(directory)
        assert loaded.num_documents == bench.num_documents
        assert loaded.num_topics == bench.num_topics
        assert loaded.graph.num_articles == bench.graph.num_articles
        loaded.validate()
        assert loaded.wiki is None  # planted structure is not persisted

    def test_loaded_documents_equal(self, bench, tmp_path):
        directory = tmp_path / "bench"
        bench.save(directory)
        loaded = Benchmark.load(directory)
        assert loaded.documents == bench.documents

    def test_load_missing_artifact(self, tmp_path):
        with pytest.raises(BenchmarkConfigError, match="missing"):
            Benchmark.load(tmp_path)

    def test_validate_detects_unknown_relevant_ids(self, bench):
        from repro.collection import Topic

        broken = Benchmark(
            graph=bench.graph,
            documents=bench.documents,
            topics=bench.topics,
        )
        broken.topics = type(bench.topics)()
        broken.topics.add(Topic(topic_id=99, keywords="x", relevant=frozenset({"nope"})))
        with pytest.raises(BenchmarkConfigError, match="unknown documents"):
            broken.validate()

    def test_repr(self, bench):
        assert "Benchmark(" in repr(bench)
