"""Unit tests for topics and topic sets."""

import pytest

from repro.errors import DumpFormatError
from repro.collection import Topic, TopicSet


def make_topic(topic_id=1, keywords="gondola in venice", relevant=("a", "b")):
    return Topic(topic_id=topic_id, keywords=keywords, relevant=frozenset(relevant))


class TestTopic:
    def test_fields(self):
        topic = make_topic()
        assert topic.num_relevant == 2
        assert "gondola" in str(topic)

    def test_empty_keywords_rejected(self):
        with pytest.raises(ValueError, match="empty keywords"):
            Topic(topic_id=1, keywords="   ", relevant=frozenset())

    def test_default_domain_id(self):
        assert make_topic().domain_id == -1


class TestTopicSet:
    def test_add_and_iterate(self):
        topics = TopicSet()
        topics.add(make_topic(1))
        topics.add(make_topic(2))
        assert len(topics) == 2
        assert [t.topic_id for t in topics] == [1, 2]
        assert topics[0].topic_id == 1

    def test_duplicate_id_rejected(self):
        topics = TopicSet()
        topics.add(make_topic(1))
        with pytest.raises(ValueError, match="duplicate topic id"):
            topics.add(make_topic(1))

    def test_by_id(self):
        topics = TopicSet()
        topics.add(make_topic(5))
        assert topics.by_id(5).topic_id == 5
        with pytest.raises(KeyError):
            topics.by_id(6)

    def test_json_round_trip(self):
        topics = TopicSet()
        topics.add(make_topic(1, relevant=("x", "y", "z")))
        topics.add(Topic(topic_id=2, keywords="street art", relevant=frozenset(), domain_id=7))
        loaded = TopicSet.from_json(topics.to_json())
        assert len(loaded) == 2
        assert loaded.by_id(1).relevant == frozenset({"x", "y", "z"})
        assert loaded.by_id(2).domain_id == 7

    def test_file_round_trip(self, tmp_path):
        topics = TopicSet()
        topics.add(make_topic())
        path = tmp_path / "topics.json"
        topics.save(path)
        loaded = TopicSet.load(path)
        assert loaded.by_id(1).keywords == "gondola in venice"

    def test_json_stable_output(self):
        topics = TopicSet()
        topics.add(make_topic(relevant=("b", "a", "c")))
        assert topics.to_json() == topics.to_json()
        assert '"a",' in topics.to_json()  # sorted doc ids

    def test_invalid_json(self):
        with pytest.raises(DumpFormatError, match="invalid topics JSON"):
            TopicSet.from_json("{nope")

    def test_wrong_format(self):
        with pytest.raises(DumpFormatError, match="not a repro-topics"):
            TopicSet.from_json('{"format": "other"}')

    def test_wrong_version(self):
        with pytest.raises(DumpFormatError, match="unsupported topics version"):
            TopicSet.from_json('{"format": "repro-topics", "version": 9}')

    def test_missing_field(self):
        bad = '{"format": "repro-topics", "version": 1, "topics": [{"id": 1}]}'
        with pytest.raises(DumpFormatError, match="missing field"):
            TopicSet.from_json(bad)
