"""Shared fixtures for core tests: a hand-built Venice mini-world.

The fixture graph mirrors the paper's running example (query #90 "gondola
in venice"): a seed article with a reciprocal partner (2-cycle), a
category-closed triangle, a 4-cycle, and a category-free distractor
triangle (Figure 8's sheep/quarantine/anthrax shape).
"""

import pytest

from repro.retrieval import DirichletSmoothing, SearchEngine
from repro.wiki import WikiGraphBuilder


@pytest.fixture
def venice_world():
    """Graph + node map.  Planted cycles (undirected view):

    2-cycle: venice <-> cannaregio
    3-cycle: venice - canal - attractions(cat)         (density 0)
    3-cycle: venice - cannaregio - attractions(cat)    (has 2-cycle chord)
    4-cycle: venice - canal - palazzo - attractions(cat)
    3-cycle (category-free): venice - sheep - anthrax  (distractor)
    """
    builder = WikiGraphBuilder()
    ids = {}
    ids["venice"] = builder.add_article("venice")
    ids["cannaregio"] = builder.add_article("cannaregio")
    ids["canal"] = builder.add_article("grand canal")
    ids["palazzo"] = builder.add_article("palazzo bembo")
    ids["sheep"] = builder.add_article("sheep")
    ids["anthrax"] = builder.add_article("anthrax")
    ids["gondole"] = builder.add_article("gondole", is_redirect=True)
    ids["attractions"] = builder.add_category("visitor attractions in venice")
    ids["farming"] = builder.add_category("farming")

    builder.add_belongs(ids["venice"], ids["attractions"])
    builder.add_belongs(ids["cannaregio"], ids["attractions"])
    builder.add_belongs(ids["canal"], ids["attractions"])
    builder.add_belongs(ids["palazzo"], ids["attractions"])
    builder.add_belongs(ids["sheep"], ids["farming"])
    builder.add_belongs(ids["anthrax"], ids["farming"])

    # 2-cycle venice <-> cannaregio.
    builder.add_link(ids["venice"], ids["cannaregio"])
    builder.add_link(ids["cannaregio"], ids["venice"])
    # Chain venice -> canal -> palazzo (closes cycles via the category).
    builder.add_link(ids["venice"], ids["canal"])
    builder.add_link(ids["canal"], ids["palazzo"])
    # Category-free triangle venice -> sheep -> anthrax -> venice.
    builder.add_link(ids["venice"], ids["sheep"])
    builder.add_link(ids["sheep"], ids["anthrax"])
    builder.add_link(ids["anthrax"], ids["venice"])
    # Redirect satellite.
    builder.add_redirect(ids["gondole"], ids["cannaregio"])

    return builder.build(), ids


@pytest.fixture
def venice_engine():
    """Engine over a tiny collection keyed to the venice_world titles.

    Relevant docs: r1..r4 (r3/r4 omit the seed title — vocabulary
    mismatch).  t1 is a trap mentioning the distractors.
    """
    engine = SearchEngine(smoothing=DirichletSmoothing(mu=10))
    engine.add_documents(
        [
            ("r1", "a gondola ride in venice near the grand canal"),
            ("r2", "venice and cannaregio district in the morning"),
            ("r3", "quiet view of cannaregio with boats"),  # no 'venice'
            ("r4", "palazzo bembo exhibition on the grand canal"),  # no 'venice'
            ("t1", "sheep quarantine during the anthrax outbreak"),
            ("t2", "venice beach california surfing"),  # matches seed, irrelevant
            ("b1", "mountain railway in the alps"),
        ]
    )
    return engine


@pytest.fixture
def relevant_docs():
    return frozenset({"r1", "r2", "r3", "r4"})
