"""Unit tests for the aggregate analysis helpers."""

import pytest

from repro.core import (
    Cycle,
    CycleRecord,
    article_cycle_frequency,
    average_category_ratio_by_length,
    average_contribution_by_length,
    average_count_by_length,
    average_density_by_length,
    binned_density_trend,
    compute_features,
    density_contribution_points,
    five_point_summary,
    frequency_contribution_correlation,
    linear_trend,
)
from repro.errors import AnalysisError


class TestFivePointSummary:
    def test_known_values(self):
        summary = five_point_summary([0, 1, 2, 3, 4])
        assert summary.as_tuple() == (0.0, 1.0, 2.0, 3.0, 4.0)

    def test_single_value(self):
        summary = five_point_summary([7.5])
        assert summary.as_tuple() == (7.5, 7.5, 7.5, 7.5, 7.5)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            five_point_summary([])

    def test_str(self):
        assert "med=" in str(five_point_summary([1, 2, 3]))


@pytest.fixture
def records(venice_world):
    """Records over the venice world's real cycles with synthetic
    contributions chosen so expected aggregates are easy to state."""
    graph, ids = venice_world
    two = compute_features(graph, Cycle((ids["venice"], ids["cannaregio"])))
    tri_sparse = compute_features(
        graph, Cycle((ids["venice"], ids["canal"], ids["attractions"]))
    )
    tri_dense = compute_features(
        graph, Cycle((ids["venice"], ids["cannaregio"], ids["attractions"]))
    )
    four = compute_features(
        graph, Cycle((ids["venice"], ids["canal"], ids["palazzo"], ids["attractions"]))
    )
    return [
        CycleRecord(query_id=0, features=two, contribution=50.0),
        CycleRecord(query_id=0, features=tri_sparse, contribution=10.0),
        CycleRecord(query_id=1, features=tri_dense, contribution=40.0),
        CycleRecord(query_id=1, features=four, contribution=30.0),
    ]


class TestPerLengthAverages:
    def test_contribution(self, records):
        result = average_contribution_by_length(records)
        assert result[2] == 50.0
        assert result[3] == pytest.approx(25.0)
        assert result[4] == 30.0

    def test_counts(self, records):
        result = average_count_by_length(records, num_queries=2)
        assert result == {2: 0.5, 3: 1.0, 4: 0.5}

    def test_counts_validation(self, records):
        with pytest.raises(AnalysisError):
            average_count_by_length(records, num_queries=0)

    def test_category_ratio_excludes_short(self, records):
        result = average_category_ratio_by_length(records)
        assert 2 not in result
        assert result[3] == pytest.approx(1 / 3)
        assert result[4] == pytest.approx(1 / 4)

    def test_density_skips_undefined(self, records):
        result = average_density_by_length(records)
        assert 2 not in result
        assert result[3] == pytest.approx((0.0 + 1.0) / 2)
        assert result[4] == pytest.approx(0.2)

    def test_empty_records(self):
        assert average_contribution_by_length([]) == {}
        assert average_category_ratio_by_length([]) == {}


class TestDensityTrend:
    def test_points_skip_undefined_density(self, records):
        points = density_contribution_points(records)
        # The 2-cycle has undefined density, the rest are defined.
        assert len(points) == 3
        assert (0.0, 10.0) in points
        assert (1.0, 40.0) in points

    def test_binned_trend(self, records):
        points = density_contribution_points(records)
        trend = binned_density_trend(points, num_bins=2)
        # Bin [0, 0.5): densities 0.0 and 0.2 -> mean contribution 20.
        # Bin [0.5, 1.0]: density 1.0 -> contribution 40.
        assert trend == [(0.25, 20.0), (0.75, 40.0)]

    def test_binned_trend_empty(self):
        assert binned_density_trend([], num_bins=3) == []

    def test_binned_trend_validation(self):
        with pytest.raises(AnalysisError):
            binned_density_trend([(0.5, 1.0)], num_bins=0)

    def test_linear_trend_positive(self, records):
        slope, intercept = linear_trend(density_contribution_points(records))
        assert slope > 0

    def test_linear_trend_needs_two_points(self):
        with pytest.raises(AnalysisError):
            linear_trend([(0.5, 1.0)])

    def test_linear_trend_degenerate_x(self):
        with pytest.raises(AnalysisError):
            linear_trend([(0.5, 1.0), (0.5, 2.0)])


class TestArticleFrequency:
    def test_frequency_counts_articles_only(self, venice_world, records):
        graph, ids = venice_world
        frequency = article_cycle_frequency(records, graph)
        assert frequency[ids["venice"]] == 4
        assert frequency[ids["cannaregio"]] == 2
        assert ids["attractions"] not in frequency  # category

    def test_correlation_runs(self, venice_world, records):
        graph, _ = venice_world
        value = frequency_contribution_correlation(records, graph)
        assert -1.0 <= value <= 1.0

    def test_correlation_needs_articles(self, venice_world):
        graph, _ = venice_world
        with pytest.raises(AnalysisError):
            frequency_contribution_correlation([], graph)

    def test_correlation_zero_variance(self, venice_world, records):
        graph, ids = venice_world
        # Two articles, both appearing once, same contribution -> no variance.
        single = [records[1]]
        with pytest.raises(AnalysisError):
            frequency_contribution_correlation(single, graph)
