"""Kernel-vs-DFS equivalence: the bitset engine must be bit-identical.

The kernels in :mod:`repro.core.cycle_kernels` are the default engine
behind :class:`CycleFinder`; the DFS stays as the oracle.  These tests
sweep seeded synthetic worlds (sparse, dense, star, clique — all with
redirect satellites), every (min_length, max_length) window in 2..5 and
several anchor sets, and require the two engines to agree *node for
node, in order* — not just as sets — on both the dict-backed
:class:`WikiGraph` and the CSR-backed compact views.  The ``max_cycles``
tripwire, the ``count_by_length`` census and the feature rows must match
too.
"""

import os
import random

import pytest

from repro.core import CycleFinder, KernelBall, find_cycles, resolve_engine
from repro.core.cycle_kernels import KERNEL_MAX_LENGTH
from repro.core.cycles import ENGINE_ENV_VAR
from repro.core.features import compute_features
from repro.errors import AnalysisError
from repro.wiki import WikiGraphBuilder
from repro.wiki.compact import CompactGraphView

LENGTH_WINDOWS = [
    (lo, hi) for lo in range(2, 6) for hi in range(2, 6) if lo <= hi
]


def build_world(kind: str, seed: int):
    """One seeded synthetic world; returns (graph, articles, categories).

    Redirect articles carry only their REDIRECT edge — the builder
    forbids link/belongs edges on them — so every world also checks that
    both engines ignore redirects identically.
    """
    rng = random.Random(seed)
    builder = WikiGraphBuilder()
    num_articles = {"sparse": 14, "dense": 10, "star": 12, "clique": 7}[kind]
    articles = [builder.add_article(f"a{i}") for i in range(num_articles)]
    categories = [builder.add_category(f"c{i}") for i in range(4)]

    for article in articles:
        chosen = [c for c in categories if rng.random() < 0.25]
        for category in chosen or [rng.choice(categories)]:
            builder.add_belongs(article, category)

    if kind == "star":
        hub, leaves = articles[0], articles[1:]
        for leaf in leaves:
            builder.add_link(hub, leaf)
            if rng.random() < 0.5:
                builder.add_link(leaf, hub)
        for _ in range(6):  # a few leaf-to-leaf chords
            u, v = rng.sample(leaves, 2)
            builder.add_link(u, v)
    else:
        link_prob = {"sparse": 0.10, "dense": 0.35, "clique": 1.0}[kind]
        for u in articles:
            for v in articles:
                if u != v and rng.random() < link_prob:
                    builder.add_link(u, v)

    for i, child in enumerate(categories):
        for parent in categories[i + 1:]:
            if rng.random() < 0.4:
                builder.add_inside(child, parent)

    for i in range(2):
        redirect = builder.add_article(f"r{i}", is_redirect=True)
        builder.add_redirect(redirect, rng.choice(articles))

    return builder.build(), articles, categories


def anchor_options(rng: random.Random, articles):
    return [
        None,
        frozenset(),
        frozenset([rng.choice(articles)]),
        frozenset(rng.sample(articles, 3)),
    ]


@pytest.mark.parametrize("kind", ["sparse", "dense", "star", "clique"])
def test_kernels_match_dfs_node_for_node(kind):
    """Every window x anchor set: identical lists on the dict graph."""
    for seed in (3, 11):
        graph, articles, _ = build_world(kind, seed)
        rng = random.Random(seed * 101)
        for lo, hi in LENGTH_WINDOWS:
            for anchors in anchor_options(rng, articles):
                dfs = CycleFinder(
                    graph, min_length=lo, max_length=hi, engine="dfs"
                ).find(anchors)
                ker = CycleFinder(
                    graph, min_length=lo, max_length=hi, engine="kernels"
                ).find(anchors)
                assert [c.nodes for c in ker] == [c.nodes for c in dfs], (
                    kind, seed, lo, hi, anchors,
                )
                if anchors == frozenset():
                    assert ker == []


@pytest.mark.parametrize("kind", ["dense", "star"])
def test_kernels_match_dfs_on_compact_views(kind):
    """The CSR fast path (full view and keep-set subgraph) agrees too."""
    graph, articles, _ = build_world(kind, 5)
    view = CompactGraphView.from_graph(graph)
    keep = set(articles[: len(articles) // 2 + 2])
    sub = view.induced_subgraph(keep)
    rng = random.Random(55)
    for compact in (view, sub):
        pool = sorted(keep) if compact is sub else articles
        for lo, hi in [(2, 2), (2, 4), (3, 5), (2, 5)]:
            for anchors in (None, frozenset(rng.sample(pool, 2))):
                dfs = CycleFinder(
                    compact, min_length=lo, max_length=hi, engine="dfs"
                ).find(anchors)
                ker = CycleFinder(
                    compact, min_length=lo, max_length=hi, engine="kernels"
                ).find(anchors)
                assert [c.nodes for c in ker] == [c.nodes for c in dfs]


def test_compact_view_matches_dict_graph():
    """Same graph, CSR rows vs adjacency dicts: identical kernel output."""
    graph, _, _ = build_world("dense", 9)
    view = CompactGraphView.from_graph(graph)
    for lo, hi in [(2, 5), (3, 4)]:
        from_dict = CycleFinder(
            graph, min_length=lo, max_length=hi, engine="kernels"
        ).find()
        from_csr = CycleFinder(
            view, min_length=lo, max_length=hi, engine="kernels"
        ).find()
        assert [c.nodes for c in from_csr] == [c.nodes for c in from_dict]


def test_venice_world_equivalence(venice_world):
    graph, ids = venice_world
    for anchors in (None, [ids["venice"]], [ids["sheep"]]):
        dfs = CycleFinder(graph, max_length=5, engine="dfs").find(anchors)
        ker = CycleFinder(graph, max_length=5, engine="kernels").find(anchors)
        assert ker == dfs


def test_count_by_length_matches_find():
    graph, articles, _ = build_world("dense", 21)
    rng = random.Random(21)
    for lo, hi in LENGTH_WINDOWS:
        for anchors in anchor_options(rng, articles):
            dfs_finder = CycleFinder(
                graph, min_length=lo, max_length=hi, engine="dfs"
            )
            ker_finder = CycleFinder(
                graph, min_length=lo, max_length=hi, engine="kernels"
            )
            census = ker_finder.count_by_length(anchors)
            assert census == dfs_finder.count_by_length(anchors)
            assert set(census) == set(range(lo, hi + 1))
            by_length = {length: 0 for length in range(lo, hi + 1)}
            for cycle in dfs_finder.find(anchors):
                by_length[cycle.length] += 1
            assert census == by_length


def test_find_features_matches_compute_features():
    graph, articles, _ = build_world("dense", 33)
    anchors = frozenset(articles[:3])
    for engine in ("dfs", "kernels"):
        finder = CycleFinder(graph, max_length=5, engine=engine)
        rows = finder.find_with_features(anchors)
        assert [f.cycle for f in rows] == finder.find(anchors)
        for features in rows:
            assert features == compute_features(graph, features.cycle)


def test_find_features_accept_prefilter_is_engine_identical():
    graph, _, _ = build_world("dense", 41)

    def accept(length, num_articles, num_edges):
        return length > 2 and num_articles < length and num_edges > length

    dfs = CycleFinder(graph, max_length=5, engine="dfs")
    ker = CycleFinder(graph, max_length=5, engine="kernels")
    assert ker.find_with_features(accept=accept) == \
        dfs.find_with_features(accept=accept)
    # The prefilter only drops rows; it must be a pure subset.
    kept = {f.cycle.nodes for f in ker.find_with_features(accept=accept)}
    everything = {f.cycle.nodes for f in ker.find_with_features()}
    assert kept < everything


class TestMaxCyclesTripwire:
    def _world(self):
        graph, articles, _ = build_world("clique", 13)
        return graph, articles

    def test_both_engines_raise_identically(self):
        graph, _ = self._world()
        total = len(CycleFinder(graph, max_length=5).find())
        assert total > 10
        messages = set()
        for engine in ("dfs", "kernels"):
            finder = CycleFinder(
                graph, max_length=5, max_cycles=total - 1, engine=engine
            )
            with pytest.raises(AnalysisError) as excinfo:
                finder.find()
            messages.add(str(excinfo.value))
        assert len(messages) == 1  # same message, same threshold
        assert str(total - 1) in messages.pop()

    def test_limit_at_total_is_fine_in_both(self):
        graph, _ = self._world()
        total = len(CycleFinder(graph, max_length=5).find())
        for engine in ("dfs", "kernels"):
            found = CycleFinder(
                graph, max_length=5, max_cycles=total, engine=engine
            ).find()
            assert len(found) == total

    def test_two_cycles_count_toward_the_limit(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("a")
        b = builder.add_article("b")
        builder.add_link(a, b)
        builder.add_link(b, a)
        graph = builder.build()
        for engine in ("dfs", "kernels"):
            with pytest.raises(AnalysisError):
                CycleFinder(
                    graph, max_length=2, max_cycles=0, engine=engine
                ).find()

    def test_count_by_length_fires_the_same_tripwire(self):
        graph, _ = self._world()
        total = len(CycleFinder(graph, max_length=5).find())
        for engine in ("dfs", "kernels"):
            finder = CycleFinder(
                graph, max_length=5, max_cycles=total - 1, engine=engine
            )
            with pytest.raises(AnalysisError):
                finder.count_by_length()


class TestEngineResolution:
    def test_default_is_kernels(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine(None, 5) == "kernels"
        graph, _, _ = build_world("sparse", 1)
        assert CycleFinder(graph).engine == "kernels"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "kernels")
        assert resolve_engine("dfs", 5) == "dfs"

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "dfs")
        assert resolve_engine(None, 5) == "dfs"
        graph, _, _ = build_world("sparse", 1)
        assert CycleFinder(graph).engine == "dfs"
        monkeypatch.setenv(ENGINE_ENV_VAR, "")
        assert resolve_engine(None, 5) == "kernels"

    def test_unknown_engine_rejected(self):
        with pytest.raises(AnalysisError, match="unknown cycle engine"):
            resolve_engine("networkx", 5)

    def test_long_windows_fall_back_to_dfs(self):
        assert resolve_engine("kernels", KERNEL_MAX_LENGTH + 1) == "dfs"
        assert resolve_engine(None, KERNEL_MAX_LENGTH + 1) == "dfs"
        graph, _, _ = build_world("sparse", 2)
        finder = CycleFinder(graph, max_length=6)
        assert finder.engine == "dfs"
        assert finder.find() == CycleFinder(
            graph, max_length=6, engine="dfs"
        ).find()

    def test_find_cycles_forwards_engine(self, venice_world):
        graph, ids = venice_world
        assert find_cycles(graph, anchors=[ids["venice"]], engine="dfs") == \
            find_cycles(graph, anchors=[ids["venice"]], engine="kernels")


def test_kernel_ball_builds_from_both_protocols():
    """CSR-backed and API-backed balls describe the same bitset rows."""
    graph, _, _ = build_world("dense", 17)
    view = CompactGraphView.from_graph(graph)
    from_api = KernelBall.build(graph)
    from_csr = KernelBall.build(view)
    assert from_api.ids == from_csr.ids
    assert from_api.adj == from_csr.adj
    assert from_api.mutual == from_csr.mutual
    assert from_api.link_out == from_csr.link_out
    assert from_api.belongs == from_csr.belongs
    assert from_api.inside == from_csr.inside
    assert from_api.articles == from_csr.articles


def test_kind_constants_stay_in_sync_with_compact():
    """cycle_kernels mirrors compact.py's CSR bits instead of importing
    them (core must not depend on wiki at module import time); this test
    is the tripwire that keeps the two definitions identical."""
    from repro.core import cycle_kernels
    from repro.wiki import compact

    assert cycle_kernels._LINK_OUT == compact.LINK_OUT
    assert cycle_kernels._LINK_IN == compact.LINK_IN
    assert cycle_kernels._BELONGS == compact.BELONGS
    assert cycle_kernels._INSIDE == compact.INSIDE_PARENT | compact.INSIDE_CHILD
    assert cycle_kernels._FLAG_ARTICLE == compact._FLAG_ARTICLE


def test_engine_env_var_matches_ci_matrix_leg():
    """CI's dfs matrix leg exports this exact variable name."""
    assert ENGINE_ENV_VAR == "REPRO_CYCLE_ENGINE"
    assert os.environ.get(ENGINE_ENV_VAR, "") in ("", "dfs", "kernels")
