"""Unit tests for cycle enumeration."""

import pytest

from repro.core import Cycle, CycleFinder, find_cycles
from repro.errors import AnalysisError
from repro.wiki import WikiGraphBuilder


def cycles_as_sets(cycles):
    return sorted((c.length, frozenset(c.nodes)) for c in cycles)


class TestTwoCycles:
    def test_reciprocal_pair_found(self, venice_world):
        graph, ids = venice_world
        cycles = find_cycles(graph, anchors=[ids["venice"]], max_length=2)
        assert cycles_as_sets(cycles) == [
            (2, frozenset({ids["venice"], ids["cannaregio"]}))
        ]

    def test_one_way_link_is_not_a_cycle(self):
        builder = WikiGraphBuilder(strict=False)
        a = builder.add_article("a")
        b = builder.add_article("b")
        builder.add_link(a, b)
        assert find_cycles(builder.build(), max_length=2) == []

    def test_anchor_filter(self, venice_world):
        graph, ids = venice_world
        assert find_cycles(graph, anchors=[ids["sheep"]], max_length=2) == []

    def test_no_anchor_returns_all(self, venice_world):
        graph, ids = venice_world
        cycles = find_cycles(graph, max_length=2)
        assert len(cycles) == 1


class TestSimpleCycles:
    def test_category_triangle(self, venice_world):
        graph, ids = venice_world
        cycles = find_cycles(graph, anchors=[ids["venice"]], min_length=3, max_length=3)
        node_sets = {frozenset(c.nodes) for c in cycles}
        # venice - canal - attractions (category closes the triangle)
        assert frozenset({ids["venice"], ids["canal"], ids["attractions"]}) in node_sets
        # category-free distractor triangle venice - sheep - anthrax
        assert frozenset({ids["venice"], ids["sheep"], ids["anthrax"]}) in node_sets

    def test_two_cycle_pair_also_closes_triangle(self, venice_world):
        graph, ids = venice_world
        cycles = find_cycles(graph, min_length=3, max_length=3)
        node_sets = {frozenset(c.nodes) for c in cycles}
        assert frozenset(
            {ids["venice"], ids["cannaregio"], ids["attractions"]}
        ) in node_sets

    def test_four_cycle(self, venice_world):
        graph, ids = venice_world
        cycles = find_cycles(graph, min_length=4, max_length=4)
        node_sets = {frozenset(c.nodes) for c in cycles}
        assert frozenset(
            {ids["venice"], ids["canal"], ids["palazzo"], ids["attractions"]}
        ) in node_sets

    def test_each_cycle_reported_once(self, venice_world):
        graph, ids = venice_world
        cycles = find_cycles(graph, max_length=5)
        assert len(cycles) == len(set(cycles))
        # Canonical: no two cycles share the same node set and length.
        keys = [(c.length, frozenset(c.nodes)) for c in cycles]
        assert len(keys) == len(set(keys))

    def test_nodes_distinct_within_cycle(self, venice_world):
        graph, ids = venice_world
        for cycle in find_cycles(graph, max_length=5):
            assert len(set(cycle.nodes)) == cycle.length

    def test_consecutive_nodes_connected(self, venice_world):
        graph, ids = venice_world
        for cycle in find_cycles(graph, min_length=3, max_length=5):
            nodes = cycle.nodes
            for u, v in zip(nodes, nodes[1:] + nodes[:1]):
                assert graph.has_edge(u, v)

    def test_redirects_never_in_cycles(self, venice_world):
        """Figure 1: redirects cannot close cycles."""
        graph, ids = venice_world
        for cycle in find_cycles(graph, max_length=5):
            assert ids["gondole"] not in cycle.nodes

    def test_tree_has_no_cycles(self):
        builder = WikiGraphBuilder(strict=False)
        root = builder.add_category("root")
        for index in range(3):
            child = builder.add_category(f"child{index}")
            builder.add_inside(child, root)
        assert find_cycles(builder.build(), max_length=5) == []

    def test_chordful_cycles_allowed(self):
        """A 4-clique contains 4-cycles even though they have chords."""
        builder = WikiGraphBuilder(strict=False)
        nodes = [builder.add_article(f"n{i}") for i in range(4)]
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                builder.add_link(u, v)
        cycles = find_cycles(builder.build(), min_length=4, max_length=4)
        # 4 nodes -> 3 distinct 4-cycles (each omits one chord pairing).
        assert len(cycles) == 3


class TestCensusAndGuards:
    def test_count_by_length(self, venice_world):
        graph, ids = venice_world
        finder = CycleFinder(graph, min_length=2, max_length=5)
        census = finder.count_by_length(anchors=[ids["venice"]])
        assert set(census) == {2, 3, 4, 5}
        assert census[2] == 1
        assert census[3] >= 2

    def test_census_counts_match_find(self, venice_world):
        graph, ids = venice_world
        finder = CycleFinder(graph, min_length=2, max_length=5)
        census = finder.count_by_length()
        assert sum(census.values()) == len(finder.find())

    def test_min_length_validation(self, venice_world):
        graph, _ = venice_world
        with pytest.raises(AnalysisError):
            CycleFinder(graph, min_length=1)

    def test_max_less_than_min(self, venice_world):
        graph, _ = venice_world
        with pytest.raises(AnalysisError):
            CycleFinder(graph, min_length=4, max_length=3)

    def test_supported_bound(self, venice_world):
        graph, _ = venice_world
        with pytest.raises(AnalysisError, match="exponential"):
            CycleFinder(graph, max_length=9)

    def test_max_cycles_guard(self):
        builder = WikiGraphBuilder(strict=False)
        nodes = [builder.add_article(f"n{i}") for i in range(12)]
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                builder.add_link(u, v)
        finder = CycleFinder(builder.build(), max_length=5, max_cycles=10)
        with pytest.raises(AnalysisError, match="more than 10 cycles"):
            finder.find()


class TestCycleValue:
    def test_contains(self):
        cycle = Cycle((1, 2, 3))
        assert 2 in cycle
        assert 9 not in cycle

    def test_iter_and_len(self):
        cycle = Cycle((1, 2))
        assert list(cycle) == [1, 2]
        assert cycle.length == 2

    def test_str(self):
        assert str(Cycle((1, 2, 3))) == "(1 - 2 - 3)"
