"""Unit tests for the expanders."""

import pytest

from repro.core import (
    CycleExpander,
    DirectLinkExpander,
    NeighborhoodCycleExpander,
    NullExpander,
    RedirectExpander,
)
from repro.errors import AnalysisError


class TestNullExpander:
    def test_returns_nothing(self, venice_world):
        graph, ids = venice_world
        result = NullExpander().expand(graph, [ids["venice"]])
        assert result.article_ids == frozenset()
        assert result.titles == ()
        assert result.num_features == 0

    def test_all_titles_includes_seeds(self, venice_world):
        graph, ids = venice_world
        result = NullExpander().expand(graph, [ids["venice"]])
        assert result.all_titles(graph) == ["venice"]


class TestDirectLinkExpander:
    def test_links_from_seed(self, venice_world):
        graph, ids = venice_world
        result = DirectLinkExpander().expand(graph, [ids["venice"]])
        assert ids["cannaregio"] in result.article_ids
        assert ids["canal"] in result.article_ids
        assert ids["sheep"] in result.article_ids  # links are undiscriminating
        assert ids["palazzo"] not in result.article_ids  # two hops away

    def test_max_features_cap(self, venice_world):
        graph, ids = venice_world
        result = DirectLinkExpander(max_features=1).expand(graph, [ids["venice"]])
        assert result.num_features == 1

    def test_bad_cap(self):
        with pytest.raises(AnalysisError):
            DirectLinkExpander(max_features=0)

    def test_seeds_excluded(self, venice_world):
        graph, ids = venice_world
        result = DirectLinkExpander().expand(
            graph, [ids["venice"], ids["cannaregio"]]
        )
        assert ids["venice"] not in result.article_ids
        assert ids["cannaregio"] not in result.article_ids


class TestCycleExpander:
    def test_default_takes_all_cycle_articles(self, venice_world):
        graph, ids = venice_world
        result = CycleExpander().expand(graph, [ids["venice"]])
        assert ids["cannaregio"] in result.article_ids
        assert ids["canal"] in result.article_ids
        assert ids["sheep"] in result.article_ids  # no filters yet

    def test_length_filter(self, venice_world):
        graph, ids = venice_world
        result = CycleExpander(lengths=(2,)).expand(graph, [ids["venice"]])
        assert result.article_ids == frozenset({ids["cannaregio"]})

    def test_category_ratio_filter_drops_distractors(self, venice_world):
        graph, ids = venice_world
        # At 0.3 the category-free distractor triangle fails, and so does
        # the venice-sheep-farming-anthrax 4-cycle (ratio 0.25).
        result = CycleExpander(min_category_ratio=0.3).expand(graph, [ids["venice"]])
        assert ids["sheep"] not in result.article_ids
        assert ids["anthrax"] not in result.article_ids
        assert ids["canal"] in result.article_ids  # triangle with category

    def test_distractors_survive_via_categorised_long_cycle(self, venice_world):
        """A lenient ratio bound readmits the distractors through the
        4-cycle they close with their shared background category."""
        graph, ids = venice_world
        result = CycleExpander(min_category_ratio=0.25).expand(graph, [ids["venice"]])
        assert ids["sheep"] in result.article_ids

    def test_two_cycles_exempt_from_min_ratio(self, venice_world):
        graph, ids = venice_world
        result = CycleExpander(min_category_ratio=0.3).expand(graph, [ids["venice"]])
        assert ids["cannaregio"] in result.article_ids

    def test_exclude_category_free_switch(self, venice_world):
        graph, ids = venice_world
        result = CycleExpander(lengths=(2, 3), exclude_category_free=True).expand(
            graph, [ids["venice"]]
        )
        assert ids["sheep"] not in result.article_ids
        assert ids["cannaregio"] in result.article_ids  # length 2 exempt

    def test_density_filter(self, venice_world):
        graph, ids = venice_world
        # Only the chorded triangle (density 1.0) survives a high threshold.
        result = CycleExpander(min_extra_edge_density=0.9).expand(
            graph, [ids["venice"]]
        )
        articles = result.article_ids
        assert ids["cannaregio"] in articles
        assert ids["palazzo"] not in articles

    def test_cycles_provenance_recorded(self, venice_world):
        graph, ids = venice_world
        result = CycleExpander(lengths=(2, 3)).expand(graph, [ids["venice"]])
        assert result.cycles
        assert all(f.length in (2, 3) for f in result.cycles)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            CycleExpander(lengths=())
        with pytest.raises(AnalysisError):
            CycleExpander(lengths=(1,))
        with pytest.raises(AnalysisError):
            CycleExpander(min_category_ratio=0.8, max_category_ratio=0.2)
        with pytest.raises(AnalysisError):
            CycleExpander(min_extra_edge_density=1.5)

    def test_titles_match_ids(self, venice_world):
        graph, ids = venice_world
        result = CycleExpander(lengths=(2,)).expand(graph, [ids["venice"]])
        assert result.titles == ("cannaregio",)


class TestNeighborhoodCycleExpander:
    def test_same_result_as_direct_on_small_world(self, venice_world):
        graph, ids = venice_world
        direct = CycleExpander(lengths=(2, 3)).expand(graph, [ids["venice"]])
        hood = NeighborhoodCycleExpander(
            CycleExpander(lengths=(2, 3)), radius=2, max_nodes=100
        ).expand(graph, [ids["venice"]])
        assert hood.article_ids == direct.article_ids

    def test_max_nodes_caps_ball(self, venice_world):
        graph, ids = venice_world
        expander = NeighborhoodCycleExpander(radius=3, max_nodes=3)
        ball = expander.neighborhood(graph, frozenset({ids["venice"]}))
        assert len(ball) == 3

    def test_unknown_seed(self, venice_world):
        graph, _ = venice_world
        with pytest.raises(AnalysisError):
            NeighborhoodCycleExpander().expand(graph, [404_404])

    def test_validation(self):
        with pytest.raises(AnalysisError):
            NeighborhoodCycleExpander(radius=0)
        with pytest.raises(AnalysisError):
            NeighborhoodCycleExpander(max_nodes=1)


class TestExpandBatch:
    """Edge cases of the amortised batch API."""

    def test_empty_batch(self, venice_world):
        graph, _ = venice_world
        assert NeighborhoodCycleExpander().expand_batch(graph, []) == []

    def test_empty_seed_set_yields_empty_expansion(self, venice_world):
        graph, ids = venice_world
        expander = NeighborhoodCycleExpander()
        results = expander.expand_batch(
            graph, [frozenset(), frozenset({ids["venice"]})]
        )
        assert results[0].seed_articles == frozenset()
        assert results[0].article_ids == frozenset()
        assert results[0].titles == ()
        # The empty entry must not disturb its batch neighbours.
        assert results[1].article_ids == \
            expander.expand(graph, {ids["venice"]}).article_ids

    def test_overlapping_seed_sets_stay_independent(self, venice_world):
        """Entries sharing seeds (overlapping balls) are each expanded as
        if they were alone — the shared union subgraph must not leak
        features between them."""
        graph, ids = venice_world
        expander = NeighborhoodCycleExpander()
        seed_sets = [
            frozenset({ids["venice"]}),
            frozenset({ids["venice"], ids["cannaregio"]}),
            frozenset({ids["cannaregio"]}),
        ]
        batched = expander.expand_batch(graph, seed_sets)
        for seeds, result in zip(seed_sets, batched):
            single = expander.expand(graph, seeds)
            assert result.seed_articles == single.seed_articles
            assert result.article_ids == single.article_ids
            assert result.titles == single.titles
            assert result.cycles == single.cycles

    def test_duplicate_seed_sets_get_equal_results(self, venice_world):
        graph, ids = venice_world
        expander = NeighborhoodCycleExpander()
        seeds = frozenset({ids["venice"]})
        first, second = expander.expand_batch(graph, [seeds, seeds])
        assert first.article_ids == second.article_ids
        assert first.titles == second.titles

    def test_equivalence_with_sequential_expand_under_cap(self, venice_world):
        """Equivalence holds even when max_nodes truncates the balls,
        because each ball is BFS-carved before the union is taken."""
        graph, ids = venice_world
        expander = NeighborhoodCycleExpander(radius=2, max_nodes=5)
        seed_sets = [
            frozenset({ids["venice"]}),
            frozenset({ids["sheep"]}),
            frozenset({ids["canal"], ids["palazzo"]}),
        ]
        batched = expander.expand_batch(graph, seed_sets)
        for seeds, result in zip(seed_sets, batched):
            single = expander.expand(graph, seeds)
            assert result.article_ids == single.article_ids
            assert result.titles == single.titles

    def test_unknown_seed_rejected(self, venice_world):
        graph, ids = venice_world
        with pytest.raises(AnalysisError):
            NeighborhoodCycleExpander().expand_batch(
                graph, [frozenset({ids["venice"]}), frozenset({404_404})]
            )


class TestRedirectExpander:
    def test_adds_redirect_titles(self, venice_world):
        graph, ids = venice_world
        inner = CycleExpander(lengths=(2,))
        result = RedirectExpander(inner).expand(graph, [ids["venice"]])
        # cannaregio is selected by the inner expander; its redirect
        # 'gondole' joins the feature set.
        assert ids["cannaregio"] in result.article_ids
        assert ids["gondole"] in result.article_ids

    def test_seed_redirects_optional(self, venice_world):
        graph, ids = venice_world
        inner = NullExpander()
        with_seed = RedirectExpander(inner, include_seed_redirects=True).expand(
            graph, [ids["cannaregio"]]
        )
        assert ids["gondole"] in with_seed.article_ids
        without = RedirectExpander(inner, include_seed_redirects=False).expand(
            graph, [ids["cannaregio"]]
        )
        assert ids["gondole"] not in without.article_ids

    def test_provenance_preserved(self, venice_world):
        graph, ids = venice_world
        inner = CycleExpander(lengths=(2,))
        result = RedirectExpander(inner).expand(graph, [ids["venice"]])
        assert result.cycles  # inherited from the inner expander
