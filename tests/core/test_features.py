"""Unit tests for cycle features: category ratio, E(C), M(C), density."""

import pytest

from repro.core import Cycle, compute_features, count_edges, find_cycles, max_edges
from repro.wiki import WikiGraphBuilder


class TestMaxEdges:
    def test_articles_only(self):
        # A articles: A*(A-1) ordered pairs.
        assert max_edges(3, 0) == 6
        assert max_edges(2, 0) == 2

    def test_mixed(self):
        # Paper formula: A(A-1) + A*C + C(C-1)/2.
        assert max_edges(2, 1) == 2 + 2 + 0
        assert max_edges(2, 2) == 2 + 4 + 1
        assert max_edges(3, 2) == 6 + 6 + 1

    def test_categories_only(self):
        assert max_edges(0, 3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            max_edges(-1, 0)


class TestCountEdges:
    def test_reciprocal_links_count_twice(self, venice_world):
        graph, ids = venice_world
        pair = (ids["venice"], ids["cannaregio"])
        assert count_edges(graph, pair) == 2

    def test_one_way_link_counts_once(self, venice_world):
        graph, ids = venice_world
        assert count_edges(graph, (ids["venice"], ids["canal"])) == 1

    def test_belongs_counts_once(self, venice_world):
        graph, ids = venice_world
        assert count_edges(graph, (ids["venice"], ids["attractions"])) == 1

    def test_triangle_with_category(self, venice_world):
        graph, ids = venice_world
        nodes = (ids["venice"], ids["canal"], ids["attractions"])
        # venice->canal, venice in attractions, canal in attractions.
        assert count_edges(graph, nodes) == 3

    def test_triangle_with_chorded_pair(self, venice_world):
        graph, ids = venice_world
        nodes = (ids["venice"], ids["cannaregio"], ids["attractions"])
        # reciprocal pair (2) + two belongs = 4.
        assert count_edges(graph, nodes) == 4

    def test_inside_pair_counts_once(self):
        builder = WikiGraphBuilder(strict=False)
        parent = builder.add_category("parent")
        child = builder.add_category("child")
        builder.add_inside(child, parent)
        graph = builder.build()
        assert count_edges(graph, (parent, child)) == 1


class TestComputeFeatures:
    def test_two_cycle_features(self, venice_world):
        graph, ids = venice_world
        cycle = Cycle((ids["venice"], ids["cannaregio"]))
        features = compute_features(graph, cycle)
        assert features.num_articles == 2
        assert features.num_categories == 0
        assert features.category_ratio == 0.0
        assert features.num_edges == 2
        assert features.max_possible_edges == 2
        assert features.extra_edge_density is None  # M == |C|
        assert features.num_extra_edges == 0

    def test_density_zero_triangle(self, venice_world):
        graph, ids = venice_world
        cycle = Cycle((ids["venice"], ids["canal"], ids["attractions"]))
        features = compute_features(graph, cycle)
        assert features.num_categories == 1
        assert features.category_ratio == pytest.approx(1 / 3)
        # E = 3 = |C|; M = 2*1 + 2*1 + 0 = 4 -> density (3-3)/(4-3) = 0.
        assert features.extra_edge_density == 0.0

    def test_density_one_triangle(self, venice_world):
        graph, ids = venice_world
        cycle = Cycle((ids["venice"], ids["cannaregio"], ids["attractions"]))
        features = compute_features(graph, cycle)
        # E = 4; M = 4 -> density (4-3)/(4-3) = 1.
        assert features.extra_edge_density == 1.0

    def test_category_free_flag(self, venice_world):
        graph, ids = venice_world
        distractor = Cycle((ids["venice"], ids["sheep"], ids["anthrax"]))
        assert compute_features(graph, distractor).is_category_free
        with_cat = Cycle((ids["venice"], ids["canal"], ids["attractions"]))
        assert not compute_features(graph, with_cat).is_category_free

    def test_four_cycle_features(self, venice_world):
        graph, ids = venice_world
        cycle = Cycle((ids["venice"], ids["canal"], ids["palazzo"], ids["attractions"]))
        features = compute_features(graph, cycle)
        assert features.length == 4
        assert features.num_articles == 3
        assert features.num_categories == 1
        # Edges: venice->canal, canal->palazzo, three belongs = 5.
        assert features.num_edges == 5
        # M = 3*2 + 3*1 + 0 = 9; density = (5-4)/(9-4) = 0.2.
        assert features.extra_edge_density == pytest.approx(0.2)

    def test_features_for_all_enumerated_cycles(self, venice_world):
        """Every enumerated cycle yields consistent features."""
        graph, ids = venice_world
        for cycle in find_cycles(graph, max_length=5):
            features = compute_features(graph, cycle)
            assert features.num_articles + features.num_categories == cycle.length
            assert features.num_edges >= cycle.length
            assert features.num_edges <= features.max_possible_edges
            density = features.extra_edge_density
            assert density is None or 0.0 <= density <= 1.0
