"""Unit tests for the ADD/REMOVE/SWAP local search."""

import random

import pytest

from repro.core import Evaluator, GroundTruthSearch, Operation
from repro.errors import GroundTruthError


@pytest.fixture
def evaluator(venice_world, venice_engine, relevant_docs):
    graph, _ = venice_world
    return Evaluator(venice_engine, graph, relevant_docs)


@pytest.fixture
def search(evaluator):
    return GroundTruthSearch(evaluator, rng=random.Random(3))


class TestValidation:
    def test_bad_iterations(self, evaluator):
        with pytest.raises(GroundTruthError):
            GroundTruthSearch(evaluator, max_iterations=0)

    def test_bad_restarts(self, evaluator):
        with pytest.raises(GroundTruthError):
            GroundTruthSearch(evaluator, restarts=0)


class TestSearchBehaviour:
    def test_no_candidates_returns_seeds(self, venice_world, search):
        graph, ids = venice_world
        result = search.run([ids["venice"]], [])
        assert result.expansion_set == frozenset()
        assert result.best_set == frozenset({ids["venice"]})

    def test_candidates_overlapping_seeds_ignored(self, venice_world, search):
        graph, ids = venice_world
        result = search.run([ids["venice"]], [ids["venice"]])
        assert result.expansion_set == frozenset()

    def test_finds_improving_expansion(self, venice_world, evaluator, search):
        graph, ids = venice_world
        candidates = [ids["cannaregio"], ids["canal"], ids["palazzo"],
                      ids["sheep"], ids["anthrax"]]
        result = search.run([ids["venice"]], candidates)
        base = evaluator.quality([ids["venice"]])
        assert result.score.mean > base
        # The distractors must not survive in the best set.
        assert ids["sheep"] not in result.expansion_set
        assert ids["anthrax"] not in result.expansion_set

    def test_quality_never_decreases_along_steps(self, venice_world, search):
        graph, ids = venice_world
        candidates = [ids["cannaregio"], ids["canal"], ids["palazzo"], ids["sheep"]]
        result = search.run([ids["venice"]], candidates)
        qualities = [step.quality for step in result.steps]
        assert qualities == sorted(qualities)

    def test_first_step_is_seed(self, venice_world, search):
        graph, ids = venice_world
        result = search.run([ids["venice"]], [ids["cannaregio"]])
        assert result.steps[0].operation is Operation.SEED

    def test_deterministic_given_rng(self, venice_world, evaluator):
        graph, ids = venice_world
        candidates = [ids["cannaregio"], ids["canal"], ids["palazzo"], ids["sheep"]]
        first = GroundTruthSearch(evaluator, rng=random.Random(5)).run(
            [ids["venice"]], candidates)
        second = GroundTruthSearch(evaluator, rng=random.Random(5)).run(
            [ids["venice"]], candidates)
        assert first.expansion_set == second.expansion_set
        assert [s.operation for s in first.steps] == [s.operation for s in second.steps]

    def test_restarts_cannot_hurt(self, venice_world, evaluator):
        graph, ids = venice_world
        candidates = [ids["cannaregio"], ids["canal"], ids["palazzo"], ids["sheep"]]
        single = GroundTruthSearch(evaluator, rng=random.Random(1)).run(
            [ids["venice"]], candidates)
        multi = GroundTruthSearch(evaluator, rng=random.Random(1), restarts=4).run(
            [ids["venice"]], candidates)
        assert multi.score.mean >= single.score.mean

    def test_minimality_rule_removes_useless_article(
        self, venice_world, venice_engine, relevant_docs
    ):
        """An article whose removal keeps quality equal must be dropped."""
        graph, ids = venice_world
        evaluator = Evaluator(venice_engine, graph, relevant_docs)
        # Start the search from the useless article: 'sheep' matches only
        # the trap document, so after better articles arrive it should be
        # swapped or removed by the minimality rule.
        rng = random.Random(0)
        search = GroundTruthSearch(evaluator, rng=rng)
        result = search.run(
            [ids["venice"]],
            [ids["sheep"], ids["cannaregio"], ids["canal"], ids["palazzo"]],
        )
        assert ids["sheep"] not in result.expansion_set

    def test_prefer_minimal_false_may_keep_neutral_articles(
        self, venice_world, venice_engine, relevant_docs
    ):
        graph, ids = venice_world
        evaluator = Evaluator(venice_engine, graph, relevant_docs)
        search = GroundTruthSearch(
            evaluator, rng=random.Random(0), prefer_minimal=False
        )
        result = search.run([ids["venice"]], [ids["cannaregio"], ids["canal"]])
        # Without the rule the search still improves quality...
        assert result.score.mean >= evaluator.quality([ids["venice"]])
        # ...and never applies an equal-quality REMOVE.
        for step in result.steps:
            if step.operation is Operation.REMOVE:
                previous = result.steps[result.steps.index(step) - 1]
                assert step.quality > previous.quality

    def test_expansion_ratio(self, venice_world, search):
        graph, ids = venice_world
        result = search.run([ids["venice"]], [ids["cannaregio"]])
        expected = len(result.best_set) / 1
        assert result.expansion_ratio == expected

    def test_expansion_ratio_no_seeds(self, venice_world, search):
        graph, ids = venice_world
        result = search.run([], [ids["cannaregio"]])
        assert result.expansion_ratio == 0.0

    def test_num_iterations_counts_steps(self, venice_world, search):
        graph, ids = venice_world
        result = search.run([ids["venice"]], [ids["cannaregio"], ids["canal"]])
        assert result.num_iterations == len(result.steps) >= 1

    def test_max_iterations_caps_search(self, venice_world, evaluator):
        graph, ids = venice_world
        search = GroundTruthSearch(evaluator, rng=random.Random(3), max_iterations=1)
        result = search.run(
            [ids["venice"]], [ids["cannaregio"], ids["canal"], ids["palazzo"]]
        )
        assert result.num_iterations == 1  # only the SEED step
