"""Unit tests for P(A,r,D), O(A,D) and the Evaluator."""

import pytest

from repro.core import (
    DEFAULT_RANKS,
    Evaluator,
    contribution_percent,
    mean_precision,
    top_r_precision,
)
from repro.errors import GroundTruthError


class TestTopRPrecision:
    def test_perfect_prefix(self):
        assert top_r_precision(["a", "b", "c"], {"a", "b", "c"}, 3) == 1.0

    def test_partial(self):
        assert top_r_precision(["a", "x", "b"], {"a", "b"}, 3) == pytest.approx(2 / 3)

    def test_short_result_list_penalised(self):
        # Two results, both correct, but r=5: absent results count as wrong.
        assert top_r_precision(["a", "b"], {"a", "b"}, 5) == pytest.approx(2 / 5)

    def test_no_relevant(self):
        assert top_r_precision(["x", "y"], {"a"}, 2) == 0.0

    def test_r_validation(self):
        with pytest.raises(ValueError):
            top_r_precision(["a"], {"a"}, 0)

    def test_only_prefix_counts(self):
        assert top_r_precision(["x", "a"], {"a"}, 1) == 0.0


class TestMeanPrecision:
    def test_paper_ranks(self):
        ranked = ["a", "b", "x", "y", "c"] + ["z"] * 10
        relevant = {"a", "b", "c"}
        expected = (
            top_r_precision(ranked, relevant, 1)
            + top_r_precision(ranked, relevant, 5)
            + top_r_precision(ranked, relevant, 10)
            + top_r_precision(ranked, relevant, 15)
        ) / 4
        assert mean_precision(ranked, relevant) == pytest.approx(expected)

    def test_custom_ranks(self):
        assert mean_precision(["a"], {"a"}, ranks=(1,)) == 1.0

    def test_empty_ranks_rejected(self):
        with pytest.raises(ValueError):
            mean_precision(["a"], {"a"}, ranks=())

    def test_default_ranks_constant(self):
        assert DEFAULT_RANKS == (1, 5, 10, 15)


class TestContributionPercent:
    def test_improvement(self):
        assert contribution_percent(0.5, 0.75) == pytest.approx(50.0)

    def test_degradation_negative(self):
        assert contribution_percent(0.8, 0.4) == pytest.approx(-50.0)

    def test_no_change(self):
        assert contribution_percent(0.6, 0.6) == 0.0

    def test_zero_base_uses_absolute_gain(self):
        assert contribution_percent(0.0, 0.5) == pytest.approx(50.0)


class TestEvaluator:
    @pytest.fixture
    def evaluator(self, venice_world, venice_engine, relevant_docs):
        graph, ids = venice_world
        return Evaluator(venice_engine, graph, relevant_docs)

    def test_empty_set_scores_zero(self, evaluator):
        score = evaluator.evaluate([])
        assert score.mean == 0.0
        assert score.precision_at(1) == 0.0

    def test_seed_only_query(self, venice_world, evaluator):
        graph, ids = venice_world
        score = evaluator.evaluate([ids["venice"]])
        # 'venice' matches r1, r2, t2 — early precision is high but
        # r3/r4 are unreachable, so mean < 1.
        assert 0.0 < score.mean < 1.0

    def test_expansion_improves(self, venice_world, evaluator):
        graph, ids = venice_world
        base = evaluator.quality([ids["venice"]])
        expanded = evaluator.quality([ids["venice"], ids["cannaregio"], ids["palazzo"]])
        assert expanded > base

    def test_distractor_expansion_hurts_or_flat(self, venice_world, evaluator):
        graph, ids = venice_world
        base = evaluator.quality([ids["venice"]])
        expanded = evaluator.quality([ids["venice"], ids["sheep"], ids["anthrax"]])
        assert expanded <= base

    def test_contribution_of(self, venice_world, evaluator):
        graph, ids = venice_world
        contribution = evaluator.contribution_of(
            frozenset({ids["venice"]}), [ids["cannaregio"]]
        )
        assert contribution > 0.0

    def test_cache_hits(self, venice_world, evaluator):
        graph, ids = venice_world
        evaluator.evaluate([ids["venice"]])
        calls_before = evaluator.engine_calls
        evaluator.evaluate([ids["venice"]])
        assert evaluator.engine_calls == calls_before
        assert evaluator.evaluations >= 2

    def test_precision_at_unevaluated_rank(self, venice_world, evaluator):
        graph, ids = venice_world
        score = evaluator.evaluate([ids["venice"]])
        with pytest.raises(KeyError):
            score.precision_at(7)

    def test_titles_of_sorted(self, venice_world, evaluator):
        graph, ids = venice_world
        titles = evaluator.titles_of({ids["canal"], ids["venice"]})
        assert titles == [graph.title(n) for n in sorted((ids["canal"], ids["venice"]))]

    def test_empty_ranks_rejected(self, venice_world, venice_engine, relevant_docs):
        graph, _ = venice_world
        with pytest.raises(GroundTruthError):
            Evaluator(venice_engine, graph, relevant_docs, ranks=())

    def test_repr(self, evaluator):
        assert "Evaluator(" in repr(evaluator)
